#![warn(missing_docs)]

//! # mcds-suite — examples and integration tests
//!
//! The umbrella crate of the MCDS/PSI reproduction (Mayer et al., DATE
//! 2005). It re-exports the workspace crates so the `examples/` binaries
//! and `tests/` integration suite can use one dependency, and hosts
//! nothing else — the functionality lives in:
//!
//! * [`mcds_soc`] — the SoC substrate,
//! * [`mcds`] — the Multi-Core Debug Solution,
//! * [`mcds_trace`] — trace messages, wire codec, reconstruction,
//! * [`mcds_psi`] — the Package-Sized ICE device model,
//! * [`mcds_xcp`] — the calibration/measurement protocol,
//! * [`mcds_host`] — the host-side debugger,
//! * [`mcds_workloads`] — powertrain workloads,
//! * [`mcds_analysis`] — trace-driven profiling, coverage, bus-contention
//!   analysis and Chrome trace-event timeline export.

pub use mcds;
pub use mcds_analysis;
pub use mcds_analysis::{BusContentionReport, ChromeTrace, CoverageReport, ProfileReport};
pub use mcds_host;
pub use mcds_psi;
pub use mcds_soc;
pub use mcds_trace;
pub use mcds_workloads;
pub use mcds_xcp;
