//! Debug farm client: drive a farm server through one complete session
//! lifecycle — create, run, breakpoint, calibrate, evict, revive — and
//! print the farm's aggregate stats at the end.
//!
//! ```sh
//! # terminal 1
//! cargo run --release --example farm
//! # terminal 2 (ADDR from the server's "listening on" line)
//! cargo run --release --example farm_client -- ADDR
//! ```
//!
//! When no address is given, the example spawns an in-process server so
//! it works standalone:
//!
//! ```sh
//! cargo run --release --example farm_client
//! ```

use mcds_farm::proto::{obj, vint, vstr};
use mcds_farm::{client, FarmClient, FarmConfig, FarmServer};
use mcds_telemetry::Telemetry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let addr = std::env::args().nth(1);
    let (_server, addr) = match addr {
        Some(a) => (None, a),
        None => {
            let server = FarmServer::spawn(FarmConfig::default(), Telemetry::new(), 0)?;
            let addr = server.local_addr().to_string();
            println!("farm_client: spawned in-process server on {addr}");
            (Some(server), addr)
        }
    };
    let mut c = FarmClient::connect(&addr)?;

    // Create a traced engine session and let it run.
    let id = c.create("engine", true)?;
    c.attach(id)?;
    let (ran, stop) = c.run(id, 200_000)?;
    println!("session {id}: ran {ran} cycles (stop: {stop:?})");

    // Arm a hardware breakpoint on the engine's main loop and hit it.
    // (The engine runs from flash, so SW breakpoints are refused — HW
    // comparators are the right tool, exactly as on the real part.)
    let loop_addr = mcds_workloads::Workload::Engine.program().symbols["cycle"];
    c.set_hw_breakpoint(id, 0, loop_addr)?;
    let (ran, stop) = c.run(id, 200_000)?;
    println!("session {id}: ran {ran} more, stopped by {stop:?}");

    // Swap the calibration page over XCP, then resume past the break.
    c.call(
        "xcp.set_cal_page",
        obj(vec![("session", vint(id)), ("page", vint(1))]),
    )?;
    c.call(
        "breakpoint.clear",
        obj(vec![
            ("session", vint(id)),
            ("kind", vstr("hw")),
            ("core", vint(0)),
            ("addr", vint(loop_addr as u64)),
        ]),
    )?;
    c.call(
        "session.resume_core",
        obj(vec![("session", vint(id)), ("core", vint(0))]),
    )?;

    // Evict to disk, revive on next use, prove bit-identity by state hash.
    let hash_before = c.state_hash(id)?;
    let (bytes, hash_evicted) = c.evict(id)?;
    println!("session {id}: evicted, {bytes} bytes on disk");
    assert_eq!(hash_before, hash_evicted);
    let hash_revived = c.state_hash(id)?; // transparently revives
    assert_eq!(hash_before, hash_revived, "revival must be bit-identical");
    println!("session {id}: revived bit-identical ({hash_revived:#018x})");

    // Pull the decoded trace and the per-session health line.
    let (flow, trace_hash) = c.pull_trace(id)?;
    println!("session {id}: {flow} traced instructions (hash {trace_hash:#018x})");
    let health = c.call("health.pull", obj(vec![("session", vint(id))]))?;
    println!("{}", client::require_str(&health, "report")?);

    // Farm-wide stats and the fleet health table.
    let stats = c.call("farm.stats", obj(vec![]))?;
    println!(
        "farm: created {} evicted {} revived {} cycles_total {}",
        client::require_u64(&stats, "created")?,
        client::require_u64(&stats, "evicted")?,
        client::require_u64(&stats, "revived")?,
        client::require_u64(&stats, "cycles_total")?,
    );
    let fleet = c.call("farm.health", obj(vec![]))?;
    println!("{}", client::require_str(&fleet, "report")?);

    c.destroy(id)?;
    Ok(())
}
