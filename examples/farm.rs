//! Debug farm server: serve many simulated PSI devices behind one TCP
//! port speaking newline-delimited JSON-RPC.
//!
//! ```sh
//! cargo run --release --example farm -- [port] [workers]
//! ```
//!
//! Defaults to an ephemeral port (printed on stdout as `listening on
//! ADDR`) and 4 workers. Drive it with the companion client:
//!
//! ```sh
//! cargo run --release --example farm_client -- ADDR
//! ```
//!
//! The server runs until killed; `farm.metrics` returns the live
//! Prometheus export of the `farm_*` metric namespace.

use mcds_farm::{FarmConfig, FarmServer};
use mcds_telemetry::Telemetry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let port: u16 = args.next().map(|a| a.parse()).transpose()?.unwrap_or(0);
    let workers: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(4);

    let config = FarmConfig {
        workers,
        ..Default::default()
    };
    println!(
        "farm: {} workers, quantum {} cycles, evict dir {}",
        config.workers,
        config.quantum,
        config.evict_dir.display()
    );
    let server = FarmServer::spawn(config, Telemetry::new(), port)?;
    println!("listening on {}", server.local_addr());

    // Serve forever; the accept loop and workers do all the work.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
