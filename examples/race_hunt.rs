//! Race hunt: find a cross-core lost-update bug with the MCDS — the
//! debugging scenario Section 3 motivates ("Observation of shared variable
//! accesses is critical").
//!
//! Two cores increment a shared counter without synchronisation, so
//! updates are lost. The hunt:
//!
//! 1. data-trace both cores' writes to the shared counter (qualified — no
//!    other traffic costs bandwidth);
//! 2. reconstruct the temporally ordered write log and spot the smoking
//!    gun: two consecutive writes carrying the *same value* (both cores
//!    read the same old value);
//! 3. re-run with a cross-trigger armed on the culprit pattern and break
//!    **both** cores together at the scene;
//! 4. verify the fix (a SWAP-based lock) with the same trace.
//!
//! ```sh
//! cargo run --example race_hunt
//! ```

use mcds::observer::DataTraceConfig;
use mcds::{
    AccessKind, CrossTrigger, DataComparator, McdsConfig, SignalRef, TraceQualifier, TriggerAction,
};
use mcds_psi::device::{Device, DeviceBuilder, DeviceVariant};
use mcds_soc::asm::Program;
use mcds_soc::bus::AddrRange;
use mcds_soc::event::CoreId;
use mcds_trace::{StreamDecoder, TimedMessage, TraceMessage, TraceSource};
use mcds_workloads::race;

fn watch_counter_config() -> McdsConfig {
    let mut config = McdsConfig {
        cores: vec![Default::default(), Default::default()],
        fifo_depth: 4096,
        sink_bandwidth: 8,
        ..Default::default()
    };
    for c in &mut config.cores {
        c.data_trace = DataTraceConfig {
            qualifier: TraceQualifier::Always,
            filter: Some(DataComparator::on(
                AddrRange::new(race::COUNTER_ADDR, 4),
                AccessKind::Write,
            )),
        };
    }
    config
}

fn run_traced(program: &Program, config: McdsConfig) -> (Device, Vec<TimedMessage>) {
    let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
        .cores(2)
        .mcds(config)
        .build();
    dev.soc_mut().load_program(program);
    for _ in 0..3_000_000u64 {
        dev.step();
        if dev.soc().cores().all(|c| c.is_halted()) {
            break;
        }
    }
    let now = dev.soc().cycle();
    dev.mcds_mut().flush(now);
    let residual = dev.mcds_mut().take_messages();
    {
        let (soc, sink) = dev.soc_sink_mut();
        sink.store(&residual, soc.mapper_mut().emem_mut().unwrap());
    }
    let bytes = dev.sink().read_back(dev.soc().mapper().emem().unwrap());
    let messages = StreamDecoder::new(bytes)
        .collect_all()
        .expect("trace decodes");
    (dev, messages)
}

fn write_log(messages: &[TimedMessage]) -> Vec<(u64, CoreId, u32)> {
    messages
        .iter()
        .filter_map(|m| match (m.source, m.message) {
            (TraceSource::Core(c), TraceMessage::DataWrite { value, .. }) => {
                Some((m.timestamp, c, value))
            }
            _ => None,
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Step 1: trace the buggy system. ---
    let buggy = race::program_buggy();
    let (dev, messages) = run_traced(&buggy, watch_counter_config());
    let total = dev.soc().backdoor_read_word(race::COUNTER_ADDR);
    println!(
        "buggy run    : counter = {total}, expected {} → {} updates lost",
        race::expected_total(),
        race::expected_total() - total
    );
    assert!(total < race::expected_total());

    // --- Step 2: the smoking gun in the ordered write log. ---
    let log = write_log(&messages);
    let collisions: Vec<&[(u64, CoreId, u32)]> =
        log.windows(2).filter(|w| w[0].2 == w[1].2).collect();
    println!(
        "trace        : {} counter writes captured, {} lost-update collisions visible",
        log.len(),
        collisions.len()
    );
    assert!(
        !collisions.is_empty(),
        "the race is visible in the data trace"
    );
    let (t0, c0, v) = collisions[0][0];
    let (t1, c1, _) = collisions[0][1];
    println!(
        "first culprit: {c0} wrote {v} @ cycle {t0}, then {c1} wrote {v} again @ cycle {t1} — a lost update"
    );
    assert_ne!(c0, c1, "the collision is cross-core");

    // --- Step 3: break both cores at the scene with a cross trigger. ---
    // Arm a data comparator on the counter and break both cores on the
    // N-th write, landing us mid-race with all state intact.
    let mut config = watch_counter_config();
    for c in &mut config.cores {
        c.data_comparators = vec![DataComparator::on(
            AddrRange::new(race::COUNTER_ADDR, 4),
            AccessKind::Write,
        )];
    }
    config.cross_triggers = vec![CrossTrigger::on_any(
        vec![
            SignalRef::DataComp {
                core: CoreId(0),
                idx: 0,
            },
            SignalRef::DataComp {
                core: CoreId(1),
                idx: 0,
            },
        ],
        TriggerAction::BreakCores(vec![CoreId(0), CoreId(1)]),
    )
    .with_count(50)];
    let (dev, _) = run_traced(&buggy, config);
    assert!(dev.soc().core(CoreId(0)).is_halted());
    assert!(dev.soc().core(CoreId(1)).is_halted());
    println!(
        "cross trigger: both cores halted together at the 50th counter write\n\
               (core0 pc={:#010x}, core1 pc={:#010x}) — registers inspectable",
        dev.soc().core(CoreId(0)).pc(),
        dev.soc().core(CoreId(1)).pc()
    );

    // --- Step 4: verify the fix with the same instruments. ---
    let fixed = race::program_locked();
    let (dev, messages) = run_traced(&fixed, watch_counter_config());
    let total = dev.soc().backdoor_read_word(race::COUNTER_ADDR);
    let log = write_log(&messages);
    let collisions = log.windows(2).filter(|w| w[0].2 == w[1].2).count();
    println!("fixed run    : counter = {total} (exact), {collisions} collisions in the trace");
    assert_eq!(total, race::expected_total());
    assert_eq!(collisions, 0);
    println!("\nrace hunt OK — found, caught in the act, and fixed");
    Ok(())
}
