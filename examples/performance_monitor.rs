//! The PCP2 as "a new programmable tool": performance monitoring and
//! consistency checking (Section 6) while the application runs, plus a
//! disassembled trace listing of what the cores executed.
//!
//! ```sh
//! cargo run --example performance_monitor
//! ```

use mcds::observer::{CoreTraceConfig, TraceQualifier};
use mcds::McdsConfig;
use mcds_host::listing::{format_flow, format_messages};
use mcds_psi::device::{DeviceBuilder, DeviceVariant};
use mcds_psi::service::ConsistencyRule;
use mcds_soc::bus::AddrRange;
use mcds_soc::event::CoreId;
use mcds_trace::{ProgramImage, StreamDecoder};
use mcds_workloads::stimulus::{Profile, StimulusPlayer};
use mcds_workloads::{engine, gearbox, FuelMap};

const RUN_CYCLES: u64 = 250_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Engine + gearbox on two cores, program trace on.
    let config = McdsConfig {
        cores: vec![
            CoreTraceConfig {
                program_trace: TraceQualifier::Always,
                ..Default::default()
            },
            CoreTraceConfig {
                program_trace: TraceQualifier::Always,
                ..Default::default()
            },
        ],
        fifo_depth: 4096,
        sink_bandwidth: 8,
        ..Default::default()
    };
    let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
        .cores(2)
        .mcds(config)
        .build();
    let engine_prog = engine::program_with_map(None, &FuelMap::factory());
    let gear_prog = gearbox::program(None);
    dev.soc_mut().load_program(&engine_prog);
    dev.soc_mut().load_program(&gear_prog);
    dev.soc_mut().core_mut(CoreId(1)).set_pc(0x8001_0000);
    dev.soc_mut()
        .periph_mut()
        .set_input(gearbox::SPEED_PORT, 55);

    // Arm the PCP2's monitor programs.
    let service = dev.service_mut().expect("ED device has a PCP2");
    service.perf_mut().set_enabled(true);
    service.checker_mut().add_rule(ConsistencyRule {
        // Gears outside 1..=5 written to the shared gear variable would be
        // a controller bug.
        range: AddrRange::new(gearbox::GEAR_ADDR, 4),
        min: 1,
        max: 5,
    });

    // Drive.
    let mut player = StimulusPlayer::new(Profile::drive_cycle(
        engine::RPM_PORT,
        engine::LOAD_PORT,
        RUN_CYCLES,
    ));
    for _ in 0..RUN_CYCLES {
        {
            let now = dev.soc().cycle();
            let periph = dev.soc_mut().periph_mut();
            player.apply_due(now, |port, v| periph.set_input(port, v));
        }
        dev.step();
    }

    // Performance counters from the service core.
    let snap = dev.service().unwrap().perf().snapshot();
    println!("== PCP2 performance monitor ==");
    println!("cycles observed        : {}", snap.cycles);
    for (i, r) in snap.retired.iter().enumerate() {
        println!(
            "core{i} retired          : {r} ({:.3} IPC)",
            *r as f64 / snap.cycles as f64
        );
    }
    println!("bus transactions       : {}", snap.bus_xacts);
    println!("bus xacts / kilocycle  : {}", snap.bus_per_kilocycle);
    let violations = dev.service().unwrap().checker().violations();
    println!("consistency violations : {}", violations.len());
    assert!(snap.retired.iter().all(|&r| r > 1_000));
    assert!(violations.is_empty(), "the gearbox only writes legal gears");

    // A disassembled excerpt of the multi-core trace.
    let now = dev.soc().cycle();
    dev.mcds_mut().flush(now);
    let residual = dev.mcds_mut().take_messages();
    {
        let (soc, sink) = dev.soc_sink_mut();
        sink.store(&residual, soc.mapper_mut().emem_mut().unwrap());
    }
    let bytes = dev.sink().read_back(dev.soc().mapper().emem().unwrap());
    let messages = StreamDecoder::new(bytes).collect_all()?;
    let mut image = ProgramImage::from(&engine_prog);
    for (base, chunk) in &gear_prog.chunks {
        image.add_chunk(*base, chunk.clone());
    }
    let flow = mcds_trace::reconstruct_flow(&image, &messages)?;
    println!("\n== message stream (first 8) ==");
    print!("{}", format_messages(&messages, 8));
    println!("\n== reconstructed flow (first 12 of {}) ==", flow.len());
    print!("{}", format_flow(&image, &flow, 12));
    assert!(
        flow.iter().any(|e| e.core == CoreId(1)),
        "gearbox core traced too"
    );
    println!("\nperformance monitor OK");
    Ok(())
}
