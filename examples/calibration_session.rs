//! Calibration session: live-tune a running engine controller with XCP
//! over USB, exactly the Section 6/7 workflow:
//!
//! 1. the engine runs its fuel map from flash, overlaid by emulation RAM;
//! 2. the calibration tool connects with XCP, measures the torque request
//!    with a DAQ list (never stopping the engine);
//! 3. it authors a leaner map on the *inactive* calibration page, verifies
//!    it by checksum, and swaps pages atomically;
//! 4. the actuator output drops — the tune is live, the engine never
//!    missed a control deadline.
//!
//! ```sh
//! cargo run --example calibration_session
//! ```

use mcds_psi::device::{DeviceBuilder, DeviceVariant};
use mcds_psi::interface::InterfaceKind;
use mcds_soc::overlay::OverlayRange;
use mcds_soc::soc::memmap;
use mcds_workloads::{engine, FuelMap};
use mcds_xcp::XcpMaster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Target setup: engine + overlaid fuel map. ---
    let factory = FuelMap::factory();
    let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
        .cores(1)
        .build();
    dev.soc_mut()
        .load_program(&engine::program_with_map(None, &factory));
    dev.soc_mut().mapper_mut().configure_range(
        0,
        OverlayRange {
            flash_addr: engine::MAP_FLASH_ADDR,
            size: 1024,
            offset_page0: 0,    // page 0: working copy of the factory map
            offset_page1: 1024, // page 1: the tune we are authoring
        },
    )?;
    dev.soc_mut().mapper_mut().set_range_enabled(0, true);
    dev.soc_mut()
        .backdoor_write(memmap::EMEM_BASE, &factory.to_bytes());
    dev.soc_mut().periph_mut().set_input(engine::RPM_PORT, 3000);
    dev.soc_mut().periph_mut().set_input(engine::LOAD_PORT, 120);
    dev.run_cycles(20_000);
    let duration_factory = dev.soc().periph().output(engine::INJECTION_PORT);
    println!("factory tune : injection duration = {duration_factory}");
    assert_eq!(
        duration_factory,
        engine::reference_duration(&factory, 3000, 120)
    );

    // --- The calibration tool connects. ---
    let mut xcp = XcpMaster::new(InterfaceKind::Usb11);
    let info = xcp.connect(&mut dev)?;
    println!(
        "XCP connected: MAX_CTO={}, calibration={}, daq={}",
        info.max_cto, info.cal_supported, info.daq_supported
    );

    // Measure the torque request at a 1 ms raster while the engine runs.
    xcp.start_measurement(&mut dev, &[(engine::TORQUE_REQ_ADDR, 4)], 0, 1)?;
    let dtos = xcp.measure(&mut dev, 450_000); // 3 ms of engine time
    println!("DAQ          : {} torque samples while running", dtos.len());
    assert!(!dtos.is_empty());
    xcp.stop_measurement(&mut dev)?;

    // --- Author the lean tune on the inactive page. ---
    let lean = factory.lean();
    xcp.write_block(&mut dev, memmap::EMEM_BASE + 1024, &lean.to_bytes())?;
    let sum = xcp.checksum(&mut dev, memmap::EMEM_BASE + 1024, 128)?;
    let expected: u32 = lean.to_bytes().iter().map(|&b| b as u32).sum();
    assert_eq!(sum, expected, "tune verified on the device");
    println!(
        "lean tune    : {} bytes downloaded and checksum-verified",
        128
    );

    // --- The atomic swap: one control access. ---
    assert_eq!(xcp.cal_page(&mut dev)?, 0);
    xcp.set_cal_page(&mut dev, 1)?;
    dev.run_cycles(20_000);
    let duration_lean = dev.soc().periph().output(engine::INJECTION_PORT);
    println!("lean tune    : injection duration = {duration_lean}");
    assert_eq!(duration_lean, engine::reference_duration(&lean, 3000, 120));
    assert!(
        duration_lean < duration_factory,
        "the tune is visibly leaner"
    );

    // --- Roll back just as atomically. ---
    xcp.set_cal_page(&mut dev, 0)?;
    dev.run_cycles(20_000);
    assert_eq!(
        dev.soc().periph().output(engine::INJECTION_PORT),
        duration_factory,
        "rollback restores the factory behaviour"
    );
    assert!(
        !dev.soc().core(mcds_soc::CoreId(0)).is_halted(),
        "the engine never stopped"
    );
    println!(
        "\ncalibration session OK — tuned, verified, swapped and rolled back\n\
         over USB ({} XCP commands) without stopping the engine.",
        xcp.commands_sent()
    );
    Ok(())
}
