//! Quickstart: build a TC1796ED-class device, run a small program under
//! full MCDS trace, download the trace memory over USB and reconstruct
//! exactly which instructions executed.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mcds::observer::{CoreTraceConfig, TraceQualifier};
use mcds::McdsConfig;
use mcds_host::{Debugger, TraceSession};
use mcds_psi::device::{DeviceBuilder, DeviceVariant};
use mcds_psi::interface::InterfaceKind;
use mcds_soc::asm::assemble;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A program: compute 10! by repeated multiplication.
    let program = assemble(
        "
        .org 0x80000000
        start:
            li r1, 1           ; acc
            li r2, 10          ; n
        loop:
            mul r1, r1, r2
            addi r2, r2, -1
            bne r2, r0, loop
            li r3, 0xD0000000
            sw r1, 0(r3)       ; publish the result
            halt
        ",
    )?;

    // 2. A development device (the PSI single-chip side booster) with
    //    program trace always on.
    let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
        .cores(1)
        .mcds(McdsConfig {
            cores: vec![CoreTraceConfig {
                program_trace: TraceQualifier::Always,
                ..Default::default()
            }],
            ..Default::default()
        })
        .build();
    dev.soc_mut().load_program(&program);

    // 3. Attach the debugger over USB and capture a full trace session.
    let mut dbg = Debugger::attach(dev, InterfaceKind::Usb11);
    dbg.hold_all_at_reset();
    let session = TraceSession::new(&program);
    dbg.resume_all()?;
    let outcome = session.capture(&mut dbg, 1_000_000)?;

    // 4. The reconstruction shows every executed instruction.
    println!("trace memory used : {} bytes", outcome.trace_bytes);
    println!("messages decoded  : {}", outcome.messages.len());
    println!("instructions run  : {}", outcome.flow.len());
    println!("first ten pcs     :");
    for e in outcome.flow.iter().take(10) {
        println!("    {} @ {:#010x}", e.core, e.pc);
    }

    // 5. And the program's answer, read over the debug link.
    let result = dbg.read_words(0xD000_0000, 1)?[0];
    println!("10! (from target) : {result}");
    assert_eq!(result, 3_628_800);
    // 2 li + 10 iterations × 3 + 2-word li + sw = 35 retired instructions
    // (HALT never retires).
    assert_eq!(outcome.flow.len(), 2 + 10 * 3 + 2 + 1);
    println!("\nquickstart OK");
    Ok(())
}
