//! Trace filtering: "developers only require key pieces of information not
//! millions of cycles of unrelated trace" (Section 3).
//!
//! The engine controller runs a long warm-up before entering the
//! interesting region. Three capture strategies over the same run:
//!
//! 1. everything (program + data, always on);
//! 2. a trigger-qualified window around the interesting function;
//! 3. data trace filtered to a single variable.
//!
//! The example prints the trace sizes and shows the windowed capture still
//! contains the full story of the region of interest.
//!
//! ```sh
//! cargo run --example trace_filtering
//! ```

use mcds::observer::DataTraceConfig;
use mcds::{AccessKind, DataComparator, McdsConfig, ProgramComparator, SignalRef, TraceQualifier};
use mcds_psi::device::{DeviceBuilder, DeviceVariant};
use mcds_soc::bus::AddrRange;
use mcds_soc::event::CoreId;
use mcds_trace::{StreamDecoder, TimedMessage};
use mcds_workloads::stimulus::{Profile, StimulusPlayer};
use mcds_workloads::{engine, FuelMap};

const RUN_CYCLES: u64 = 300_000;

fn base_config() -> McdsConfig {
    McdsConfig {
        cores: vec![Default::default()],
        fifo_depth: 4096,
        sink_bandwidth: 8,
        ..Default::default()
    }
}

fn run(config: McdsConfig) -> (Vec<TimedMessage>, u64) {
    let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
        .cores(1)
        .mcds(config)
        .trace_segments(vec![4, 5, 6, 7])
        .build();
    dev.soc_mut()
        .load_program(&engine::program_with_map(None, &FuelMap::factory()));
    let mut player = StimulusPlayer::new(Profile::drive_cycle(
        engine::RPM_PORT,
        engine::LOAD_PORT,
        RUN_CYCLES,
    ));
    for _ in 0..RUN_CYCLES {
        {
            let now = dev.soc().cycle();
            let periph = dev.soc_mut().periph_mut();
            player.apply_due(now, |port, v| periph.set_input(port, v));
        }
        dev.step();
    }
    let now = dev.soc().cycle();
    dev.mcds_mut().flush(now);
    let residual = dev.mcds_mut().take_messages();
    {
        let (soc, sink) = dev.soc_sink_mut();
        sink.store(&residual, soc.mapper_mut().emem_mut().unwrap());
    }
    let bytes = dev.sink().read_back(dev.soc().mapper().emem().unwrap());
    let n = bytes.len() as u64;
    (StreamDecoder::new(bytes).collect_all().expect("decodes"), n)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = engine::program(None);
    let hot = program.symbol("cycle").expect("loop head");

    // 1. Everything.
    let mut everything = base_config();
    everything.cores[0].program_trace = TraceQualifier::Always;
    everything.cores[0].data_trace = DataTraceConfig {
        qualifier: TraceQualifier::Always,
        filter: None,
    };
    let (all_msgs, all_bytes) = run(everything);

    // 2. Windowed: one control-loop pass in every 16, opened by a counter
    //    on the loop-head comparator.
    let mut windowed = base_config();
    windowed.cores[0].program_comparators = vec![ProgramComparator::at(hot)];
    let head = SignalRef::ProgComp {
        core: CoreId(0),
        idx: 0,
    };
    let every16 = SignalRef::Counter(0);
    windowed.counters.push(mcds::CounterConfig {
        increment_on: head,
        threshold: 16,
        reset_on: None,
        mode: mcds::CounterMode::Repeat,
    });
    windowed.cores[0].program_trace = TraceQualifier::Window {
        start: every16,
        stop: head,
    };
    windowed.cores[0].data_trace = DataTraceConfig {
        qualifier: TraceQualifier::Window {
            start: every16,
            stop: head,
        },
        filter: None,
    };
    let (win_msgs, win_bytes) = run(windowed);

    // 3. One variable only.
    let mut filtered = base_config();
    filtered.cores[0].data_trace = DataTraceConfig {
        qualifier: TraceQualifier::Always,
        filter: Some(DataComparator::on(
            AddrRange::new(engine::TORQUE_REQ_ADDR, 4),
            AccessKind::Write,
        )),
    };
    let (var_msgs, var_bytes) = run(filtered);

    println!("capture strategy                     messages   encoded bytes");
    println!("-----------------------------------  ---------  -------------");
    println!(
        "everything                           {:<9}  {all_bytes}",
        all_msgs.len()
    );
    println!(
        "windowed (1 loop pass in 16)         {:<9}  {win_bytes}",
        win_msgs.len()
    );
    println!(
        "one variable (torque request)        {:<9}  {var_bytes}",
        var_msgs.len()
    );

    assert!(win_bytes * 3 < all_bytes, "the window cuts volume hard");
    assert!(var_bytes * 3 < all_bytes, "the filter cuts volume hard");

    // The windowed capture still tells the full story of its passes: each
    // window reconstructs from its own sync.
    let image =
        mcds_trace::ProgramImage::from(&engine::program_with_map(None, &FuelMap::factory()));
    let flow = mcds_trace::reconstruct_flow(&image, &win_msgs)?;
    assert!(!flow.is_empty());
    // Every windowed pass starts at the loop head.
    let syncs = win_msgs
        .iter()
        .filter(|m| matches!(m.message, mcds_trace::TraceMessage::ProgSync { pc } if pc == hot))
        .count();
    println!(
        "\nwindowed capture: {} loop passes fully reconstructed ({} instructions)",
        syncs,
        flow.len()
    );
    assert!(syncs > 5);
    println!("\ntrace filtering OK");
    Ok(())
}
