//! Dual-ECU cross-triggering: the engine ECU and the gearbox ECU are two
//! separate PSI devices wired pin-to-pin. A complex trigger on the engine
//! ECU (a torque spike) freezes *both* controllers at the same simulated
//! instant — the external-trigger capability the break & suspend switch
//! "manages" (Section 4), across package boundaries.
//!
//! ```sh
//! cargo run --example dual_ecu
//! ```

use mcds::observer::CoreTraceConfig;
use mcds::{AccessKind, CrossTrigger, DataComparator, McdsConfig, SignalRef, TriggerAction};
use mcds_psi::device::{DeviceBuilder, DeviceVariant};
use mcds_psi::{MultiChipBench, TriggerWire};
use mcds_soc::bus::AddrRange;
use mcds_soc::event::CoreId;
use mcds_workloads::{engine, gearbox, FuelMap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Engine ECU: trigger when the torque request exceeds 150. ---
    // (A masked value comparator: torque is always < 256 here, so watch for
    //  any write with a value whose bit 7 is set and ≥ 0b1001_0000 …
    //  simpler: exact-range trigger via value mask on the high bits.)
    let torque_spike = DataComparator::on(
        AddrRange::new(engine::TORQUE_REQ_ADDR, 4),
        AccessKind::Write,
    )
    .with_value(0x80, 0x80); // any torque with bit 7 set (≥128)
    let cfg_engine = McdsConfig {
        cores: vec![CoreTraceConfig {
            data_comparators: vec![torque_spike],
            ..Default::default()
        }],
        cross_triggers: vec![
            // Stop our own core…
            CrossTrigger::on_any(
                vec![SignalRef::DataComp {
                    core: CoreId(0),
                    idx: 0,
                }],
                TriggerAction::BreakCores(vec![CoreId(0)]),
            ),
            // …and tell the other ECU over trigger pin 0.
            CrossTrigger::on_any(
                vec![SignalRef::DataComp {
                    core: CoreId(0),
                    idx: 0,
                }],
                TriggerAction::TriggerOutPin(0),
            ),
        ],
        ..Default::default()
    };
    let mut engine_ecu = DeviceBuilder::new(DeviceVariant::EdSideBooster)
        .cores(1)
        .mcds(cfg_engine)
        .build();
    engine_ecu
        .soc_mut()
        .load_program(&engine::program_with_map(None, &FuelMap::factory()));
    // Start gentle; the spike comes later.
    engine_ecu
        .soc_mut()
        .periph_mut()
        .set_input(engine::RPM_PORT, 1200);
    engine_ecu
        .soc_mut()
        .periph_mut()
        .set_input(engine::LOAD_PORT, 20);

    // --- Gearbox ECU: break on the external pin. ---
    let cfg_gear = McdsConfig {
        cores: vec![CoreTraceConfig::default()],
        cross_triggers: vec![CrossTrigger::on_any(
            vec![SignalRef::ExternalPin(0)],
            TriggerAction::BreakCores(vec![CoreId(0)]),
        )],
        ..Default::default()
    };
    let mut gearbox_ecu = DeviceBuilder::new(DeviceVariant::EdSideBooster)
        .cores(1)
        .mcds(cfg_gear)
        .build();
    gearbox_ecu.soc_mut().load_program(&gearbox::program(None));
    gearbox_ecu
        .soc_mut()
        .core_mut(CoreId(0))
        .set_pc(0x8001_0000);
    gearbox_ecu
        .soc_mut()
        .periph_mut()
        .set_input(gearbox::SPEED_PORT, 40);

    // --- Wire them and drive. ---
    let mut bench = MultiChipBench::new(
        vec![engine_ecu, gearbox_ecu],
        vec![TriggerWire {
            from: 0,
            pin: 0,
            to: 1,
            line: 0,
        }],
    );
    bench.run_cycles(30_000);
    assert!(
        !bench.devices()[0].soc().core(CoreId(0)).is_halted(),
        "gentle running: no trigger yet"
    );
    let gear_before = bench.devices()[1]
        .soc()
        .backdoor_read_word(gearbox::GEAR_ADDR);
    println!("phase 1: both ECUs running; gearbox in gear {gear_before}");

    // The driver floors it: torque request jumps past 128.
    bench
        .device_mut(0)
        .soc_mut()
        .periph_mut()
        .set_input(engine::RPM_PORT, 6500);
    bench
        .device_mut(0)
        .soc_mut()
        .periph_mut()
        .set_input(engine::LOAD_PORT, 255);
    bench.run_cycles(5_000);

    let engine_core = bench.devices()[0].soc().core(CoreId(0));
    let gear_core = bench.devices()[1].soc().core(CoreId(0));
    assert!(engine_core.is_halted(), "engine ECU froze at the spike");
    assert!(
        gear_core.is_halted(),
        "gearbox ECU froze via the trigger wire"
    );
    let torque = bench.devices()[0]
        .soc()
        .backdoor_read_word(engine::TORQUE_REQ_ADDR);
    println!(
        "phase 2: torque spike ({torque}) froze engine ECU @ {:#010x} and gearbox ECU @ {:#010x}",
        engine_core.pc(),
        gear_core.pc()
    );
    assert!(torque >= 128);
    println!("\ndual ECU cross-trigger OK — both controllers stopped in step");
    Ok(())
}
