//! Minimal API-compatible subset of `serde_json` for offline builds:
//! `to_string` / `from_str` over the vendored `serde::Value` model.

use serde::Value;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

// ---- serialization -----------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a decimal point or exponent, so floats stay
                // floats across a round trip.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

// ---- deserialization ---------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("dangling escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "expected `,` or `]`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.expect(b'{')?;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "expected `,` or `}}`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => {
                self.skip_ws();
                self.parse_number()
            }
            other => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }
}

pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = Value::Map(vec![
            ("a".into(), Value::Int(-42)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("hi \"there\"\n".into())),
            ("d".into(), Value::Float(1.5)),
        ]);
        let json = to_string(&v).unwrap();
        let back: Value = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integers_stay_integers() {
        let json = to_string(&Value::Int(7)).unwrap();
        assert_eq!(json, "7");
        let back: Value = from_str("  7 ").unwrap();
        assert_eq!(back, Value::Int(7));
    }
}
