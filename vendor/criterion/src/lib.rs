//! Minimal functional subset of `criterion` for offline builds.
//!
//! Runs each benchmark a fixed number of iterations after a short warm-up
//! and prints the median per-iteration wall time. No statistics, plots,
//! or baselines — just enough that `cargo bench` compiles and produces
//! comparable numbers run-to-run.

use std::time::{Duration, Instant};

const WARMUP_ITERS: usize = 3;
const MEASURE_ITERS: usize = 15;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            samples: Vec::new(),
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        for _ in 0..MEASURE_ITERS {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            black_box(routine(input));
        }
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        if s.is_empty() {
            return Duration::ZERO;
        }
        s.sort();
        s[s.len() / 2]
    }
}

fn report(group: Option<&str>, name: &str, median: Duration, throughput: Option<Throughput>) {
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  ({:.1} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / median.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("{full:<48} median {median:>12.3?}{rate}");
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(None, name, b.median(), None);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(Some(&self.name), name, b.median(), self.throughput);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
