//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde subset — no `syn`/`quote` available offline, so the item
//! is parsed directly from the `proc_macro::TokenStream` and the impl is
//! emitted as source text.
//!
//! Supported shapes (everything this workspace derives): non-generic named
//! structs, tuple structs, unit structs, and enums with unit / tuple /
//! struct variants. `#[serde(...)]` attributes are not supported.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Skip `#[...]` attributes (including doc comments) and `pub` /
/// `pub(...)` visibility, returning the next index.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Advance past a type, stopping after the top-level `,` (if any).
/// Tracks `<`/`>` depth so commas inside generic arguments don't split.
fn skip_type(toks: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i64;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(g: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!(
                "serde derive stub: expected field name, found `{}`",
                toks[i]
            );
        };
        fields.push(name.to_string());
        i += 2; // name ':'
        i = skip_type(&toks, i);
    }
    fields
}

fn count_tuple_fields(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut count = 0;
    let mut depth = 0i64;
    let mut in_segment = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if in_segment {
                    count += 1;
                }
                in_segment = false;
                continue;
            }
            _ => {}
        }
        in_segment = true;
    }
    if in_segment {
        count += 1;
    }
    count
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!(
                "serde derive stub: expected variant name, found `{}`",
                toks[i]
            );
        };
        let name = name.to_string();
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(body))
            }
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(body))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` up to the separating comma.
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> (String, Body) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kw = toks[i].to_string();
    i += 1;
    let name = toks[i].to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive stub: generic types are not supported");
        }
    }
    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Body::NamedStruct(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                (name, Body::TupleStruct(count_tuple_fields(g)))
            }
            _ => (name, Body::UnitStruct),
        },
        "enum" => {
            let Some(TokenTree::Group(g)) = toks.get(i) else {
                panic!("serde derive stub: malformed enum body");
            };
            (name, Body::Enum(parse_variants(g)))
        }
        other => panic!("serde derive stub: cannot derive for `{other}` items"),
    }
}

fn ser_fields_map(fields: &[String], access: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&{access}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn gen_serialize(name: &str, body: &Body) -> String {
    let expr = match body {
        Body::NamedStruct(fields) => ser_fields_map(fields, "self."),
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), {payload})]),\n",
                            binders.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let payload = ser_fields_map(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), {payload})]),\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{expr}\n}}\n}}"
    )
}

fn de_fields_map(fields: &[String], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\
                 ::serde::map_get({source}, \"{f}\")?)?"
            )
        })
        .collect();
    inits.join(", ")
}

fn de_seq_construct(path: &str, n: usize, source: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
        .collect();
    format!(
        "{{ let items = ::serde::seq_items({source})?;\n\
         if items.len() != {n} {{\n\
         return ::std::result::Result::Err(::serde::Error::msg(\
         ::std::format!(\"expected {n} elements, found {{}}\", items.len())));\n\
         }}\n\
         ::std::result::Result::Ok({path}({}))\n}}",
        items.join(", ")
    )
}

fn gen_deserialize(name: &str, body: &Body) -> String {
    let expr = match body {
        Body::NamedStruct(fields) => format!(
            "::std::result::Result::Ok({name} {{ {} }})",
            de_fields_map(fields, "v")
        ),
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::TupleStruct(n) => de_seq_construct(name, *n, "v"),
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                let arm_body = match &v.kind {
                    VariantKind::Unit => {
                        format!("::std::result::Result::Ok({name}::{vn})")
                    }
                    VariantKind::Tuple(n) => {
                        let construct = if *n == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(payload)?))"
                            )
                        } else {
                            de_seq_construct(&format!("{name}::{vn}"), *n, "payload")
                        };
                        format!(
                            "{{ let payload = payload.ok_or_else(|| ::serde::Error::msg(\
                             \"variant `{vn}` expects a payload\"))?;\n{construct} }}"
                        )
                    }
                    VariantKind::Named(fields) => format!(
                        "{{ let payload = payload.ok_or_else(|| ::serde::Error::msg(\
                         \"variant `{vn}` expects a payload\"))?;\n\
                         ::std::result::Result::Ok({name}::{vn} {{ {} }}) }}",
                        de_fields_map(fields, "payload")
                    ),
                };
                arms.push_str(&format!("\"{vn}\" => {arm_body},\n"));
            }
            format!(
                "{{ let (variant, payload) = ::serde::enum_variant(v)?;\n\
                 match variant {{\n{arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(\
                 ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n}} }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n{expr}\n}}\n}}"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    gen_serialize(&name, &body)
        .parse()
        .expect("serde derive stub: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    gen_deserialize(&name, &body)
        .parse()
        .expect("serde derive stub: generated Deserialize impl failed to parse")
}
