//! Minimal API-compatible subset of the `bytes` crate for offline builds.
//!
//! Implements only what this workspace uses: `Bytes` (cheaply cloneable,
//! consuming reader view over shared storage), `BytesMut` (growable write
//! buffer), and the `Buf` / `BufMut` traits providing `get_u8` /
//! `has_remaining` / `put_u8`.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Read cursor over immutable shared bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-view relative to the current window (like `bytes::Bytes::slice`).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

/// Growable write buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

/// Consuming-read trait (subset).
pub trait Buf {
    fn remaining(&self) -> usize;

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8;

    fn advance(&mut self, cnt: usize);
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.start < self.end, "get_u8 on empty Bytes");
        let b = self.data[self.start];
        self.start += 1;
        b
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

/// Appending-write trait (subset).
pub trait BufMut {
    fn put_u8(&mut self, b: u8);

    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let mut m = BytesMut::new();
        for b in 0..10u8 {
            m.put_u8(b);
        }
        let mut b = m.freeze();
        assert_eq!(b.len(), 10);
        let s = b.slice(..4);
        assert_eq!(&s[..], &[0, 1, 2, 3]);
        assert_eq!(b.get_u8(), 0);
        assert_eq!(b.remaining(), 9);
        let tail = b.slice(7..);
        assert_eq!(&tail[..], &[8, 9]);
    }
}
