//! Minimal API-compatible subset of `serde` for offline builds.
//!
//! Instead of serde's visitor architecture, this stub routes everything
//! through a concrete self-describing [`Value`] tree: `Serialize` lowers a
//! type to `Value`, `Deserialize` rebuilds it from `Value`, and format
//! crates (here: the vendored `serde_json`) convert `Value` to/from text.
//! The derive macros in `serde_derive` generate `to_value`/`from_value`
//! impls against this model. Enum encoding is externally tagged, matching
//! serde's default.

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing intermediate representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i128),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Field order preserved; used for structs, struct variants, and maps.
    Map(Vec<(String, Value)>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn msg(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub mod de {
    /// Marker matching serde's `de::DeserializeOwned`; everything this stub
    /// can deserialize is owned.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}

    pub use crate::Deserialize;
}

pub mod ser {
    pub use crate::Serialize;
}

// ---- helpers used by derive-generated code -----------------------------

/// Look up a struct field by name.
pub fn map_get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, Error> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::msg(format!("missing field `{key}`"))),
        other => Err(Error::msg(format!(
            "expected map with field `{key}`, found {}",
            other.kind()
        ))),
    }
}

/// View a value as a sequence.
pub fn seq_items(v: &Value) -> Result<&[Value], Error> {
    match v {
        Value::Seq(items) => Ok(items),
        other => Err(Error::msg(format!(
            "expected sequence, found {}",
            other.kind()
        ))),
    }
}

/// Split an externally-tagged enum value into `(variant_name, payload)`.
pub fn enum_variant(v: &Value) -> Result<(&str, Option<&Value>), Error> {
    match v {
        Value::Str(name) => Ok((name, None)),
        Value::Map(entries) if entries.len() == 1 => Ok((&entries[0].0, Some(&entries[0].1))),
        other => Err(Error::msg(format!(
            "expected enum (string or single-entry map), found {}",
            other.kind()
        ))),
    }
}

// ---- primitive impls ---------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::msg(format!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    other => Err(Error::msg(format!(
                        "expected integer, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::msg(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!(
                "expected single-char string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        seq_items(v)?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = seq_items(v)?;
        if items.len() != N {
            return Err(Error::msg(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        vec.try_into()
            .map_err(|_| Error::msg("array length mismatch"))
    }
}

macro_rules! impl_tuple {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = seq_items(v)?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected tuple of length {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
