//! Minimal API-compatible subset of the `rand` crate for offline builds.
//!
//! Deterministic SplitMix64 generator behind the `StdRng` name; supports
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over integer ranges,
//! which is the entire surface this workspace uses.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types `gen_range` can sample from (subset: half-open and inclusive
/// integer ranges).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — deterministic, fast, good-enough distribution for
    /// simulation stimulus.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(-50i64..=50);
            let y = b.gen_range(-50i64..=50);
            assert_eq!(x, y);
            assert!((-50..=50).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(8);
        let diverged = (0..100).any(|_| a.gen_range(0u32..1000) != c.gen_range(0u32..1000));
        assert!(diverged);
    }
}
