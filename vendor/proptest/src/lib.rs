//! Minimal, deterministic subset of the `proptest` crate for offline
//! builds.
//!
//! Differences from real proptest, by design:
//! - generation is seeded from the test function's name, so every run of a
//!   given test explores the same cases (fully reproducible, no shrinking);
//! - a failing case panics with the `prop_assert!` message rather than a
//!   minimized counterexample;
//! - only the strategy combinators this workspace uses are provided.

pub mod test_runner {
    /// Subset of proptest's config: only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    #[derive(Debug)]
    pub enum TestCaseError {
        /// Case rejected by `prop_assume!` — does not count toward `cases`.
        Reject(String),
        /// Case failed a `prop_assert!` — aborts the test.
        Fail(String),
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// SplitMix64 — deterministic generator for strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(state: u64) -> TestRng {
            TestRng { state }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`. `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one property: runs `config.cases` accepted cases.
    pub fn run<F>(config: ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let mut rng = TestRng::from_seed(fnv1a(name));
        let mut accepted = 0u32;
        let mut rejected = 0u64;
        while accepted < config.cases {
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected < config.cases as u64 * 16 + 1024,
                        "proptest `{name}`: too many rejected cases ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed at case {accepted}: {msg}")
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    // ---- regex-subset string strategy ----------------------------------

    enum Atom {
        Literal(char),
        Any,
        Class(Vec<char>),
    }

    struct Quantified {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = chars.next().expect("unterminated character class");
            match c {
                ']' => break,
                '\\' => {
                    let e = chars.next().expect("dangling escape in class");
                    let lit = match e {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    };
                    set.push(lit);
                    prev = Some(lit);
                }
                '-' if prev.is_some() && chars.peek() != Some(&']') => {
                    let hi = chars.next().unwrap();
                    let lo = prev.take().unwrap();
                    for v in (lo as u32 + 1)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(v) {
                            set.push(ch);
                        }
                    }
                }
                other => {
                    set.push(other);
                    prev = Some(other);
                }
            }
        }
        assert!(!set.is_empty(), "empty character class");
        set
    }

    fn parse_pattern(pattern: &str) -> Vec<Quantified> {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '.' => Atom::Any,
                '\\' => {
                    let e = chars.next().expect("dangling escape");
                    Atom::Literal(match e {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    })
                }
                other => Atom::Literal(other),
            };
            let (min, max) = match chars.peek() {
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    if let Some((lo, hi)) = spec.split_once(',') {
                        (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        )
                    } else {
                        let n = spec.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
                _ => (1, 1),
            };
            atoms.push(Quantified { atom, min, max });
        }
        atoms
    }

    /// String strategy from a small regex subset: literals, `.`, `[a-z\n]`
    /// classes, and `* + ? {m} {m,n}` quantifiers.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for q in &atoms {
                let n = q.min + rng.below((q.max - q.min + 1) as u64) as usize;
                for _ in 0..n {
                    let c = match &q.atom {
                        Atom::Literal(c) => *c,
                        Atom::Any => char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap(),
                        Atom::Class(set) => set[rng.below(set.len() as u64) as usize],
                    };
                    out.push(c);
                }
            }
            out
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Full-range strategy for a primitive.
    pub struct Full<T>(PhantomData<T>);

    impl<T> Clone for Full<T> {
        fn clone(&self) -> Self {
            Full(PhantomData)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for Full<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = Full<$t>;
                fn arbitrary() -> Full<$t> {
                    Full(PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Full<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = Full<bool>;
        fn arbitrary() -> Full<bool> {
            Full(PhantomData)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    left
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(::std::stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run(config, ::std::stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_in_bounds(
            x in 3u32..10,
            v in collection::vec(0u8..4, 2..6),
            s in "[a-c]{2,4}",
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![Just(1u32), (5u32..8), any::<u32>().prop_map(|x| x | 0x100)]) {
            prop_assert!(v == 1 || (5..8).contains(&v) || v & 0x100 != 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u16..500, 5..20);
        let a: Vec<u16> = strat.generate(&mut TestRng::from_seed(42));
        let b: Vec<u16> = strat.generate(&mut TestRng::from_seed(42));
        assert_eq!(a, b);
    }
}
