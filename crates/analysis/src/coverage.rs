//! Instruction and branch-arc coverage from reconstructed program flow.
//!
//! Coverage is derived purely from the non-intrusive trace stream — the
//! target runs unmodified (no instrumentation, no breakpoint sweep), which
//! is exactly the "transparent debugging" property the paper's emulation
//! devices exist to provide. Reports are serializable and *mergeable*:
//! merge is associative, commutative and idempotent, so captures from
//! multiple chips or repeated runs compose in any order, and merging a
//! report with itself is a no-op.
//!
//! Lossy captures (FIFO overflow, corrupt link segments) carry a `gaps`
//! count: when `gaps > 0` the report is an explicit **lower bound** on the
//! true coverage.

use std::collections::{BTreeMap, HashMap};

use mcds_soc::asm::Program;
use mcds_soc::event::CoreId;
use mcds_trace::{ExecutedInstr, ProgramImage};

/// Hit count for one instruction address.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcCount {
    /// Instruction address.
    pub pc: u32,
    /// Observed retirements (a lower bound when the capture was lossy).
    pub count: u64,
}

/// Hit count for one control-flow arc.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArcCount {
    /// Address of the control-transfer instruction.
    pub from: u32,
    /// Address executed next (branch target, or fall-through for a
    /// not-taken conditional).
    pub to: u32,
    /// Observed traversals.
    pub count: u64,
}

/// A mergeable, serializable coverage report.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageReport {
    /// Covered instructions, sorted by address.
    pub pcs: Vec<PcCount>,
    /// Covered branch arcs, sorted by `(from, to)`.
    pub arcs: Vec<ArcCount>,
    /// Accounting gaps (overflows, desyncs, skipped corrupt segments) in
    /// the capture this report came from. Non-zero means the coverage is a
    /// lower bound. Merged as a maximum so merge stays idempotent.
    pub gaps: u64,
}

impl CoverageReport {
    /// Number of distinct instructions covered.
    pub fn covered_instructions(&self) -> usize {
        self.pcs.len()
    }

    /// Number of distinct branch arcs covered.
    pub fn covered_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// True if `pc` was observed executing.
    pub fn contains(&self, pc: u32) -> bool {
        self.pcs.binary_search_by_key(&pc, |p| p.pc).is_ok()
    }

    /// True if the arc `from -> to` was observed.
    pub fn contains_arc(&self, from: u32, to: u32) -> bool {
        self.arcs
            .binary_search_by_key(&(from, to), |a| (a.from, a.to))
            .is_ok()
    }

    /// True when the capture lost trace: coverage is a lower bound.
    pub fn is_lower_bound(&self) -> bool {
        self.gaps > 0
    }

    /// Covered fraction of `total` instructions (0.0–1.0).
    pub fn fraction_of(&self, total: usize) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.pcs.len() as f64 / total as f64
        }
    }

    /// Merges two reports.
    ///
    /// The covered sets union; per-key counts and the gap count take the
    /// maximum, which keeps the operation associative, commutative and
    /// idempotent (counts therefore stay lower bounds across merges of
    /// distinct runs).
    #[must_use = "merge returns the combined report without modifying the inputs"]
    pub fn merge(&self, other: &CoverageReport) -> CoverageReport {
        let mut pcs: BTreeMap<u32, u64> = self.pcs.iter().map(|p| (p.pc, p.count)).collect();
        for p in &other.pcs {
            let e = pcs.entry(p.pc).or_insert(0);
            *e = (*e).max(p.count);
        }
        let mut arcs: BTreeMap<(u32, u32), u64> = self
            .arcs
            .iter()
            .map(|a| ((a.from, a.to), a.count))
            .collect();
        for a in &other.arcs {
            let e = arcs.entry((a.from, a.to)).or_insert(0);
            *e = (*e).max(a.count);
        }
        CoverageReport {
            pcs: pcs
                .into_iter()
                .map(|(pc, count)| PcCount { pc, count })
                .collect(),
            arcs: arcs
                .into_iter()
                .map(|((from, to), count)| ArcCount { from, to, count })
                .collect(),
            gaps: self.gaps.max(other.gaps),
        }
    }
}

/// Number of words in `program`'s image that decode as instructions — the
/// denominator for [`CoverageReport::fraction_of`]. Inline data words that
/// happen to decode are counted too; treat the fraction as approximate for
/// programs with embedded tables.
pub fn program_instruction_count(program: &Program) -> usize {
    let image = ProgramImage::from(program);
    program
        .chunks
        .iter()
        .flat_map(|(base, bytes)| (0..bytes.len() as u32 / 4).map(move |i| base + i * 4))
        .filter(|&addr| matches!(image.instr_at(addr), Some(Ok(_))))
        .count()
}

/// Streaming coverage builder over reconstructed [`ExecutedInstr`]s.
#[must_use = "a coverage builder does nothing until instructions are fed and `finish` is called"]
#[derive(Debug)]
pub struct CoverageBuilder<'a> {
    image: &'a ProgramImage,
    pcs: BTreeMap<u32, u64>,
    arcs: BTreeMap<(u32, u32), u64>,
    last_pc: HashMap<CoreId, u32>,
    gaps: u64,
}

impl<'a> CoverageBuilder<'a> {
    /// Creates a builder classifying branches against `image`.
    pub fn new(image: &'a ProgramImage) -> CoverageBuilder<'a> {
        CoverageBuilder {
            image,
            pcs: BTreeMap::new(),
            arcs: BTreeMap::new(),
            last_pc: HashMap::new(),
            gaps: 0,
        }
    }

    /// Records one executed instruction (in per-core execution order).
    pub fn step(&mut self, instr: &ExecutedInstr) {
        *self.pcs.entry(instr.pc).or_insert(0) += 1;
        if let Some(&prev) = self.last_pc.get(&instr.core) {
            let is_branch = matches!(self.image.instr_at(prev), Some(Ok(i)) if i.is_branch());
            if is_branch {
                *self.arcs.entry((prev, instr.pc)).or_insert(0) += 1;
            }
        }
        self.last_pc.insert(instr.core, instr.pc);
    }

    /// Records a whole reconstructed flow.
    pub fn extend(&mut self, flow: &[ExecutedInstr]) {
        flow.iter().for_each(|i| self.step(i));
    }

    /// Notes a trace gap affecting `core` (or all cores when `None`): the
    /// report becomes a lower bound and no arc is fabricated across the
    /// discontinuity.
    pub fn note_gap(&mut self, core: Option<CoreId>) {
        self.gaps += 1;
        match core {
            Some(c) => {
                self.last_pc.remove(&c);
            }
            None => self.last_pc.clear(),
        }
    }

    /// Adds `n` externally-counted gaps (e.g. decoder resync gaps) without
    /// clearing arc continuity — call [`CoverageBuilder::note_gap`] instead
    /// when the discontinuity's core is known.
    pub fn add_gaps(&mut self, n: u64) {
        self.gaps += n;
        if n > 0 {
            self.last_pc.clear();
        }
    }

    /// Finalises the report.
    #[must_use]
    pub fn finish(self) -> CoverageReport {
        CoverageReport {
            pcs: self
                .pcs
                .into_iter()
                .map(|(pc, count)| PcCount { pc, count })
                .collect(),
            arcs: self
                .arcs
                .into_iter()
                .map(|((from, to), count)| ArcCount { from, to, count })
                .collect(),
            gaps: self.gaps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_soc::asm::assemble;

    fn sample_report(seed: u64) -> CoverageReport {
        CoverageReport {
            pcs: vec![
                PcCount {
                    pc: 0x100,
                    count: seed,
                },
                PcCount {
                    pc: 0x104 + (seed as u32 % 3) * 4,
                    count: 1,
                },
            ],
            arcs: vec![ArcCount {
                from: 0x104,
                to: 0x100,
                count: seed,
            }],
            gaps: seed % 2,
        }
    }

    #[test]
    fn merge_is_idempotent_and_commutative() {
        let a = sample_report(3);
        let b = sample_report(8);
        assert_eq!(a.merge(&a), a);
        assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn builder_records_taken_and_fallthrough_arcs() {
        // beq at 0x104: taken -> 0x10c, fall-through -> 0x108.
        let p = assemble(".org 0x100\nnop\nbeq r0, r0, target\nnop\ntarget:\nhalt").unwrap();
        let image = ProgramImage::from(&p);
        let mut b = CoverageBuilder::new(&image);
        let core = CoreId(0);
        let run = |pc| ExecutedInstr { core, pc };
        // Pass 1: branch taken.
        b.extend(&[run(0x100), run(0x104), run(0x10c)]);
        // Pass 2 (hypothetical not-taken path for arc coverage).
        b.note_gap(Some(core));
        b.extend(&[run(0x104), run(0x108)]);
        let report = b.finish();
        assert!(report.contains_arc(0x104, 0x10c));
        assert!(report.contains_arc(0x104, 0x108));
        assert!(!report.contains_arc(0x100, 0x104)); // nop is not a branch
        assert_eq!(report.gaps, 1);
        assert!(report.is_lower_bound());
    }

    #[test]
    fn instruction_count_counts_decodable_words() {
        let p = assemble(".org 0x100\nnop\nnop\nhalt").unwrap();
        assert_eq!(program_instruction_count(&p), 3);
    }
}
