//! Cycle-accurate flat and per-range profiling from program-flow trace.
//!
//! Every MCDS program message carries the cycle it was generated on
//! (Section 4: time stamping "allows a time resolution down to cycle
//! level"). Between two consecutive program messages of a core, exactly the
//! instructions the later message proves executed were retired, so the
//! timestamp delta is attributed — cycle-exactly in total — to those
//! instructions. No instrumentation, no sampling interrupt: the profile is
//! a pure function of the trace stream and the program image.

use std::collections::BTreeMap;

use mcds_soc::asm::Program;
use mcds_soc::bus::AddrRange;
use mcds_trace::{
    FlowReconstructor, ProgramImage, ReconstructError, TimedMessage, TraceMessage, TraceSource,
};

/// A named address range (symbol, function, table) for per-range profiles.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct NamedRange {
    /// Human-readable name (usually an assembler label).
    pub name: String,
    /// Half-open byte range the name covers.
    pub range: AddrRange,
}

/// Derives [`NamedRange`]s from a program's label symbols: each label
/// covers from its address up to the next label in the same chunk (or the
/// chunk end). `.equ` constants outside the image are ignored.
pub fn symbol_ranges(program: &Program) -> Vec<NamedRange> {
    let chunk_of = |addr: u32| -> Option<(u32, u32)> {
        program.chunks.iter().find_map(|(base, bytes)| {
            let end = base + bytes.len() as u32;
            (addr >= *base && addr < end).then_some((*base, end))
        })
    };
    let mut syms: Vec<(&String, u32, u32)> = program
        .symbols
        .iter()
        .filter_map(|(name, &addr)| chunk_of(addr).map(|(_, end)| (name, addr, end)))
        .collect();
    syms.sort_by(|a, b| (a.1, a.0).cmp(&(b.1, b.0)));
    let mut out = Vec::with_capacity(syms.len());
    for i in 0..syms.len() {
        let (name, addr, chunk_end) = syms[i];
        if i > 0 && syms[i - 1].1 == addr {
            continue; // aliased label at the same address: keep the first
        }
        let end = syms[i + 1..]
            .iter()
            .find(|(_, a, _)| *a > addr && *a <= chunk_end)
            .map_or(chunk_end, |&(_, a, _)| a);
        out.push(NamedRange {
            name: name.clone(),
            range: AddrRange::new(addr, end - addr),
        });
    }
    out
}

/// Cycles and retirements attributed to one program counter.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcProfile {
    /// Instruction address.
    pub pc: u32,
    /// Cycles attributed to this address.
    pub cycles: u64,
    /// Times the instruction retired.
    pub retires: u64,
}

/// Per-core totals.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreProfile {
    /// Core index.
    pub core: u8,
    /// Cycles attributed to this core's instructions (equals the timestamp
    /// span from the core's first anchor to its last program message when
    /// the capture is lossless).
    pub cycles: u64,
    /// Instructions reconstructed for this core.
    pub instructions: u64,
    /// Timestamp of the first program message seen (anchor).
    pub first_ts: u64,
    /// Timestamp of the last program message seen.
    pub last_ts: u64,
}

/// Cycles and retirements aggregated over a [`NamedRange`].
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct RangeProfile {
    /// The range's name.
    pub name: String,
    /// Cycles attributed inside the range.
    pub cycles: u64,
    /// Retirements inside the range.
    pub retires: u64,
}

/// The finished profile. Obtain via [`Profiler::finish`].
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// Flat profile, sorted by address.
    pub pcs: Vec<PcProfile>,
    /// Per-core totals, sorted by core index.
    pub cores: Vec<CoreProfile>,
    /// Inter-sample gap histogram: bucket 0 counts zero-cycle gaps, bucket
    /// `i >= 1` counts gaps in `[2^(i-1), 2^i)` cycles.
    pub gap_histogram: Vec<u64>,
    /// Flow desyncs recovered from in lossy mode.
    pub desyncs: u64,
    /// FIFO overflow messages seen.
    pub overflows: u64,
    /// Messages the on-chip FIFO reported dropped.
    pub overflow_lost: u64,
    /// Program messages skipped while a core's flow was unsynced.
    pub skipped_unsynced: u64,
}

impl ProfileReport {
    /// Total cycles attributed across all cores.
    pub fn total_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.cycles).sum()
    }

    /// Total instructions reconstructed.
    pub fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Number of accounting gaps (desyncs + overflows). When non-zero the
    /// profile is a lower bound on the true execution.
    pub fn gaps(&self) -> u64 {
        self.desyncs + self.overflows
    }

    /// True when no trace was lost: the profile is cycle-exact.
    pub fn is_lossless(&self) -> bool {
        self.gaps() == 0 && self.skipped_unsynced == 0
    }

    /// The `n` hottest addresses by attributed cycles (ties by address).
    #[must_use]
    pub fn hot_spots(&self, n: usize) -> Vec<PcProfile> {
        let mut sorted = self.pcs.clone();
        sorted.sort_by(|a, b| (b.cycles, a.pc).cmp(&(a.cycles, b.pc)));
        sorted.truncate(n);
        sorted
    }

    /// Aggregates the flat profile over `ranges` (e.g. [`symbol_ranges`]).
    #[must_use]
    pub fn attribute(&self, ranges: &[NamedRange]) -> Vec<RangeProfile> {
        ranges
            .iter()
            .map(|r| {
                let (cycles, retires) = self
                    .pcs
                    .iter()
                    .filter(|p| r.range.contains(p.pc))
                    .fold((0, 0), |(c, n), p| (c + p.cycles, n + p.retires));
                RangeProfile {
                    name: r.name.clone(),
                    cycles,
                    retires,
                }
            })
            .collect()
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct CoreState {
    anchor_ts: Option<u64>,
    first_ts: Option<u64>,
    last_ts: u64,
    cycles: u64,
    instructions: u64,
}

/// Streaming profiler over decoded [`TimedMessage`]s.
///
/// Feed messages in stream order (the wire stream is already in temporal
/// order) and call [`Profiler::finish`]. Feeding is per-message, so a
/// report is invariant under re-chunking of the same stream.
#[must_use = "a profiler does nothing until messages are fed and `finish` is called"]
#[derive(Debug)]
pub struct Profiler<'a> {
    recon: FlowReconstructor<'a>,
    per_pc: BTreeMap<u32, (u64, u64)>,
    cores: BTreeMap<u8, CoreState>,
    gap_histogram: Vec<u64>,
    desyncs: u64,
    overflows: u64,
    overflow_lost: u64,
}

impl<'a> Profiler<'a> {
    /// Creates a profiler reconstructing against `image`.
    pub fn new(image: &'a ProgramImage) -> Profiler<'a> {
        Profiler {
            recon: FlowReconstructor::new(image),
            per_pc: BTreeMap::new(),
            cores: BTreeMap::new(),
            gap_histogram: Vec::new(),
            desyncs: 0,
            overflows: 0,
            overflow_lost: 0,
        }
    }

    fn bucket(gap: u64) -> usize {
        if gap == 0 {
            0
        } else {
            64 - gap.leading_zeros() as usize
        }
    }

    fn record_gap(&mut self, gap: u64) {
        let b = Self::bucket(gap);
        if self.gap_histogram.len() <= b {
            self.gap_histogram.resize(b + 1, 0);
        }
        self.gap_histogram[b] += 1;
    }

    /// Feeds one message (strict): a trace/image contradiction is an error.
    ///
    /// # Errors
    ///
    /// Propagates [`ReconstructError`] from flow reconstruction; the
    /// profiler is left desynced for that core but otherwise usable.
    pub fn feed(&mut self, m: &TimedMessage) -> Result<(), ReconstructError> {
        self.feed_inner(m, false).map(|_| ())
    }

    /// Feeds one message, treating reconstruction errors as trace loss:
    /// the core is desynced (it re-anchors at its next `ProgSync`) and the
    /// desync is counted, exactly like
    /// [`mcds_trace::reconstruct_flow_lossy`].
    pub fn feed_lossy(&mut self, m: &TimedMessage) {
        let _ = self.feed_inner(m, true);
    }

    fn feed_inner(&mut self, m: &TimedMessage, lossy: bool) -> Result<(), ReconstructError> {
        if let TraceMessage::Overflow { lost } = m.message {
            self.overflows += 1;
            self.overflow_lost += u64::from(lost);
            if let TraceSource::Core(c) = m.source {
                self.cores.entry(c.0).or_default().anchor_ts = None;
            }
            // The reconstructor drops its own anchor on overflow.
            let _ = self.recon.feed(m);
            return Ok(());
        }
        let TraceSource::Core(core) = m.source else {
            return Ok(()); // bus data messages carry no program flow
        };
        if !m.message.is_program() {
            return Ok(());
        }
        let skipped_before = self.recon.skipped_unsynced();
        let batch = match self.recon.feed(m) {
            Ok(batch) => batch,
            Err(e) => {
                if lossy {
                    self.recon.desync(core);
                    self.desyncs += 1;
                    self.cores.entry(core.0).or_default().anchor_ts = None;
                    return Ok(());
                }
                return Err(e);
            }
        };
        let state = self.cores.entry(core.0).or_default();
        state.last_ts = m.timestamp;
        if matches!(m.message, TraceMessage::ProgSync { .. }) {
            state.anchor_ts = Some(m.timestamp);
            state.first_ts.get_or_insert(m.timestamp);
            return Ok(());
        }
        if batch.is_empty() {
            // Either a zero-length flush or a message skipped unsynced.
            if self.recon.skipped_unsynced() == skipped_before {
                state.anchor_ts = Some(m.timestamp);
            }
            return Ok(());
        }
        let span = state.anchor_ts.map_or(0, |a| m.timestamp.saturating_sub(a));
        state.anchor_ts = Some(m.timestamp);
        state.cycles += span;
        state.instructions += batch.len() as u64;
        self.record_gap(span);
        // Distribute the span over the batch so per-pc cycles sum exactly
        // to the span; the remainder lands on the trailing instructions.
        let n = batch.len() as u64;
        let base = span / n;
        let rem = (span % n) as usize;
        let first_extra = batch.len() - rem;
        for (k, instr) in batch.iter().enumerate() {
            let share = base + u64::from(k >= first_extra);
            let entry = self.per_pc.entry(instr.pc).or_insert((0, 0));
            entry.0 += share;
            entry.1 += 1;
        }
        Ok(())
    }

    /// Feeds a slice of messages (strict).
    ///
    /// # Errors
    ///
    /// Stops at and returns the first reconstruction error.
    pub fn feed_all(&mut self, messages: &[TimedMessage]) -> Result<(), ReconstructError> {
        messages.iter().try_for_each(|m| self.feed(m))
    }

    /// Feeds a slice of messages, absorbing errors as desyncs.
    pub fn feed_all_lossy(&mut self, messages: &[TimedMessage]) {
        messages.iter().for_each(|m| self.feed_lossy(m));
    }

    /// Finalises the report.
    #[must_use]
    pub fn finish(self) -> ProfileReport {
        ProfileReport {
            pcs: self
                .per_pc
                .into_iter()
                .map(|(pc, (cycles, retires))| PcProfile {
                    pc,
                    cycles,
                    retires,
                })
                .collect(),
            cores: self
                .cores
                .into_iter()
                .map(|(core, s)| CoreProfile {
                    core,
                    cycles: s.cycles,
                    instructions: s.instructions,
                    first_ts: s.first_ts.unwrap_or(0),
                    last_ts: s.last_ts,
                })
                .collect(),
            gap_histogram: self.gap_histogram,
            desyncs: self.desyncs,
            overflows: self.overflows,
            overflow_lost: self.overflow_lost,
            skipped_unsynced: self.recon.skipped_unsynced(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_soc::asm::assemble;
    use mcds_soc::event::CoreId;
    use mcds_trace::BranchBits;

    fn msg(ts: u64, core: u8, message: TraceMessage) -> TimedMessage {
        TimedMessage {
            timestamp: ts,
            source: TraceSource::Core(CoreId(core)),
            message,
        }
    }

    #[test]
    fn cycles_attributed_between_samples() {
        // 4 instructions ending in a taken direct branch, 12 cycles apart.
        let p = assemble(".org 0x100\nstart:\nnop\nnop\nnop\nbeq r0, r0, start").unwrap();
        let image = ProgramImage::from(&p);
        let mut prof = Profiler::new(&image);
        prof.feed(&msg(10, 0, TraceMessage::ProgSync { pc: 0x100 }))
            .unwrap();
        prof.feed(&msg(22, 0, TraceMessage::DirectBranch { i_cnt: 4 }))
            .unwrap();
        let report = prof.finish();
        assert_eq!(report.total_cycles(), 12);
        assert_eq!(report.total_instructions(), 4);
        assert_eq!(report.pcs.iter().map(|p| p.cycles).sum::<u64>(), 12);
        assert!(report.is_lossless());
        // 4 instructions share 12 cycles exactly.
        assert!(report.pcs.iter().all(|p| p.cycles == 3));
    }

    #[test]
    fn overflow_counts_as_gap_and_desyncs() {
        let p = assemble(".org 0x100\nstart:\nnop\nj start").unwrap();
        let image = ProgramImage::from(&p);
        let mut prof = Profiler::new(&image);
        prof.feed(&msg(0, 0, TraceMessage::ProgSync { pc: 0x100 }))
            .unwrap();
        prof.feed(&msg(5, 0, TraceMessage::Overflow { lost: 3 }))
            .unwrap();
        // Program message while unsynced is skipped, not attributed.
        prof.feed(&msg(9, 0, TraceMessage::DirectBranch { i_cnt: 2 }))
            .unwrap();
        let report = prof.finish();
        assert_eq!(report.overflows, 1);
        assert_eq!(report.overflow_lost, 3);
        assert_eq!(report.skipped_unsynced, 1);
        assert_eq!(report.total_instructions(), 0);
        assert!(!report.is_lossless());
    }

    #[test]
    fn symbol_ranges_cover_labels_in_order() {
        let p = assemble(".equ PORT, 0xF0000000\n.org 0x100\na:\nnop\nnop\nb:\nnop\nhalt").unwrap();
        let ranges = symbol_ranges(&p);
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0].name, "a");
        assert_eq!(ranges[0].range, AddrRange::new(0x100, 8));
        assert_eq!(ranges[1].name, "b");
        assert_eq!(ranges[1].range, AddrRange::new(0x108, 8));
    }

    #[test]
    fn flush_history_spans_attribute_exactly() {
        // Branch history run: 3 instructions over 7 cycles -> 2+2+3 split.
        let p = assemble(".org 0x100\nnop\nnop\nnop\nhalt").unwrap();
        let image = ProgramImage::from(&p);
        let mut prof = Profiler::new(&image);
        prof.feed(&msg(100, 1, TraceMessage::ProgSync { pc: 0x100 }))
            .unwrap();
        prof.feed(&msg(
            107,
            1,
            TraceMessage::FlowFlush {
                i_cnt: 3,
                history: BranchBits::new(),
            },
        ))
        .unwrap();
        let report = prof.finish();
        let cycles: Vec<u64> = report.pcs.iter().map(|p| p.cycles).collect();
        assert_eq!(cycles, vec![2, 2, 3]);
        assert_eq!(report.cores[0].core, 1);
        assert_eq!(report.cores[0].cycles, 7);
    }
}
