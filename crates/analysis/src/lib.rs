#![warn(missing_docs)]

//! # mcds-analysis — trace-driven profiling, coverage and bus analysis
//!
//! The point of cycle-accurate on-chip time stamping (Mayer et al., DATE
//! 2005, Section 4) is that the *host* can turn the raw MCDS stream into
//! performance and behaviour insight without perturbing the target. This
//! crate is that host-side layer. It consumes decoded [`TimedMessage`]
//! streams (and, for system-level views, the SoC's observable
//! [`CycleRecord`] event stream) and produces:
//!
//! * [`profile`] — a cycle-accurate flat and per-range profiler. Program
//!   messages carry the cycle they were generated on, so the span between
//!   consecutive program messages of a core is attributed to the
//!   instructions that message proves were executed: a hot-spot table and
//!   an inter-sample gap histogram fall out directly.
//! * [`coverage`] — instruction and branch-arc coverage maps with a
//!   mergeable, serializable report. Merge is associative, commutative and
//!   idempotent, so multi-chip / multi-run captures compose; lossy captures
//!   carry an explicit gap count ("coverage is a lower bound, N gaps").
//! * [`bus`] — bus-contention analysis: per-master utilization, grant /
//!   wait-state and contention statistics, cross-checked against the bus's
//!   own [`mcds_soc::bus::BusCounters`] ground truth.
//! * [`chrome`] — a Chrome trace-event JSON (`chrome://tracing` /
//!   Perfetto-loadable) timeline exporter covering cores, DMA, interrupts
//!   and trigger/break events.
//!
//! [`TimedMessage`]: mcds_trace::TimedMessage
//! [`CycleRecord`]: mcds_soc::event::CycleRecord

pub mod bus;
pub mod chrome;
pub mod coverage;
pub mod profile;

pub use bus::{BusAnalyzer, BusContentionReport, BusMasterStats, BusTraceStats};
pub use chrome::{cycles_to_us, ChromeEvent, ChromeTrace, TimelineBuilder};
pub use coverage::{program_instruction_count, ArcCount, CoverageBuilder, CoverageReport, PcCount};
pub use profile::{
    symbol_ranges, CoreProfile, NamedRange, PcProfile, ProfileReport, Profiler, RangeProfile,
};
