//! Chrome trace-event JSON timeline export.
//!
//! Emits the JSON-array flavour of the Trace Event Format, loadable in
//! `chrome://tracing` and <https://ui.perfetto.dev>: cores appear as
//! threads with execution slices, DMA bursts as slices on their own
//! track, and interrupts, triggers, watchpoints and break events as
//! instants. Timestamps are microseconds derived from the SoC clock
//! ([`memmap::CLOCK_HZ`]), so the timeline is wall-clock-true for the
//! modelled 150 MHz part.

use std::collections::BTreeMap;

use mcds_soc::bus::MasterId;
use mcds_soc::event::{CycleRecord, SocEvent};
use mcds_soc::sink::CycleSink;
use mcds_soc::soc::memmap;
use mcds_trace::{TimedMessage, TraceMessage};

/// Converts an SoC cycle count to trace-event microseconds.
pub fn cycles_to_us(cycles: u64) -> f64 {
    cycles as f64 * 1e6 / memmap::CLOCK_HZ as f64
}

/// Process id used for all emitted events.
pub const PID: u32 = 1;
/// Thread id of the DMA track (cores use their own index).
pub const DMA_TID: u32 = 64;
/// Thread id of the trigger/break track.
pub const TRIGGER_TID: u32 = 65;
/// Thread id of the trace-housekeeping track (watchpoints, overflows).
pub const TRACE_TID: u32 = 66;

/// One Trace Event Format entry.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Event name.
    pub name: String,
    /// Category string.
    pub cat: String,
    /// Phase: `"X"` complete, `"i"` instant, `"M"` metadata.
    pub ph: String,
    /// Start timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds (0 for instants/metadata).
    pub dur: f64,
    /// Process id.
    pub pid: u32,
    /// Thread id.
    pub tid: u32,
    /// Free-form arguments.
    pub args: serde::Value,
}

impl ChromeEvent {
    fn instant(name: String, cat: &str, tid: u32, cycle: u64) -> ChromeEvent {
        ChromeEvent {
            name,
            cat: cat.to_string(),
            ph: "i".to_string(),
            ts: cycles_to_us(cycle),
            dur: 0.0,
            pid: PID,
            tid,
            args: serde::Value::Null,
        }
    }

    fn complete(name: String, cat: &str, tid: u32, start: u64, end: u64) -> ChromeEvent {
        ChromeEvent {
            name,
            cat: cat.to_string(),
            ph: "X".to_string(),
            ts: cycles_to_us(start),
            dur: cycles_to_us(end.saturating_sub(start)),
            pid: PID,
            tid,
            args: serde::Value::Null,
        }
    }

    fn thread_name(tid: u32, name: &str) -> ChromeEvent {
        ChromeEvent {
            name: "thread_name".to_string(),
            cat: "__metadata".to_string(),
            ph: "M".to_string(),
            ts: 0.0,
            dur: 0.0,
            pid: PID,
            tid,
            args: serde::Value::Map(vec![(
                "name".to_string(),
                serde::Value::Str(name.to_string()),
            )]),
        }
    }
}

/// A finished timeline: a list of [`ChromeEvent`]s serializable as the
/// JSON-array Trace Event Format.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Default, PartialEq)]
pub struct ChromeTrace {
    /// The events, in emission order (viewers sort by `ts` themselves).
    pub events: Vec<ChromeEvent>,
}

impl ChromeTrace {
    /// Serializes to Trace Event Format JSON (array form).
    ///
    /// # Panics
    ///
    /// Never panics: serialization of these value types is infallible.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.events).expect("chrome trace serializes")
    }

    /// Parses a JSON-array timeline back (used for round-trip checks).
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed JSON.
    pub fn from_json(json: &str) -> Result<ChromeTrace, serde_json::Error> {
        Ok(ChromeTrace {
            events: serde_json::from_str(json)?,
        })
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were emitted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Latest `ts + dur` across all events, in microseconds.
    pub fn end_ts(&self) -> f64 {
        self.events.iter().map(|e| e.ts + e.dur).fold(0.0, f64::max)
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct CoreSpan {
    first_retire: Option<u64>,
    last_cycle: u64,
    stopped_at: Option<(u64, &'static str)>,
    retires: u64,
}

#[derive(Debug, Clone, Copy)]
struct DmaSpan {
    start: u64,
    end: u64,
    xacts: u64,
}

/// Builds a [`ChromeTrace`] from the SoC event stream and the downloaded
/// trace messages.
#[must_use = "a timeline builder does nothing until `finish` is called"]
#[derive(Debug, Default)]
pub struct TimelineBuilder {
    events: Vec<ChromeEvent>,
    cores: BTreeMap<u8, CoreSpan>,
    dma_spans: Vec<DmaSpan>,
    dma_master: Option<MasterId>,
    saw_trigger: bool,
    saw_trace_event: bool,
}

/// Cycles of bus silence after which a DMA burst slice is closed.
const DMA_MERGE_GAP: u64 = 32;

impl TimelineBuilder {
    /// Creates an empty builder. Pass the SoC's DMA master slot (if any) so
    /// DMA transactions get their own track.
    pub fn new(dma_master: Option<MasterId>) -> TimelineBuilder {
        TimelineBuilder {
            dma_master,
            ..TimelineBuilder::default()
        }
    }

    /// Observes one cycle's events (borrowed; nothing retained) — the
    /// streaming entry point [`CycleSink`] delegates to.
    pub fn observe(&mut self, cycle: u64, events: &[SocEvent]) {
        for ev in events {
            match ev {
                SocEvent::Retire(r) => {
                    let span = self.cores.entry(r.core.0).or_default();
                    span.first_retire.get_or_insert(cycle);
                    span.last_cycle = cycle;
                    span.retires += 1;
                }
                SocEvent::CoreStopped { core, cause, .. } => {
                    let span = self.cores.entry(core.0).or_default();
                    span.stopped_at = Some((cycle, stop_cause_name(*cause)));
                    span.last_cycle = cycle;
                    self.events.push(ChromeEvent::instant(
                        format!("core{} stop: {}", core.0, stop_cause_name(*cause)),
                        "break",
                        u32::from(core.0),
                        cycle,
                    ));
                }
                SocEvent::IrqEntry { core, vector, .. } => {
                    self.events.push(ChromeEvent::instant(
                        format!("irq{vector}"),
                        "interrupt",
                        u32::from(core.0),
                        cycle,
                    ));
                }
                SocEvent::TriggerIn { line, level } => {
                    self.saw_trigger = true;
                    self.events.push(ChromeEvent::instant(
                        format!("trigger_in{line}={}", u8::from(*level)),
                        "trigger",
                        TRIGGER_TID,
                        cycle,
                    ));
                }
                SocEvent::Bus(x) => {
                    if Some(x.master) == self.dma_master {
                        match self.dma_spans.last_mut() {
                            Some(s) if cycle <= s.end + DMA_MERGE_GAP => {
                                s.end = cycle;
                                s.xacts += 1;
                            }
                            _ => self.dma_spans.push(DmaSpan {
                                start: cycle,
                                end: cycle,
                                xacts: 1,
                            }),
                        }
                    }
                }
            }
        }
    }

    /// Ingests the observable per-cycle event records of a run (batch
    /// convenience over [`TimelineBuilder::observe`]).
    pub fn add_records(&mut self, records: &[CycleRecord]) {
        for rec in records {
            self.observe(rec.cycle, &rec.events);
        }
    }

    /// Ingests downloaded trace messages (watchpoints and overflow markers
    /// become instants on the trace-housekeeping track).
    pub fn add_messages(&mut self, messages: &[TimedMessage]) {
        for m in messages {
            match m.message {
                TraceMessage::Watchpoint { id } => {
                    self.saw_trace_event = true;
                    self.events.push(ChromeEvent::instant(
                        format!("watchpoint{id}"),
                        "trigger",
                        TRACE_TID,
                        m.timestamp,
                    ));
                }
                TraceMessage::Overflow { lost } => {
                    self.saw_trace_event = true;
                    self.events.push(ChromeEvent::instant(
                        format!("fifo overflow (lost {lost})"),
                        "trace",
                        TRACE_TID,
                        m.timestamp,
                    ));
                }
                _ => {}
            }
        }
    }

    /// Finalises the timeline: emits core execution slices, DMA burst
    /// slices and track-name metadata.
    #[must_use]
    pub fn finish(mut self) -> ChromeTrace {
        let mut out = Vec::new();
        for (&core, span) in &self.cores {
            out.push(ChromeEvent::thread_name(
                u32::from(core),
                &format!("core{core}"),
            ));
            if let Some(start) = span.first_retire {
                let (end, label) = match span.stopped_at {
                    Some((c, cause)) => (c, format!("exec ({} retired, {cause})", span.retires)),
                    None => (
                        span.last_cycle + 1,
                        format!("exec ({} retired)", span.retires),
                    ),
                };
                out.push(ChromeEvent::complete(
                    label,
                    "exec",
                    u32::from(core),
                    start,
                    end.max(start),
                ));
            }
        }
        if !self.dma_spans.is_empty() {
            out.push(ChromeEvent::thread_name(DMA_TID, "dma"));
            for s in &self.dma_spans {
                out.push(ChromeEvent::complete(
                    format!("dma burst ({} xacts)", s.xacts),
                    "dma",
                    DMA_TID,
                    s.start,
                    s.end + 1,
                ));
            }
        }
        if self.saw_trigger {
            out.push(ChromeEvent::thread_name(TRIGGER_TID, "triggers"));
        }
        if self.saw_trace_event {
            out.push(ChromeEvent::thread_name(TRACE_TID, "trace"));
        }
        out.append(&mut self.events);
        ChromeTrace { events: out }
    }
}

impl CycleSink for TimelineBuilder {
    fn observe(&mut self, cycle: u64, events: &[SocEvent]) {
        TimelineBuilder::observe(self, cycle, events);
    }
}

fn stop_cause_name(cause: mcds_soc::event::StopCause) -> &'static str {
    use mcds_soc::event::StopCause;
    match cause {
        StopCause::DebugRequest => "debug request",
        StopCause::Breakpoint => "breakpoint",
        StopCause::HaltInstr => "halt",
        StopCause::Step => "step",
        StopCause::BusFault(_) => "bus fault",
        StopCause::InvalidInstr { .. } => "invalid instruction",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_soc::event::{CoreId, RetireEvent, StopCause};
    use mcds_soc::isa::Instr;

    fn retire(core: u8, pc: u32) -> SocEvent {
        SocEvent::Retire(RetireEvent {
            core: CoreId(core),
            pc,
            instr: Instr::Nop,
            next_pc: pc + 4,
            taken: None,
            mem: None,
        })
    }

    #[test]
    fn timeline_round_trips_and_bounds_hold() {
        let mut r0 = CycleRecord::new(10);
        r0.events.push(retire(0, 0x100));
        let mut r1 = CycleRecord::new(20);
        r1.events.push(retire(0, 0x104));
        r1.events.push(SocEvent::IrqEntry {
            core: CoreId(0),
            from: 0x104,
            vector: 2,
        });
        let mut r2 = CycleRecord::new(30);
        r2.events.push(SocEvent::CoreStopped {
            core: CoreId(0),
            cause: StopCause::HaltInstr,
            pc: 0x108,
        });
        let mut b = TimelineBuilder::new(None);
        b.add_records(&[r0, r1, r2]);
        b.add_messages(&[TimedMessage {
            timestamp: 25,
            source: mcds_trace::TraceSource::Bus,
            message: TraceMessage::Watchpoint { id: 1 },
        }]);
        let trace = b.finish();
        assert!(!trace.is_empty());
        let json = trace.to_json();
        let back = ChromeTrace::from_json(&json).unwrap();
        assert_eq!(back, trace);
        let end = cycles_to_us(31);
        for e in &trace.events {
            assert!(e.ts >= 0.0 && e.ts + e.dur <= end + 1e-9, "event {e:?}");
        }
        // Core exec slice runs from first retire to the stop.
        let exec = trace.events.iter().find(|e| e.ph == "X").unwrap();
        assert!((exec.ts - cycles_to_us(10)).abs() < 1e-12);
        assert!((exec.dur - cycles_to_us(20)).abs() < 1e-9);
    }
}
