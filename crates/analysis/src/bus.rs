//! Bus-contention analysis: per-master utilization, grant/wait-state and
//! contention statistics.
//!
//! Two complementary inputs feed this module:
//!
//! * the SoC's observable event stream ([`CycleRecord`] /
//!   [`SocEvent::Bus`]) — the same system-centric tap the MCDS bus
//!   adaptation logic watches — which attributes every completed
//!   transaction to its master, and
//! * the downloaded trace-message stream, whose bus-sourced data messages
//!   ([`TraceMessage::DataWrite`] / [`TraceMessage::DataRead`]) survive the
//!   full FIFO → sink → link path. The modelled wire format (like our
//!   Nexus-class subset) does not carry a master id per data message, so
//!   message-derived statistics are aggregate; per-master numbers come
//!   from the event tap and are cross-checked against the bus's own
//!   [`BusCounters`].
//!
//! [`SocEvent::Bus`]: mcds_soc::event::SocEvent::Bus

use std::collections::BTreeMap;

use mcds_soc::bus::BusCounters;
use mcds_soc::event::{CycleRecord, SocEvent};
use mcds_soc::sink::CycleSink;
use mcds_trace::{TimedMessage, TraceMessage, TraceSource};

/// Per-master transaction and arbitration statistics.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusMasterStats {
    /// Master slot index.
    pub master: u8,
    /// Completed (fault-free) transactions observed on the event tap.
    pub xacts: u64,
    /// Read/fetch transactions.
    pub reads: u64,
    /// Write/atomic transactions.
    pub writes: u64,
    /// Data bytes moved.
    pub bytes: u64,
    /// Transactions granted by the arbiter (from [`BusCounters`]).
    pub grants: u64,
    /// Cycles this master held the bus (from [`BusCounters`]).
    pub occupancy_cycles: u64,
    /// Cycles this master waited for a grant (from [`BusCounters`]).
    pub wait_cycles: u64,
}

/// The finished bus-contention report.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Default, PartialEq, Eq)]
pub struct BusContentionReport {
    /// Total bus cycles covered.
    pub cycles: u64,
    /// Cycles with a transaction in flight.
    pub busy_cycles: u64,
    /// Cycles where at least one master waited while another held the bus.
    pub contended_cycles: u64,
    /// Per-master statistics, sorted by master index.
    pub masters: Vec<BusMasterStats>,
}

impl BusContentionReport {
    /// Bus utilization (busy fraction, 0.0–1.0).
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.cycles as f64
        }
    }

    /// `master`'s share of bus occupancy (0.0–1.0 of total cycles).
    pub fn master_utilization(&self, master: u8) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.masters
            .iter()
            .find(|m| m.master == master)
            .map_or(0.0, |m| m.occupancy_cycles as f64 / self.cycles as f64)
    }

    /// Verifies the event-tap-derived transaction counts against the bus's
    /// internal counters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn cross_check(&self, counters: &BusCounters) -> Result<(), String> {
        if self.cycles != counters.cycles {
            return Err(format!(
                "cycle total mismatch: report {} vs bus {}",
                self.cycles, counters.cycles
            ));
        }
        if self.busy_cycles != counters.busy_cycles {
            return Err(format!(
                "busy-cycle mismatch: report {} vs bus {}",
                self.busy_cycles, counters.busy_cycles
            ));
        }
        for (i, c) in counters.per_master.iter().enumerate() {
            let observed = self
                .masters
                .iter()
                .find(|m| m.master == i as u8)
                .map_or(0, |m| m.xacts);
            if observed != c.xacts {
                return Err(format!(
                    "master {i} transaction mismatch: observed {observed} vs bus {}",
                    c.xacts
                ));
            }
        }
        let occupancy: u64 = counters.per_master.iter().map(|m| m.occupancy_cycles).sum();
        if occupancy != counters.busy_cycles {
            return Err(format!(
                "occupancy sum {occupancy} disagrees with busy cycles {}",
                counters.busy_cycles
            ));
        }
        Ok(())
    }
}

/// Aggregate statistics over the downloaded trace-message stream.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusTraceStats {
    /// Bus-sourced data-write messages.
    pub bus_writes: u64,
    /// Bus-sourced data-read messages.
    pub bus_reads: u64,
    /// Bytes moved by bus-sourced data messages.
    pub bus_bytes: u64,
    /// Core-sourced data messages (CPU-local data trace).
    pub core_data: u64,
    /// Watchpoint messages.
    pub watchpoints: u64,
    /// Overflow messages.
    pub overflows: u64,
    /// Messages the FIFO reported dropped.
    pub lost: u64,
    /// Timestamp of the first bus-sourced message.
    pub first_ts: u64,
    /// Timestamp of the last bus-sourced message.
    pub last_ts: u64,
}

impl BusTraceStats {
    /// Computes aggregate stats from a decoded message stream.
    pub fn from_messages(messages: &[TimedMessage]) -> BusTraceStats {
        let mut s = BusTraceStats::default();
        let mut first = None;
        for m in messages {
            match m.message {
                TraceMessage::DataWrite { width, .. } => {
                    if m.source == TraceSource::Bus {
                        s.bus_writes += 1;
                        s.bus_bytes += u64::from(width.bytes());
                        first.get_or_insert(m.timestamp);
                        s.last_ts = m.timestamp;
                    } else {
                        s.core_data += 1;
                    }
                }
                TraceMessage::DataRead { width, .. } => {
                    if m.source == TraceSource::Bus {
                        s.bus_reads += 1;
                        s.bus_bytes += u64::from(width.bytes());
                        first.get_or_insert(m.timestamp);
                        s.last_ts = m.timestamp;
                    } else {
                        s.core_data += 1;
                    }
                }
                TraceMessage::Watchpoint { .. } => s.watchpoints += 1,
                TraceMessage::Overflow { lost } => {
                    s.overflows += 1;
                    s.lost += u64::from(lost);
                }
                _ => {}
            }
        }
        s.first_ts = first.unwrap_or(0);
        s
    }

    /// Total bus-sourced data messages.
    pub fn bus_messages(&self) -> u64 {
        self.bus_reads + self.bus_writes
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct MasterAccum {
    xacts: u64,
    reads: u64,
    writes: u64,
    bytes: u64,
}

/// Streaming analyzer over the SoC's observable event stream. It is a
/// [`CycleSink`], so it can sit directly on the device's streaming hot
/// path (`run_until_halt_into`) — no record buffering needed.
#[must_use = "an analyzer does nothing until records are observed and `finish*` is called"]
#[derive(Debug, Default)]
pub struct BusAnalyzer {
    masters: BTreeMap<u8, MasterAccum>,
}

impl BusAnalyzer {
    /// Creates an empty analyzer.
    pub fn new() -> BusAnalyzer {
        BusAnalyzer::default()
    }

    /// Observes one cycle's events (borrowed; nothing retained).
    pub fn observe(&mut self, _cycle: u64, events: &[SocEvent]) {
        for ev in events {
            if let SocEvent::Bus(x) = ev {
                let m = self.masters.entry(x.master.0).or_default();
                m.xacts += 1;
                m.bytes += u64::from(x.width.bytes());
                if x.kind.is_write() {
                    m.writes += 1;
                } else {
                    m.reads += 1;
                }
            }
        }
    }

    /// Observes a slice of materialised records (batch convenience).
    pub fn observe_all(&mut self, records: &[CycleRecord]) {
        records.iter().for_each(|r| self.observe_record(r));
    }

    /// Finalises the report, taking cycle-exact occupancy / wait / grant
    /// numbers from the bus's internal counters. Use
    /// [`BusContentionReport::cross_check`] afterwards to assert the two
    /// views agree on what both can see.
    #[must_use]
    pub fn finish_with_counters(self, counters: &BusCounters) -> BusContentionReport {
        let mut masters: Vec<BusMasterStats> = Vec::new();
        for (i, c) in counters.per_master.iter().enumerate() {
            let obs = self.masters.get(&(i as u8)).copied().unwrap_or_default();
            masters.push(BusMasterStats {
                master: i as u8,
                xacts: obs.xacts,
                reads: obs.reads,
                writes: obs.writes,
                bytes: obs.bytes,
                grants: c.grants,
                occupancy_cycles: c.occupancy_cycles,
                wait_cycles: c.wait_cycles,
            });
        }
        // Masters the counters don't know (shouldn't happen) still surface.
        for (&m, obs) in &self.masters {
            if usize::from(m) >= counters.per_master.len() {
                masters.push(BusMasterStats {
                    master: m,
                    xacts: obs.xacts,
                    reads: obs.reads,
                    writes: obs.writes,
                    bytes: obs.bytes,
                    ..Default::default()
                });
            }
        }
        BusContentionReport {
            cycles: counters.cycles,
            busy_cycles: counters.busy_cycles,
            contended_cycles: counters.contended_cycles,
            masters,
        }
    }
}

impl CycleSink for BusAnalyzer {
    fn observe(&mut self, cycle: u64, events: &[SocEvent]) {
        BusAnalyzer::observe(self, cycle, events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_soc::bus::{BusXact, MasterId, XferKind};
    use mcds_soc::isa::MemWidth;

    #[test]
    fn analyzer_attributes_xacts_to_masters() {
        let mut rec = CycleRecord::new(7);
        rec.events.push(SocEvent::Bus(BusXact {
            master: MasterId(0),
            addr: 0x1000,
            width: MemWidth::Word,
            kind: XferKind::Read,
            data: 5,
        }));
        let mut rec2 = CycleRecord::new(9);
        rec2.events.push(SocEvent::Bus(BusXact {
            master: MasterId(2),
            addr: 0x2000,
            width: MemWidth::Half,
            kind: XferKind::Write,
            data: 1,
        }));
        let mut a = BusAnalyzer::new();
        a.observe_all(&[rec, rec2]);
        let counters = BusCounters {
            cycles: 10,
            busy_cycles: 6,
            contended_cycles: 1,
            per_master: vec![
                mcds_soc::bus::MasterCounters {
                    grants: 1,
                    xacts: 1,
                    faults: 0,
                    occupancy_cycles: 4,
                    wait_cycles: 0,
                },
                mcds_soc::bus::MasterCounters::default(),
                mcds_soc::bus::MasterCounters {
                    grants: 1,
                    xacts: 1,
                    faults: 0,
                    occupancy_cycles: 2,
                    wait_cycles: 1,
                },
            ],
        };
        let report = a.finish_with_counters(&counters);
        assert_eq!(report.masters.len(), 3);
        assert_eq!(report.masters[0].reads, 1);
        assert_eq!(report.masters[2].writes, 1);
        assert_eq!(report.masters[2].bytes, 2);
        report.cross_check(&counters).unwrap();
        assert!((report.utilization() - 0.6).abs() < 1e-12);
        assert!((report.master_utilization(0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn cross_check_catches_lost_transactions() {
        let a = BusAnalyzer::new(); // saw nothing
        let counters = BusCounters {
            cycles: 4,
            busy_cycles: 2,
            contended_cycles: 0,
            per_master: vec![mcds_soc::bus::MasterCounters {
                grants: 1,
                xacts: 1,
                faults: 0,
                occupancy_cycles: 2,
                wait_cycles: 0,
            }],
        };
        let report = a.finish_with_counters(&counters);
        assert!(report.cross_check(&counters).is_err());
    }
}
