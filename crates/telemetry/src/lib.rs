#![warn(missing_docs)]

//! # mcds-telemetry — workspace self-observability
//!
//! The emulator stack observes the paper's SoC; this crate observes the
//! emulator stack itself. It provides:
//!
//! * a metrics [`Registry`] of monotonic [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket [`Histogram`]s — registration takes a lock once, but
//!   every *sample* is a handful of atomic operations with no allocation,
//!   so hot paths (the per-cycle device step, per-transaction link
//!   accounting) can stay instrumented permanently;
//! * a [`SpanRecorder`] of cycle-stamped subsystem spans (bus arbitration,
//!   FIFO drain, trace encode/decode, XCP transactions,
//!   snapshot/restore) that aggregates simulated-cycle and host
//!   wall-clock cost per [`Subsystem`] and keeps a bounded ring of recent
//!   span events;
//! * two exporters over one [`TelemetrySnapshot`]: Prometheus text
//!   exposition ([`to_prometheus`]) and a JSON document
//!   ([`to_json`]) written next to the bench `--out-dir` artifacts.
//!
//! ## The determinism boundary
//!
//! Telemetry is strictly *outside* the deterministic device model: it is
//! never serialized into `DeviceState`/`SocSnapshot`, never hashed, and
//! never recorded in the replay input log. Wall-clock readings
//! (`Instant`-based span durations, throughput gauges) live only here.
//! Attaching or detaching telemetry must therefore never change a single
//! simulated cycle — the suite's determinism test replays a recorded run
//! with telemetry on and off and asserts bit-identical state hashes.

use std::sync::Arc;

mod export;
mod metrics;
mod spans;
mod throughput;

pub use export::{to_json, to_prometheus, validate_prometheus};
pub use metrics::{
    Counter, Gauge, Histogram, MetricSnapshot, MetricValue, Registry, TelemetrySnapshot,
};
pub use spans::{SpanEvent, SpanRecorder, SpanTimer, Subsystem, SubsystemSummary};
pub use throughput::ThroughputMeter;

/// The shared telemetry bundle: one registry plus one span recorder.
///
/// Cheap to clone (an `Arc` internally); every subsystem that wants to
/// publish holds a clone and samples through it. A detached subsystem
/// simply holds no handle — sampling is skipped entirely, so disabled
/// telemetry costs one branch.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

#[derive(Debug, Default)]
struct TelemetryInner {
    registry: Registry,
    spans: SpanRecorder,
}

impl Telemetry {
    /// Creates an empty telemetry bundle.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The span recorder.
    pub fn spans(&self) -> &SpanRecorder {
        &self.inner.spans
    }

    /// Captures a point-in-time snapshot of every metric and span
    /// aggregate (the input to both exporters).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = self.inner.registry.snapshot();
        snap.subsystems = self.inner.spans.summaries();
        snap.recent_spans = self.inner.spans.recent();
        snap.dropped_spans = self.inner.spans.dropped();
        snap
    }

    /// Renders the current state in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        to_prometheus(&self.snapshot())
    }

    /// Renders the current state as a JSON document.
    pub fn to_json(&self) -> String {
        to_json(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_roundtrips_through_both_exporters() {
        let tel = Telemetry::new();
        tel.registry().counter("demo_events_total", "events").add(3);
        tel.registry().gauge("demo_fill", "fill level").set(0.5);
        tel.spans().record(Subsystem::TraceEncode, 10, 20, 1_000);
        let snap = tel.snapshot();
        let json = to_json(&snap);
        let back: TelemetrySnapshot = serde_json::from_str(&json).expect("JSON export parses");
        assert_eq!(back.metrics.len(), snap.metrics.len());
        let prom = to_prometheus(&snap);
        let samples = validate_prometheus(&prom).expect("prometheus export parses");
        assert!(samples >= 2);
        assert!(prom.contains("demo_events_total 3"));
    }

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::new();
        let other = tel.clone();
        other.registry().counter("shared_total", "shared").inc();
        let snap = tel.snapshot();
        assert_eq!(
            snap.metrics[0].value,
            MetricValue::Counter(1),
            "clone writes are visible through the original"
        );
    }
}
