//! The metrics registry: monotonic counters, gauges and fixed-bucket
//! histograms.
//!
//! Registration (name lookup, allocation) happens once behind a mutex;
//! the returned handles are `Arc`-shared atomics, so the *sampling* path
//! — `Counter::add`, `Gauge::set`, `Histogram::observe` — is lock-free
//! and allocation-free. Mirroring an upstream cumulative counter (the
//! device model's own `u64` tallies) uses `Counter::store`, which keeps
//! the exported value monotonic as long as the source is.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::spans::{SpanEvent, SubsystemSummary};

/// A monotonic counter handle.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the counter with an upstream cumulative total (for
    /// mirroring a source that already counts monotonically).
    pub fn store(&self, total: u64) {
        self.0.store(total, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: an instantaneous `f64` value that can move both ways.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bucket bounds (inclusive), strictly increasing; an implicit
    /// `+Inf` bucket follows the last bound.
    bounds: Vec<u64>,
    /// One count per bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram handle. Bucket bounds are set at registration
/// so observation never allocates.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn with_bounds(bounds: &[u64]) -> Histogram {
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self
            .0
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.0.bounds.len());
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (0–1): the inclusive upper bound of the
    /// bucket holding the `q`-th observation.
    ///
    /// Defined for every input: an empty histogram returns 0 (for any `q`,
    /// including NaN, which is treated as 0); a quantile landing in the
    /// overflow bucket returns the larger of the last finite bound and the
    /// integer mean (the mean can exceed the last bound there, and is the
    /// only per-value information the overflow bucket retains); a histogram
    /// registered with no bounds at all — a single overflow bucket — returns
    /// the integer mean rather than a garbage 0.
    pub fn approx_quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mean = self.sum() / total;
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return match self.0.bounds.get(i) {
                    Some(&bound) => bound,
                    None => self.0.bounds.last().map_or(mean, |&last| last.max(mean)),
                };
            }
        }
        self.0.bounds.last().map_or(mean, |&last| last.max(mean))
    }
}

#[derive(Clone, Debug)]
enum MetricHandle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl MetricHandle {
    fn kind(&self) -> &'static str {
        match self {
            MetricHandle::Counter(_) => "counter",
            MetricHandle::Gauge(_) => "gauge",
            MetricHandle::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct MetricEntry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    handle: MetricHandle,
}

/// A point-in-time value of one registered metric.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric family name (Prometheus conventions, e.g.
    /// `mcds_bus_grants_total`).
    pub name: String,
    /// One-line meaning.
    pub help: String,
    /// Static label pairs attached at registration (e.g. `master="m0"`).
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: MetricValue,
}

/// A sampled metric value, by kind.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Instantaneous gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram {
        /// Inclusive upper bounds, one per finite bucket.
        bounds: Vec<u64>,
        /// Cumulative-free per-bucket counts; one extra overflow bucket.
        buckets: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
    },
}

/// A full telemetry snapshot: every metric plus per-subsystem span
/// aggregates — the document both exporters render.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// All registered metrics in registration order.
    pub metrics: Vec<MetricSnapshot>,
    /// Per-subsystem span aggregates.
    pub subsystems: Vec<SubsystemSummary>,
    /// The most recent span events (bounded ring; oldest first).
    pub recent_spans: Vec<SpanEvent>,
    /// Span events discarded because the ring was full.
    pub dropped_spans: u64,
}

/// The metric registry. See the module docs for the locking contract.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<MetricEntry>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> MetricHandle,
    ) -> MetricHandle {
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(e) = entries.iter().find(|e| {
            e.name == name
                && e.labels.len() == labels.len()
                && e.labels
                    .iter()
                    .zip(labels)
                    .all(|(have, want)| have.0 == want.0 && have.1 == want.1)
        }) {
            return e.handle.clone();
        }
        let handle = make();
        entries.push(MetricEntry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            handle: handle.clone(),
        });
        handle
    }

    /// Registers (or retrieves) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a counter with static labels.
    ///
    /// # Panics
    ///
    /// Panics if the same name+labels was registered as a different kind.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, help, labels, || {
            MetricHandle::Counter(Counter::default())
        }) {
            MetricHandle::Counter(c) => c,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or retrieves) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a gauge with static labels.
    ///
    /// # Panics
    ///
    /// Panics if the same name+labels was registered as a different kind.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, help, labels, || MetricHandle::Gauge(Gauge::default())) {
            MetricHandle::Gauge(g) => g,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or retrieves) an unlabelled fixed-bucket histogram.
    ///
    /// # Panics
    ///
    /// Panics if the same name was registered as a different kind.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        self.histogram_with(name, help, &[], bounds)
    }

    /// Registers (or retrieves) a histogram with fixed bucket `bounds`
    /// (inclusive upper bounds, strictly increasing; a `+Inf` overflow
    /// bucket is implicit).
    ///
    /// # Panics
    ///
    /// Panics if the same name+labels was registered as a different kind.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        match self.get_or_insert(name, help, labels, || {
            MetricHandle::Histogram(Histogram::with_bounds(bounds))
        }) {
            MetricHandle::Histogram(h) => h,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Samples every registered metric. Span fields of the returned
    /// snapshot are left empty — [`crate::Telemetry::snapshot`] fills
    /// them in.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let entries = self.entries.lock().expect("registry poisoned");
        let metrics = entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                help: e.help.clone(),
                labels: e.labels.clone(),
                value: match &e.handle {
                    MetricHandle::Counter(c) => MetricValue::Counter(c.get()),
                    MetricHandle::Gauge(g) => MetricValue::Gauge(g.get()),
                    MetricHandle::Histogram(h) => MetricValue::Histogram {
                        bounds: h.0.bounds.clone(),
                        buckets: h
                            .0
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        count: h.count(),
                        sum: h.sum(),
                    },
                },
            })
            .collect();
        TelemetrySnapshot {
            metrics,
            subsystems: Vec::new(),
            recent_spans: Vec::new(),
            dropped_spans: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_mirror() {
        let reg = Registry::new();
        let c = reg.counter("x_total", "x");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same handle.
        let again = reg.counter("x_total", "x");
        again.store(100);
        assert_eq!(c.get(), 100);
        assert_eq!(reg.snapshot().metrics.len(), 1);
    }

    #[test]
    fn labels_distinguish_series() {
        let reg = Registry::new();
        let a = reg.counter_with("grants_total", "grants", &[("master", "m0")]);
        let b = reg.counter_with("grants_total", "grants", &[("master", "m1")]);
        a.add(2);
        b.add(7);
        let snap = reg.snapshot();
        assert_eq!(snap.metrics.len(), 2);
        assert_eq!(snap.metrics[0].value, MetricValue::Counter(2));
        assert_eq!(snap.metrics[1].value, MetricValue::Counter(7));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let reg = Registry::new();
        let h = reg.histogram_with("lat", "latency", &[], &[10, 100, 1000]);
        for v in [1, 5, 50, 500, 5000, 50_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 5 + 50 + 500 + 5000 + 50_000);
        let MetricValue::Histogram { buckets, .. } = &reg.snapshot().metrics[0].value else {
            panic!("expected histogram");
        };
        assert_eq!(buckets, &vec![2, 1, 1, 2], "two land past the last bound");
    }

    #[test]
    fn approx_quantile_empty_is_zero_for_any_q() {
        let reg = Registry::new();
        let h = reg.histogram("q_empty", "q", &[10, 100]);
        for q in [0.0, 0.5, 1.0, -3.0, 7.0, f64::NAN] {
            assert_eq!(h.approx_quantile(q), 0);
        }
    }

    #[test]
    fn approx_quantile_no_bounds_returns_mean() {
        // A histogram registered with zero bounds is a single overflow
        // bucket; the old implementation returned 0 for it regardless of
        // the data. The mean is the only defined summary it can offer.
        let reg = Registry::new();
        let h = reg.histogram("q_nobounds", "q", &[]);
        h.observe(100);
        h.observe(300);
        assert_eq!(h.approx_quantile(0.5), 200);
        assert_eq!(h.approx_quantile(1.0), 200);
    }

    #[test]
    fn approx_quantile_single_bucket() {
        let reg = Registry::new();
        let h = reg.histogram("q_single", "q", &[50]);
        h.observe(7);
        assert_eq!(h.approx_quantile(0.0), 50);
        assert_eq!(h.approx_quantile(0.5), 50);
        assert_eq!(h.approx_quantile(1.0), 50);
    }

    #[test]
    fn approx_quantile_overflow_uses_mean_when_larger() {
        let reg = Registry::new();
        let h = reg.histogram("q_over", "q", &[10, 100]);
        h.observe(5);
        h.observe(1_000_000);
        // p50 lands in the first bucket, p100 in the overflow bucket where
        // the mean (500_002) dominates the last finite bound (100).
        assert_eq!(h.approx_quantile(0.5), 10);
        assert_eq!(h.approx_quantile(1.0), (5 + 1_000_000) / 2);
    }

    #[test]
    fn approx_quantile_monotone_in_q_and_clamped() {
        let reg = Registry::new();
        let h = reg.histogram("q_mono", "q", &[10, 100, 1000]);
        for v in [1, 5, 50, 500, 5000] {
            h.observe(v);
        }
        let mut prev = 0;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = h.approx_quantile(q);
            assert!(v >= prev, "quantile must be monotone in q");
            prev = v;
        }
        // Out-of-range q clamps to the endpoints; NaN maps to q=0.
        assert_eq!(h.approx_quantile(-1.0), h.approx_quantile(0.0));
        assert_eq!(h.approx_quantile(2.0), h.approx_quantile(1.0));
        assert_eq!(h.approx_quantile(f64::NAN), h.approx_quantile(0.0));
    }

    #[test]
    fn gauges_move_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("fill", "fill");
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
        g.set(0.25);
        assert_eq!(g.get(), 0.25);
    }

    #[test]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("mixed", "x");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.gauge("mixed", "x");
        }));
        assert!(result.is_err());
    }
}
