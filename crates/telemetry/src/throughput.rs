//! Emulator-throughput gauges.
//!
//! [`ThroughputMeter`] divides progress in *simulated* units (cycles,
//! trace bytes) by elapsed *host* wall time and publishes the rates as
//! gauges. Wall clocks live only on this side of the determinism
//! boundary: the meter reads the device's counters, never the other way
//! around.

use std::time::Instant;

use crate::metrics::{Gauge, Registry};

/// Publishes `telemetry_sim_cycles_per_sec` and
/// `telemetry_trace_bytes_per_sec` from periodic samples.
#[derive(Debug)]
pub struct ThroughputMeter {
    started: Instant,
    start_cycle: u64,
    start_bytes: u64,
    cycles_per_sec: Gauge,
    bytes_per_sec: Gauge,
}

impl ThroughputMeter {
    /// Starts a meter at the given simulated position, registering the
    /// rate gauges.
    pub fn start(registry: &Registry, cycle: u64, trace_bytes: u64) -> ThroughputMeter {
        ThroughputMeter {
            started: Instant::now(),
            start_cycle: cycle,
            start_bytes: trace_bytes,
            cycles_per_sec: registry.gauge(
                "telemetry_sim_cycles_per_sec",
                "simulated cycles emulated per host second",
            ),
            bytes_per_sec: registry.gauge(
                "telemetry_trace_bytes_per_sec",
                "trace bytes produced per host second",
            ),
        }
    }

    /// Publishes rates for the progress since [`ThroughputMeter::start`].
    /// Returns the cycles-per-second figure for callers that also want
    /// to print it.
    pub fn sample(&self, cycle: u64, trace_bytes: u64) -> f64 {
        let secs = self.started.elapsed().as_secs_f64().max(1e-9);
        let cps = cycle.saturating_sub(self.start_cycle) as f64 / secs;
        let bps = trace_bytes.saturating_sub(self.start_bytes) as f64 / secs;
        self.cycles_per_sec.set(cps);
        self.bytes_per_sec.set(bps);
        cps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_positive_rates() {
        let reg = Registry::new();
        let meter = ThroughputMeter::start(&reg, 1_000, 64);
        let cps = meter.sample(151_000_000, 1_064);
        assert!(cps > 0.0);
        let snap = reg.snapshot();
        assert_eq!(snap.metrics.len(), 2);
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"telemetry_sim_cycles_per_sec"));
        assert!(names.contains(&"telemetry_trace_bytes_per_sec"));
    }

    #[test]
    fn regressing_counters_clamp_to_zero() {
        let reg = Registry::new();
        let meter = ThroughputMeter::start(&reg, 500, 500);
        assert_eq!(meter.sample(100, 100), 0.0);
    }
}
