//! Cycle-stamped span instrumentation keyed by subsystem.
//!
//! A span records one unit of work — a bus arbitration round, a FIFO
//! drain, one trace encode batch, an XCP transaction, a snapshot capture
//! — as `(subsystem, start_cycle, end_cycle, wall_ns)`. Recording
//! aggregates into per-subsystem atomics (count, simulated cycles, host
//! wall nanoseconds) and appends to a bounded ring of recent events;
//! once the ring is full new events bump a drop counter instead of
//! allocating, so the hot path stays bounded.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Capacity of the recent-events ring.
const RING_CAPACITY: usize = 1024;

/// The instrumented subsystems.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subsystem {
    /// Bus arbitration of a debug-initiated access.
    BusArbitration,
    /// Draining trace FIFOs through the message sorter.
    FifoDrain,
    /// Encoding and storing trace messages into the sink.
    TraceEncode,
    /// Host-side decode of fetched trace bytes.
    TraceDecode,
    /// One XCP command/response transaction, including retries.
    XcpTransaction,
    /// Capturing a device snapshot.
    Snapshot,
    /// Restoring a device snapshot.
    Restore,
    /// One debug-link operation (JTAG/USB/CAN transaction).
    DebugLink,
    /// One fault-campaign scenario execution (record + replay + triage).
    Campaign,
    /// One debug-farm scheduling quantum (multi-session service work).
    Farm,
    /// One virtual-vehicle fabric step burst (CAN arbitration, gateway
    /// forwarding, fleet calibration work).
    Vnet,
}

impl Subsystem {
    /// Every subsystem, in a stable order.
    pub const ALL: [Subsystem; 11] = [
        Subsystem::BusArbitration,
        Subsystem::FifoDrain,
        Subsystem::TraceEncode,
        Subsystem::TraceDecode,
        Subsystem::XcpTransaction,
        Subsystem::Snapshot,
        Subsystem::Restore,
        Subsystem::DebugLink,
        Subsystem::Campaign,
        Subsystem::Farm,
        Subsystem::Vnet,
    ];

    /// Stable snake_case name used as the exported label value.
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::BusArbitration => "bus_arbitration",
            Subsystem::FifoDrain => "fifo_drain",
            Subsystem::TraceEncode => "trace_encode",
            Subsystem::TraceDecode => "trace_decode",
            Subsystem::XcpTransaction => "xcp_transaction",
            Subsystem::Snapshot => "snapshot",
            Subsystem::Restore => "restore",
            Subsystem::DebugLink => "debug_link",
            Subsystem::Campaign => "campaign",
            Subsystem::Farm => "farm",
            Subsystem::Vnet => "vnet",
        }
    }

    fn index(self) -> usize {
        Subsystem::ALL
            .iter()
            .position(|&s| s == self)
            .expect("subsystem listed in ALL")
    }
}

impl std::fmt::Display for Subsystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded span event.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Which subsystem did the work.
    pub subsystem: Subsystem,
    /// Simulated cycle when the span started.
    pub start_cycle: u64,
    /// Simulated cycle when the span ended.
    pub end_cycle: u64,
    /// Host wall-clock cost in nanoseconds.
    pub wall_ns: u64,
}

/// Aggregated span statistics for one subsystem.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Default, PartialEq)]
pub struct SubsystemSummary {
    /// Stable subsystem name (see [`Subsystem::name`]).
    pub subsystem: String,
    /// Number of spans recorded.
    pub count: u64,
    /// Total simulated cycles covered by the spans.
    pub sim_cycles: u64,
    /// Total host wall-clock nanoseconds spent.
    pub wall_ns: u64,
}

#[derive(Debug, Default)]
struct SubsystemAgg {
    count: AtomicU64,
    sim_cycles: AtomicU64,
    wall_ns: AtomicU64,
}

/// Records spans and aggregates them per subsystem.
#[derive(Debug)]
pub struct SpanRecorder {
    aggs: [SubsystemAgg; Subsystem::ALL.len()],
    ring: Mutex<Vec<SpanEvent>>,
    dropped: AtomicU64,
}

impl Default for SpanRecorder {
    fn default() -> SpanRecorder {
        SpanRecorder {
            aggs: Default::default(),
            ring: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }
}

impl SpanRecorder {
    /// Creates an empty recorder.
    pub fn new() -> SpanRecorder {
        SpanRecorder::default()
    }

    /// Records one completed span.
    pub fn record(&self, subsystem: Subsystem, start_cycle: u64, end_cycle: u64, wall_ns: u64) {
        let agg = &self.aggs[subsystem.index()];
        agg.count.fetch_add(1, Ordering::Relaxed);
        agg.sim_cycles
            .fetch_add(end_cycle.saturating_sub(start_cycle), Ordering::Relaxed);
        agg.wall_ns.fetch_add(wall_ns, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("span ring poisoned");
        if ring.len() < RING_CAPACITY {
            ring.push(SpanEvent {
                subsystem,
                start_cycle,
                end_cycle,
                wall_ns,
            });
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Starts a wall-clock timer for a span; call
    /// [`SpanTimer::finish`] with the cycle bounds when the work is done.
    pub fn start(&self, subsystem: Subsystem) -> SpanTimer<'_> {
        SpanTimer {
            recorder: self,
            subsystem,
            started: Instant::now(),
        }
    }

    /// Per-subsystem aggregates, in [`Subsystem::ALL`] order, skipping
    /// subsystems with no recorded spans.
    pub fn summaries(&self) -> Vec<SubsystemSummary> {
        Subsystem::ALL
            .iter()
            .filter_map(|&s| {
                let agg = &self.aggs[s.index()];
                let count = agg.count.load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                Some(SubsystemSummary {
                    subsystem: s.name().to_string(),
                    count,
                    sim_cycles: agg.sim_cycles.load(Ordering::Relaxed),
                    wall_ns: agg.wall_ns.load(Ordering::Relaxed),
                })
            })
            .collect()
    }

    /// The retained recent span events, oldest first.
    pub fn recent(&self) -> Vec<SpanEvent> {
        self.ring.lock().expect("span ring poisoned").clone()
    }

    /// Span events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// In-flight span: holds the wall-clock start until the caller knows the
/// cycle bounds.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    recorder: &'a SpanRecorder,
    subsystem: Subsystem,
    started: Instant,
}

impl SpanTimer<'_> {
    /// Completes the span, recording elapsed wall time plus the given
    /// simulated-cycle bounds.
    pub fn finish(self, start_cycle: u64, end_cycle: u64) {
        let wall_ns = self.started.elapsed().as_nanos() as u64;
        self.recorder
            .record(self.subsystem, start_cycle, end_cycle, wall_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_per_subsystem() {
        let rec = SpanRecorder::new();
        rec.record(Subsystem::TraceEncode, 0, 10, 100);
        rec.record(Subsystem::TraceEncode, 10, 30, 200);
        rec.record(Subsystem::XcpTransaction, 5, 6, 50);
        let sums = rec.summaries();
        assert_eq!(sums.len(), 2);
        let enc = &sums[0];
        assert_eq!(enc.subsystem, "trace_encode");
        assert_eq!(enc.count, 2);
        assert_eq!(enc.sim_cycles, 30);
        assert_eq!(enc.wall_ns, 300);
        assert_eq!(rec.recent().len(), 3);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn ring_is_bounded() {
        let rec = SpanRecorder::new();
        for i in 0..(RING_CAPACITY as u64 + 10) {
            rec.record(Subsystem::FifoDrain, i, i + 1, 1);
        }
        assert_eq!(rec.recent().len(), RING_CAPACITY);
        assert_eq!(rec.dropped(), 10);
        assert_eq!(
            rec.summaries()[0].count,
            RING_CAPACITY as u64 + 10,
            "aggregates keep counting past the ring"
        );
    }

    #[test]
    fn timer_records_on_finish() {
        let rec = SpanRecorder::new();
        let t = rec.start(Subsystem::Snapshot);
        t.finish(100, 200);
        let sums = rec.summaries();
        assert_eq!(sums[0].count, 1);
        assert_eq!(sums[0].sim_cycles, 100);
    }

    #[test]
    fn backwards_cycles_saturate() {
        let rec = SpanRecorder::new();
        rec.record(Subsystem::Restore, 50, 10, 0);
        assert_eq!(rec.summaries()[0].sim_cycles, 0);
    }
}
