//! Snapshot exporters: Prometheus text exposition and JSON.
//!
//! Both render a [`TelemetrySnapshot`], so a snapshot taken once can be
//! exported twice consistently. Span aggregates are exported as three
//! synthetic counter families (`telemetry_spans_total`,
//! `telemetry_span_sim_cycles_total`, `telemetry_span_wall_ns_total`)
//! labelled by subsystem, so a Prometheus scrape sees the same data the
//! JSON document carries structurally.

use std::fmt::Write as _;

use crate::metrics::{MetricValue, TelemetrySnapshot};

/// Renders the snapshot as a JSON document (the `*_telemetry.json` bench
/// artifact). Parse it back with
/// `serde_json::from_str::<TelemetrySnapshot>`.
pub fn to_json(snapshot: &TelemetrySnapshot) -> String {
    serde_json::to_string(snapshot).expect("snapshot serializes")
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn labels_plus(labels: &[(String, String)], extra: (&str, &str)) -> String {
    let mut all: Vec<(String, String)> = labels.to_vec();
    all.push((extra.0.to_string(), extra.1.to_string()));
    render_labels(&all)
}

/// Renders the snapshot in Prometheus text exposition format
/// (`# HELP` / `# TYPE` preambles, one sample per line).
pub fn to_prometheus(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let mut last_family = "";
    for m in &snapshot.metrics {
        let kind = match &m.value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram { .. } => "histogram",
        };
        if m.name != last_family {
            let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
            let _ = writeln!(out, "# TYPE {} {kind}", m.name);
            last_family = &m.name;
        }
        match &m.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {v}", m.name, render_labels(&m.labels));
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {v}", m.name, render_labels(&m.labels));
            }
            MetricValue::Histogram {
                bounds,
                buckets,
                count,
                sum,
            } => {
                let mut cumulative = 0u64;
                for (i, n) in buckets.iter().enumerate() {
                    cumulative += n;
                    let le = bounds
                        .get(i)
                        .map(|b| b.to_string())
                        .unwrap_or_else(|| "+Inf".to_string());
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cumulative}",
                        m.name,
                        labels_plus(&m.labels, ("le", &le))
                    );
                }
                let _ = writeln!(out, "{}_sum{} {sum}", m.name, render_labels(&m.labels));
                let _ = writeln!(out, "{}_count{} {count}", m.name, render_labels(&m.labels));
            }
        }
    }
    for s in &snapshot.subsystems {
        let labels = render_labels(&[("subsystem".to_string(), s.subsystem.clone())]);
        let _ = writeln!(
            out,
            "# HELP telemetry_spans_total spans recorded per subsystem"
        );
        let _ = writeln!(out, "# TYPE telemetry_spans_total counter");
        let _ = writeln!(out, "telemetry_spans_total{labels} {}", s.count);
        let _ = writeln!(
            out,
            "# HELP telemetry_span_sim_cycles_total simulated cycles covered by spans"
        );
        let _ = writeln!(out, "# TYPE telemetry_span_sim_cycles_total counter");
        let _ = writeln!(
            out,
            "telemetry_span_sim_cycles_total{labels} {}",
            s.sim_cycles
        );
        let _ = writeln!(
            out,
            "# HELP telemetry_span_wall_ns_total host wall nanoseconds spent in spans"
        );
        let _ = writeln!(out, "# TYPE telemetry_span_wall_ns_total counter");
        let _ = writeln!(out, "telemetry_span_wall_ns_total{labels} {}", s.wall_ns);
    }
    if snapshot.dropped_spans > 0 || !snapshot.subsystems.is_empty() {
        let _ = writeln!(
            out,
            "# HELP telemetry_spans_dropped_total span events lost to the bounded ring"
        );
        let _ = writeln!(out, "# TYPE telemetry_spans_dropped_total counter");
        let _ = writeln!(
            out,
            "telemetry_spans_dropped_total {}",
            snapshot.dropped_spans
        );
    }
    out
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Lightweight validator for Prometheus text exposition output.
///
/// Checks that every non-comment line is `name[{labels}] value`, that
/// names are legal, that every sample's family was announced by a
/// `# TYPE` line, and that values parse as numbers (`+Inf` allowed in
/// `le` labels, not as values). Returns the number of samples.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut typed: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().ok_or(format!("line {lineno}: bare TYPE"))?;
                let kind = parts
                    .next()
                    .ok_or(format!("line {lineno}: TYPE without kind"))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown metric kind {kind}"));
                }
                typed.push(name.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {lineno}: malformed comment"));
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {lineno}: no value"))?;
        let name = series
            .split(['{', ' '])
            .next()
            .ok_or(format!("line {lineno}: no metric name"))?;
        if !valid_name(name) {
            return Err(format!("line {lineno}: bad metric name {name:?}"));
        }
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| typed.iter().any(|t| t == f))
            .unwrap_or(name);
        if !typed.iter().any(|t| t == family) {
            return Err(format!("line {lineno}: sample {name} has no TYPE line"));
        }
        if let Some(open) = series.find('{') {
            if !series.ends_with('}') {
                return Err(format!("line {lineno}: unterminated label set"));
            }
            let body = &series[open + 1..series.len() - 1];
            if !body.is_empty() {
                for pair in body.split(',') {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or(format!("line {lineno}: label without '='"))?;
                    if !valid_name(k) {
                        return Err(format!("line {lineno}: bad label name {k:?}"));
                    }
                    if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                        return Err(format!("line {lineno}: unquoted label value {v:?}"));
                    }
                }
            }
        }
        if value.parse::<f64>().is_err() {
            return Err(format!("line {lineno}: value {value:?} is not a number"));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_snapshot() -> TelemetrySnapshot {
        let reg = Registry::new();
        reg.counter_with("grants_total", "bus grants", &[("master", "m0")])
            .add(12);
        reg.gauge("fill", "fifo fill").set(0.25);
        reg.histogram_with("xact_cycles", "debug xact cost", &[], &[10, 100])
            .observe(42);
        reg.snapshot()
    }

    #[test]
    fn prometheus_renders_all_kinds_and_validates() {
        let prom = to_prometheus(&sample_snapshot());
        assert!(prom.contains("# TYPE grants_total counter"));
        assert!(prom.contains("grants_total{master=\"m0\"} 12"));
        assert!(prom.contains("fill 0.25"));
        assert!(prom.contains("xact_cycles_bucket{le=\"100\"} 1"));
        assert!(prom.contains("xact_cycles_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("xact_cycles_sum 42"));
        assert!(prom.contains("xact_cycles_count 1"));
        let n = validate_prometheus(&prom).expect("valid exposition");
        // 2 plain samples + 3 buckets + sum + count.
        assert_eq!(n, 7);
    }

    #[test]
    fn validator_rejects_untyped_and_garbage() {
        assert!(validate_prometheus("orphan_total 3").is_err());
        assert!(validate_prometheus("# TYPE x counter\nx notanumber").is_err());
        assert!(validate_prometheus("# TYPE x counter\nx{bad} 1").is_err());
        assert!(validate_prometheus("# TYPE x wat\nx 1").is_err());
    }

    #[test]
    fn json_roundtrip_preserves_snapshot() {
        let snap = sample_snapshot();
        let back: TelemetrySnapshot = serde_json::from_str(&to_json(&snap)).expect("parses back");
        assert_eq!(back, snap);
    }
}
