//! Multi-chip test benches: wiring trigger pins between devices.
//!
//! Section 4: the break & suspend switch "manages the response to both
//! on-chip and **external** trigger inputs", and PSI explicitly targets
//! in-system use (a controller mounted inside the gearbox). A real
//! powertrain has several ECUs; this module co-simulates multiple
//! [`Device`]s and wires one device's trigger-out pins to another's
//! trigger-in lines, so a trigger on the engine ECU can stop the gearbox
//! ECU at the same (simulated) instant — something no single-chip debugger
//! offers.

use crate::device::Device;
use std::fmt;

/// One wire: `from` device's trigger-out `pin` drives `to` device's
/// trigger-in `line`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerWire {
    /// Source device index.
    pub from: usize,
    /// Source trigger-out pin.
    pub pin: u8,
    /// Destination device index.
    pub to: usize,
    /// Destination trigger-in line.
    pub line: u8,
}

/// How many cycles a wired pulse holds the destination line high.
const PULSE_WIDTH: u64 = 2;

/// A co-simulated set of devices with trigger wiring.
pub struct MultiChipBench {
    devices: Vec<Device>,
    wires: Vec<TriggerWire>,
    // Per device: how much of its trigger-out logs we've already forwarded.
    seen_mcds_pulses: Vec<usize>,
    seen_app_pulses: Vec<usize>,
    // Per device: per-line deassert deadline (cycle of *that* device).
    line_deadlines: Vec<Vec<(u8, u64)>>,
    // Per device: the trigger-in lines this bench's wiring owns. Lines
    // outside the mask (driven by a host, stimulus replay, or another
    // fabric layer) are left untouched when pulse levels are applied.
    wired_lines: Vec<u32>,
}

impl fmt::Debug for MultiChipBench {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiChipBench")
            .field("devices", &self.devices.len())
            .field("wires", &self.wires)
            .finish()
    }
}

impl MultiChipBench {
    /// Creates a bench over `devices` with the given wiring.
    ///
    /// # Panics
    ///
    /// Panics if a wire references a device index out of range.
    pub fn new(devices: Vec<Device>, wires: Vec<TriggerWire>) -> MultiChipBench {
        let n = devices.len();
        let mut wired_lines = vec![0u32; n];
        for w in &wires {
            assert!(w.from < n && w.to < n, "wire references unknown device");
            wired_lines[w.to] |= 1 << w.line;
        }
        MultiChipBench {
            seen_mcds_pulses: vec![0; n],
            seen_app_pulses: vec![0; n],
            line_deadlines: vec![Vec::new(); n],
            wired_lines,
            devices,
            wires,
        }
    }

    /// Number of co-simulated devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the bench holds no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Adds another wire to the harness (N-device topologies are often
    /// grown incrementally — daisy chains, stars, full meshes).
    ///
    /// # Panics
    ///
    /// Panics if the wire references a device index out of range.
    pub fn add_wire(&mut self, wire: TriggerWire) {
        let n = self.devices.len();
        assert!(
            wire.from < n && wire.to < n,
            "wire references unknown device"
        );
        self.wired_lines[wire.to] |= 1 << wire.line;
        self.wires.push(wire);
    }

    /// The devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Mutable access to device `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn device_mut(&mut self, i: usize) -> &mut Device {
        &mut self.devices[i]
    }

    /// Steps every device one cycle and propagates trigger pulses across
    /// the wiring (one cycle of wire delay).
    pub fn step(&mut self) {
        // 1. Step all devices.
        for d in &mut self.devices {
            d.step();
        }
        // 2. Collect fresh pulses: MCDS trigger-out actions and
        //    application writes to TRIG_OUT.
        let mut fired: Vec<(usize, u8)> = Vec::new();
        for (i, d) in self.devices.iter().enumerate() {
            let mcds_log = d.trigger_out_log();
            for &(_, pin) in &mcds_log[self.seen_mcds_pulses[i]..] {
                fired.push((i, pin));
            }
            self.seen_mcds_pulses[i] = mcds_log.len();
            let app_log = d.soc().periph().trigger_out_pulses();
            for &(_, mask) in &app_log[self.seen_app_pulses[i]..] {
                for pin in 0..32u8 {
                    if mask & (1 << pin) != 0 {
                        fired.push((i, pin));
                    }
                }
            }
            self.seen_app_pulses[i] = app_log.len();
        }
        // 3. Drive destination lines for PULSE_WIDTH cycles.
        for (src, pin) in fired {
            for w in &self.wires {
                if w.from == src && w.pin == pin {
                    let until = self.devices[w.to].soc().cycle() + PULSE_WIDTH;
                    self.line_deadlines[w.to].push((w.line, until));
                }
            }
        }
        // 4. Apply line levels (pulse expiry included). Only the lines this
        //    bench's wiring owns are rewritten: with 2 devices the whole
        //    level was always wire-driven, but in an N-device fabric other
        //    layers (host replay, a bus-carried trigger fabric) may hold
        //    other lines high — those bits pass through untouched.
        for (i, deadlines) in self.line_deadlines.iter_mut().enumerate() {
            if self.wired_lines[i] == 0 {
                continue;
            }
            let now = self.devices[i].soc().cycle();
            deadlines.retain(|&(_, until)| until > now);
            let mut level = 0u32;
            for &(line, _) in deadlines.iter() {
                level |= 1 << line;
            }
            let periph = self.devices[i].soc_mut().periph_mut();
            let outside = periph.trigger_in() & !self.wired_lines[i];
            periph.set_trigger_in(outside | level);
        }
    }

    /// Steps `n` cycles.
    pub fn run_cycles(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceBuilder, DeviceVariant};
    use mcds::observer::CoreTraceConfig;
    use mcds::{AccessKind, CrossTrigger, DataComparator, McdsConfig, SignalRef, TriggerAction};
    use mcds_soc::asm::assemble;
    use mcds_soc::bus::AddrRange;
    use mcds_soc::event::CoreId;

    /// Engine ECU: writes a torque value every pass. Gearbox ECU: free-runs.
    /// A data watchpoint on the engine ECU pulses pin 0; the wire breaks
    /// the gearbox ECU's core through its external-pin cross trigger.
    #[test]
    fn trigger_on_one_ecu_stops_the_other() {
        // ECU A: fire trigger-out pin 0 on the 20th torque write.
        let mut cfg_a = McdsConfig {
            cores: vec![CoreTraceConfig {
                data_comparators: vec![DataComparator::on(
                    AddrRange::new(0xD000_0004, 4),
                    AccessKind::Write,
                )],
                ..Default::default()
            }],
            ..Default::default()
        };
        cfg_a.cross_triggers = vec![CrossTrigger::on_any(
            vec![SignalRef::DataComp {
                core: CoreId(0),
                idx: 0,
            }],
            TriggerAction::TriggerOutPin(0),
        )
        .with_count(20)];
        let mut ecu_a = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .mcds(cfg_a)
            .build();
        ecu_a.soc_mut().load_program(
            &assemble(
                "
                .org 0x80000000
                start:
                    li r2, 0xD0000004
                loop:
                    addi r1, r1, 1
                    sw r1, 0(r2)
                    j loop
                ",
            )
            .unwrap(),
        );

        // ECU B: break its core when external pin 0 rises.
        let cfg_b = McdsConfig {
            cores: vec![CoreTraceConfig::default()],
            cross_triggers: vec![CrossTrigger::on_any(
                vec![SignalRef::ExternalPin(0)],
                TriggerAction::BreakCores(vec![CoreId(0)]),
            )],
            ..Default::default()
        };
        let mut ecu_b = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .mcds(cfg_b)
            .build();
        ecu_b
            .soc_mut()
            .load_program(&assemble(".org 0x80000000\nloop: addi r1, r1, 1\nj loop").unwrap());

        let mut bench = MultiChipBench::new(
            vec![ecu_a, ecu_b],
            vec![TriggerWire {
                from: 0,
                pin: 0,
                to: 1,
                line: 0,
            }],
        );
        bench.run_cycles(5_000);
        assert!(
            bench.devices()[1].soc().core(CoreId(0)).is_halted(),
            "gearbox ECU halted by the engine ECU's trigger"
        );
        assert!(
            !bench.devices()[0].soc().core(CoreId(0)).is_halted(),
            "engine ECU keeps running (the switch routes per action)"
        );
        // ECU A ran the full 5 000 cycles (it was never stopped), but ECU B
        // froze around the 20th torque write — early in the run.
        let a_writes = bench.devices()[0].soc().backdoor_read_word(0xD000_0004);
        assert!(a_writes > 100, "ECU A kept producing ({a_writes} writes)");
        let b_retired = bench.devices()[1].soc().core(CoreId(0)).retired();
        assert!(
            b_retired < 200,
            "ECU B stopped near the trigger instant (retired {b_retired})"
        );
    }

    /// A free-running single-core device with `cfg` installed.
    fn relay_device(cfg: McdsConfig) -> Device {
        let mut d = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .mcds(cfg)
            .build();
        d.soc_mut()
            .load_program(&assemble(".org 0x80000000\nloop: addi r1, r1, 1\nj loop").unwrap());
        d
    }

    /// Regression for the N ≥ 3 generalisation: A's comparator pulse must
    /// propagate transitively A→B→C through B's pin-to-pin relay — each
    /// hop through the bench's forwarding bookkeeping, not a direct wire.
    #[test]
    fn transitive_trigger_propagates_across_three_devices() {
        // A: data watchpoint fires trigger-out pin 0.
        let mut cfg_a = McdsConfig {
            cores: vec![CoreTraceConfig {
                data_comparators: vec![DataComparator::on(
                    AddrRange::new(0xD000_0004, 4),
                    AccessKind::Write,
                )],
                ..Default::default()
            }],
            ..Default::default()
        };
        cfg_a.cross_triggers = vec![CrossTrigger::on_any(
            vec![SignalRef::DataComp {
                core: CoreId(0),
                idx: 0,
            }],
            TriggerAction::TriggerOutPin(0),
        )
        .with_count(10)];
        let mut ecu_a = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .mcds(cfg_a)
            .build();
        ecu_a.soc_mut().load_program(
            &assemble(
                "
                .org 0x80000000
                start:
                    li r2, 0xD0000004
                loop:
                    addi r1, r1, 1
                    sw r1, 0(r2)
                    j loop
                ",
            )
            .unwrap(),
        );

        // B: relay — external pin 0 re-fires its own trigger-out pin 1.
        let ecu_b = relay_device(McdsConfig {
            cores: vec![CoreTraceConfig::default()],
            cross_triggers: vec![CrossTrigger::on_any(
                vec![SignalRef::ExternalPin(0)],
                TriggerAction::TriggerOutPin(1),
            )],
            ..Default::default()
        });
        // C: break on external pin 0.
        let ecu_c = relay_device(McdsConfig {
            cores: vec![CoreTraceConfig::default()],
            cross_triggers: vec![CrossTrigger::on_any(
                vec![SignalRef::ExternalPin(0)],
                TriggerAction::BreakCores(vec![CoreId(0)]),
            )],
            ..Default::default()
        });

        let mut bench = MultiChipBench::new(
            vec![ecu_a, ecu_b, ecu_c],
            vec![TriggerWire {
                from: 0,
                pin: 0,
                to: 1,
                line: 0,
            }],
        );
        bench.add_wire(TriggerWire {
            from: 1,
            pin: 1,
            to: 2,
            line: 0,
        });
        assert_eq!(bench.len(), 3);
        bench.run_cycles(5_000);
        assert!(
            bench.devices()[2].soc().core(CoreId(0)).is_halted(),
            "C halted by A's trigger relayed through B"
        );
        assert!(
            !bench.devices()[0].soc().core(CoreId(0)).is_halted()
                && !bench.devices()[1].soc().core(CoreId(0)).is_halted(),
            "only the final hop breaks"
        );
        let c_retired = bench.devices()[2].soc().core(CoreId(0)).retired();
        assert!(
            c_retired < 400,
            "C stopped near the (relayed) trigger instant (retired {c_retired})"
        );
    }

    /// The wiring must only drive the lines it owns: a level held high by
    /// an outside layer (host, replayed input log, bus trigger fabric) on
    /// an unwired line survives the bench's per-step level rewrite. The
    /// old 2-device bookkeeping clobbered the whole mask every step.
    #[test]
    fn unwired_trigger_lines_are_not_clobbered() {
        let dev_a = relay_device(McdsConfig {
            cores: vec![CoreTraceConfig::default()],
            ..Default::default()
        });
        let dev_b = relay_device(McdsConfig {
            cores: vec![CoreTraceConfig::default()],
            ..Default::default()
        });
        let mut bench = MultiChipBench::new(
            vec![dev_a, dev_b],
            vec![TriggerWire {
                from: 0,
                pin: 0,
                to: 1,
                line: 0,
            }],
        );
        // An outside layer holds line 5 on device 1 and line 2 on the
        // wire-less device 0.
        bench
            .device_mut(1)
            .soc_mut()
            .periph_mut()
            .set_trigger_in(1 << 5);
        bench
            .device_mut(0)
            .soc_mut()
            .periph_mut()
            .set_trigger_in(1 << 2);
        bench.run_cycles(50);
        assert_eq!(
            bench.devices()[1].soc().periph().trigger_in(),
            1 << 5,
            "unwired line 5 still high after stepping"
        );
        assert_eq!(
            bench.devices()[0].soc().periph().trigger_in(),
            1 << 2,
            "device with no incoming wires keeps its externally driven level"
        );
    }

    #[test]
    fn app_written_pulses_cross_the_wire_too() {
        // Device 0's *software* pulses TRIG_OUT; device 1 suspends its core
        // on the pin and resumes on a second pin.
        let prog_a = assemble(
            "
            .equ TRIG_OUT, 0xF0000300
            .org 0x80000000
            start:
                li r2, TRIG_OUT
                li r3, 40
            wait1:
                addi r3, r3, -1
                bne r3, r0, wait1
                li r1, 0b01
                sw r1, 0(r2)        ; pulse pin 0 (suspend B)
                li r3, 200
            wait2:
                addi r3, r3, -1
                bne r3, r0, wait2
                li r1, 0b10
                sw r1, 0(r2)        ; pulse pin 1 (resume B)
                halt
            ",
        )
        .unwrap();
        let dev_a = {
            let mut d = DeviceBuilder::new(DeviceVariant::Production)
                .cores(1)
                .build();
            d.soc_mut().load_program(&prog_a);
            d
        };
        let cfg_b = McdsConfig {
            cores: vec![CoreTraceConfig::default()],
            cross_triggers: vec![
                CrossTrigger::on_any(
                    vec![SignalRef::ExternalPin(0)],
                    TriggerAction::SuspendCores(vec![CoreId(0)]),
                ),
                CrossTrigger::on_any(
                    vec![SignalRef::ExternalPin(1)],
                    TriggerAction::ResumeCores(vec![CoreId(0)]),
                ),
            ],
            ..Default::default()
        };
        let dev_b = {
            let mut d = DeviceBuilder::new(DeviceVariant::EdSideBooster)
                .cores(1)
                .mcds(cfg_b)
                .build();
            d.soc_mut()
                .load_program(&assemble(".org 0x80000000\nloop: addi r1, r1, 1\nj loop").unwrap());
            d
        };
        let mut bench = MultiChipBench::new(
            vec![dev_a, dev_b],
            vec![
                TriggerWire {
                    from: 0,
                    pin: 0,
                    to: 1,
                    line: 0,
                },
                TriggerWire {
                    from: 0,
                    pin: 1,
                    to: 1,
                    line: 1,
                },
            ],
        );
        // Run past the suspend pulse.
        bench.run_cycles(700);
        let mid = bench.devices()[1].soc().core(CoreId(0)).retired();
        assert!(bench.devices()[1].soc().core(CoreId(0)).is_suspended());
        // Run past the resume pulse.
        bench.run_cycles(3_000);
        let end = bench.devices()[1].soc().core(CoreId(0)).retired();
        assert!(!bench.devices()[1].soc().core(CoreId(0)).is_suspended());
        assert!(end > mid, "resumed and retired more ({mid} → {end})");
    }
}
