//! Debug communication interface models: USB 1.1, JTAG and CAN.
//!
//! Section 6 of the paper gives the quantitative contrast the F5 experiment
//! reproduces: *"For control actions requiring low latency the JTAG based
//! interface's 2 µs latency is more suitable than the 3 ms of the USB
//! interface"* — while USB 1.1's 12 Mbit/s bulk bandwidth makes it the
//! choice for trace upload and calibration, with its driver's "significant
//! software overhead" absorbed by the extra PCP2 service core.
//!
//! Each interface is a latency + bandwidth model measured in simulated SoC
//! cycles (150 MHz): a transaction costs a fixed request latency, a payload
//! transfer time, and a fixed response latency. No host wall-clock time is
//! involved — everything is simulated time, so experiments are
//! deterministic.

use mcds_soc::soc::memmap;
use std::fmt;

/// The kind of physical debug link.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterfaceKind {
    /// USB 1.1 full speed through the PSI package (TC1796ED).
    Usb11,
    /// The JTAG debug port (production and development devices).
    Jtag,
    /// The application's CAN bus, reused for calibration under extreme form
    /// factors ("an existing CAN interface", Section 6).
    Can,
}

impl fmt::Display for InterfaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterfaceKind::Usb11 => write!(f, "USB 1.1"),
            InterfaceKind::Jtag => write!(f, "JTAG"),
            InterfaceKind::Can => write!(f, "CAN"),
        }
    }
}

/// Rejected [`InterfaceModel`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterfaceModelError {
    /// `bits_per_second` must be non-zero.
    ZeroBitRate,
    /// `frame_payload` must be non-zero.
    ZeroFramePayload,
}

impl fmt::Display for InterfaceModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterfaceModelError::ZeroBitRate => write!(f, "bits_per_second must be non-zero"),
            InterfaceModelError::ZeroFramePayload => write!(f, "frame_payload must be non-zero"),
        }
    }
}

impl std::error::Error for InterfaceModelError {}

/// Serializable cumulative statistics of an [`InterfaceModel`]. The timing
/// parameters are configuration and are *not* included.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Transactions completed.
    pub transactions: u64,
    /// Total payload bytes moved.
    pub payload_bytes: u64,
    /// Total cycles the link was busy.
    pub busy_cycles: u64,
}

/// A latency/bandwidth model of one debug link.
#[derive(Debug, Clone)]
pub struct InterfaceModel {
    kind: InterfaceKind,
    /// One-way host→target latency in nanoseconds.
    request_latency_ns: u64,
    /// One-way target→host latency in nanoseconds.
    response_latency_ns: u64,
    /// Payload bit rate in bits per second.
    bits_per_second: u64,
    /// Protocol overhead bits charged per `frame_payload` bytes of payload.
    frame_overhead_bits: u64,
    /// Payload bytes per frame.
    frame_payload: u64,
    // Cumulative statistics.
    transactions: u64,
    payload_bytes: u64,
    busy_cycles: u64,
}

impl InterfaceModel {
    /// Builds a link model, rejecting parameters that would divide by zero
    /// in the timing arithmetic.
    pub fn custom(
        kind: InterfaceKind,
        request_latency_ns: u64,
        response_latency_ns: u64,
        bits_per_second: u64,
        frame_overhead_bits: u64,
        frame_payload: u64,
    ) -> Result<InterfaceModel, InterfaceModelError> {
        if bits_per_second == 0 {
            return Err(InterfaceModelError::ZeroBitRate);
        }
        if frame_payload == 0 {
            return Err(InterfaceModelError::ZeroFramePayload);
        }
        Ok(InterfaceModel {
            kind,
            request_latency_ns,
            response_latency_ns,
            bits_per_second,
            frame_overhead_bits,
            frame_payload,
            transactions: 0,
            payload_bytes: 0,
            busy_cycles: 0,
        })
    }

    /// The USB 1.1 model: 12 Mbit/s bulk, 3 ms command latency (one
    /// polling interval request + response processing), 64-byte frames
    /// with 13 bytes of protocol overhead.
    pub fn usb11() -> InterfaceModel {
        InterfaceModel::custom(
            InterfaceKind::Usb11,
            1_500_000,
            1_500_000,
            12_000_000,
            13 * 8,
            64,
        )
        .expect("static USB 1.1 parameters are valid")
    }

    /// The JTAG model: 2 µs fixed transaction latency (1 µs each way, the
    /// paper's "2 µs latency" for control actions), 10 MHz TCK with 8
    /// capture/update overhead bits per 4-byte word.
    pub fn jtag() -> InterfaceModel {
        InterfaceModel::custom(InterfaceKind::Jtag, 1_000, 1_000, 10_000_000, 8, 4)
            .expect("static JTAG parameters are valid")
    }

    /// The CAN model: 500 kbit/s, 8-byte frames with 47 bits of frame
    /// overhead, ~220 µs request latency (frame time plus scheduling).
    pub fn can() -> InterfaceModel {
        InterfaceModel::custom(InterfaceKind::Can, 220_000, 220_000, 500_000, 47, 8)
            .expect("static CAN parameters are valid")
    }

    /// The link kind.
    pub fn kind(&self) -> InterfaceKind {
        self.kind
    }

    /// One-way request latency in SoC cycles.
    pub fn request_latency_cycles(&self) -> u64 {
        memmap::ns_to_cycles(self.request_latency_ns)
    }

    /// One-way response latency in SoC cycles.
    pub fn response_latency_cycles(&self) -> u64 {
        memmap::ns_to_cycles(self.response_latency_ns)
    }

    /// Payload bytes carried per link frame.
    pub fn frame_payload(&self) -> u64 {
        self.frame_payload
    }

    /// Number of link frames needed to carry `bytes` of payload.
    pub fn frames_for(&self, bytes: usize) -> u64 {
        (bytes as u64).div_ceil(self.frame_payload)
    }

    /// Cycles to move `bytes` of payload across the link (frame overhead
    /// included). Saturates instead of overflowing for absurd sizes.
    pub fn transfer_cycles(&self, bytes: usize) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let frames = self.frames_for(bytes);
        let bits = (bytes as u64)
            .saturating_mul(8)
            .saturating_add(frames.saturating_mul(self.frame_overhead_bits));
        let ns = bits.saturating_mul(1_000_000_000) / self.bits_per_second;
        memmap::ns_to_cycles(ns)
    }

    /// Total simulated cycles for a command round trip carrying
    /// `request_bytes` out and `response_bytes` back.
    pub fn round_trip_cycles(&self, request_bytes: usize, response_bytes: usize) -> u64 {
        self.request_latency_cycles()
            .saturating_add(self.transfer_cycles(request_bytes))
            .saturating_add(self.response_latency_cycles())
            .saturating_add(self.transfer_cycles(response_bytes))
    }

    /// Effective payload throughput in bits per second for large transfers.
    pub fn effective_throughput_bps(&self) -> u64 {
        let payload_bits = self.frame_payload * 8;
        self.bits_per_second * payload_bits / (payload_bits + self.frame_overhead_bits)
    }

    /// Records a completed transaction (called by the device model).
    pub fn record_transaction(&mut self, payload_bytes: usize, busy_cycles: u64) {
        self.transactions += 1;
        self.payload_bytes += payload_bytes as u64;
        self.busy_cycles += busy_cycles;
    }

    /// Transactions completed.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Total payload bytes moved.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Total cycles the link was busy.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Captures the link's cumulative statistics (see [`LinkStats`]).
    pub fn save_state(&self) -> LinkStats {
        LinkStats {
            transactions: self.transactions,
            payload_bytes: self.payload_bytes,
            busy_cycles: self.busy_cycles,
        }
    }

    /// Restores statistics captured by [`InterfaceModel::save_state`].
    pub fn restore_state(&mut self, state: &LinkStats) {
        self.transactions = state.transactions;
        self.payload_bytes = state.payload_bytes;
        self.busy_cycles = state.busy_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jtag_latency_is_two_microseconds() {
        let j = InterfaceModel::jtag();
        // The paper's figure is the fixed control-action latency.
        let fixed = memmap::cycles_to_ns(j.round_trip_cycles(0, 0));
        assert!(
            (1_900..=2_100).contains(&fixed),
            "JTAG fixed latency {fixed} ns ≈ 2 µs"
        );
        // Even with a word each way it stays in the microsecond class,
        // three orders of magnitude below USB's 3 ms.
        let with_payload = memmap::cycles_to_ns(j.round_trip_cycles(4, 4));
        assert!(
            with_payload < 15_000,
            "JTAG word round trip {with_payload} ns"
        );
    }

    #[test]
    fn usb_latency_is_three_milliseconds() {
        let u = InterfaceModel::usb11();
        let cycles = u.round_trip_cycles(8, 8);
        let ns = memmap::cycles_to_ns(cycles);
        assert!(
            (3_000_000..3_300_000).contains(&ns),
            "USB round trip {ns} ns ≈ 3 ms"
        );
    }

    #[test]
    fn usb_beats_jtag_on_bulk_throughput() {
        let u = InterfaceModel::usb11();
        let j = InterfaceModel::jtag();
        let bulk = 256 * 1024; // half the emulation RAM
        assert!(
            u.transfer_cycles(bulk) < j.transfer_cycles(bulk),
            "USB moves bulk trace faster"
        );
        // But JTAG wins small-command latency by orders of magnitude.
        assert!(j.round_trip_cycles(4, 4) * 100 < u.round_trip_cycles(4, 4));
    }

    #[test]
    fn can_is_slowest_but_works() {
        let c = InterfaceModel::can();
        assert!(c.effective_throughput_bps() < 500_000);
        assert!(c.effective_throughput_bps() > 200_000);
        let u = InterfaceModel::usb11();
        assert!(c.transfer_cycles(1024) > u.transfer_cycles(1024));
    }

    #[test]
    fn zero_payload_costs_nothing_to_transfer() {
        let j = InterfaceModel::jtag();
        assert_eq!(j.transfer_cycles(0), 0);
        assert!(j.round_trip_cycles(0, 0) > 0, "latency still applies");
    }

    #[test]
    fn zero_rate_and_zero_frame_payload_are_rejected() {
        assert_eq!(
            InterfaceModel::custom(InterfaceKind::Can, 1, 1, 0, 47, 8).unwrap_err(),
            InterfaceModelError::ZeroBitRate
        );
        assert_eq!(
            InterfaceModel::custom(InterfaceKind::Can, 1, 1, 500_000, 47, 0).unwrap_err(),
            InterfaceModelError::ZeroFramePayload
        );
    }

    #[test]
    fn huge_transfers_saturate_instead_of_overflowing() {
        let j = InterfaceModel::jtag();
        let c = j.transfer_cycles(usize::MAX);
        assert!(c > 0);
        assert!(j.round_trip_cycles(usize::MAX, usize::MAX) >= c);
    }

    #[test]
    fn statistics_accumulate() {
        let mut u = InterfaceModel::usb11();
        u.record_transaction(100, 5000);
        u.record_transaction(50, 2500);
        assert_eq!(u.transactions(), 2);
        assert_eq!(u.payload_bytes(), 150);
        assert_eq!(u.busy_cycles(), 7500);
    }
}
