//! Publishing the device's siloed counters into an attached telemetry
//! registry.
//!
//! The device model keeps its ground-truth accounting where it always
//! did — `BusCounters` on the bus, FIFO counters in the sorter, link and
//! fault statistics on the interfaces. [`Device::publish_telemetry`]
//! mirrors all of it into the attached [`Telemetry`] registry in one
//! read-only pass, so exporters and the health report see a coherent
//! point-in-time view. Publishing is pull-based and cheap; benches call
//! it once at the end of a run, long-lived sessions can call it on every
//! scrape.

use crate::device::Device;
use crate::interface::InterfaceKind;
use mcds_telemetry::{Histogram, Telemetry};

/// Stable label value for a debug link (Prometheus label charset).
pub fn link_label(kind: InterfaceKind) -> &'static str {
    match kind {
        InterfaceKind::Jtag => "jtag",
        InterfaceKind::Usb11 => "usb11",
        InterfaceKind::Can => "can",
    }
}

/// Bucket bounds for the per-link debug-transaction cost histogram:
/// spans JTAG's microseconds (hundreds of cycles) through USB's
/// milliseconds (hundreds of thousands) up to flash programming.
const DEBUG_XACT_BOUNDS: [u64; 6] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

pub(crate) fn debug_xact_histogram(tel: &Telemetry, kind: InterfaceKind) -> Histogram {
    tel.registry().histogram_with(
        "mcds_debug_xact_cycles",
        "simulated cycles per completed debug-link transaction",
        &[("link", link_label(kind))],
        &DEBUG_XACT_BOUNDS,
    )
}

impl Device {
    /// Mirrors every device-level counter into the attached telemetry
    /// registry (no-op when detached). Strictly read-only on the
    /// deterministic state.
    pub fn publish_telemetry(&self) {
        let Some(dt) = self.telemetry.as_ref() else {
            return;
        };
        let reg = dt.handle.registry();
        let now = self.soc().cycle();
        reg.counter("mcds_sim_cycles_total", "simulated SoC cycles elapsed")
            .store(now);

        // Bus arbitration ground truth: lifetime totals plus the window
        // since telemetry was attached (BusCounters::delta_since).
        let bus = self.soc().bus_counters();
        reg.counter("mcds_bus_cycles_total", "bus cycles stepped")
            .store(bus.cycles);
        reg.counter(
            "mcds_bus_busy_cycles_total",
            "bus cycles with a transaction in flight",
        )
        .store(bus.busy_cycles);
        reg.counter(
            "mcds_bus_contended_cycles_total",
            "bus cycles where some master waited",
        )
        .store(bus.contended_cycles);
        reg.gauge("mcds_bus_utilization", "fraction of bus cycles busy (0-1)")
            .set(bus.utilization());
        for (i, m) in bus.per_master.iter().enumerate() {
            let master = format!("m{i}");
            let labels: [(&str, &str); 1] = [("master", &master)];
            reg.counter_with("mcds_bus_grants_total", "transactions granted", &labels)
                .store(m.grants);
            reg.counter_with(
                "mcds_bus_xacts_total",
                "transactions completed cleanly",
                &labels,
            )
            .store(m.xacts);
            reg.counter_with(
                "mcds_bus_faults_total",
                "transactions that faulted",
                &labels,
            )
            .store(m.faults);
            reg.counter_with(
                "mcds_bus_occupancy_cycles_total",
                "cycles holding the bus",
                &labels,
            )
            .store(m.occupancy_cycles);
            reg.counter_with(
                "mcds_bus_wait_cycles_total",
                "cycles queued waiting for a grant",
                &labels,
            )
            .store(m.wait_cycles);
        }
        let window = bus.delta_since(&dt.bus_baseline);
        reg.gauge(
            "mcds_bus_window_cycles",
            "bus cycles since telemetry attach",
        )
        .set(window.cycles as f64);
        reg.gauge(
            "mcds_bus_window_busy_cycles",
            "busy bus cycles since telemetry attach",
        )
        .set(window.busy_cycles as f64);
        reg.gauge(
            "mcds_bus_window_contended_cycles",
            "contended bus cycles since telemetry attach",
        )
        .set(window.contended_cycles as f64);
        reg.gauge(
            "mcds_bus_window_utilization",
            "bus utilization over the window since telemetry attach (0-1)",
        )
        .set(window.utilization());
        for (i, m) in window.per_master.iter().enumerate() {
            let master = format!("m{i}");
            let labels: [(&str, &str); 1] = [("master", &master)];
            reg.gauge_with(
                "mcds_bus_window_grants",
                "grants in the window since telemetry attach",
                &labels,
            )
            .set(m.grants as f64);
            reg.gauge_with(
                "mcds_bus_window_wait_cycles",
                "wait cycles in the window since telemetry attach",
                &labels,
            )
            .set(m.wait_cycles as f64);
        }

        // Trace path: MCDS totals, per-source FIFO accounting, sink fill.
        let stats = self.mcds().stats();
        reg.counter("mcds_trace_generated_total", "trace messages generated")
            .store(stats.generated);
        reg.counter(
            "mcds_trace_emitted_total",
            "trace messages emitted by the sorter",
        )
        .store(stats.emitted);
        reg.counter(
            "mcds_trace_lost_total",
            "trace messages lost to FIFO overflow",
        )
        .store(stats.lost);
        reg.gauge("mcds_trace_backlog", "messages queued in the sorter FIFOs")
            .set(stats.backlog as f64);
        for f in self.mcds().fifo_metrics() {
            let source = f.source.to_string();
            let labels: [(&str, &str); 1] = [("source", &source)];
            reg.counter_with(
                "mcds_fifo_pushed_total",
                "messages accepted by this FIFO",
                &labels,
            )
            .store(f.total_pushed);
            reg.counter_with(
                "mcds_fifo_lost_total",
                "messages dropped by this FIFO",
                &labels,
            )
            .store(f.total_lost);
            reg.counter_with(
                "mcds_fifo_overflow_markers_total",
                "overflow markers inserted by this FIFO",
                &labels,
            )
            .store(f.markers_inserted);
            reg.gauge_with("mcds_fifo_len", "current FIFO occupancy", &labels)
                .set(f.len as f64);
            reg.gauge_with("mcds_fifo_high_water", "peak FIFO occupancy", &labels)
                .set(f.high_water as f64);
            reg.gauge_with("mcds_fifo_depth", "configured FIFO capacity", &labels)
                .set(f.depth as f64);
        }
        let sink = self.sink();
        reg.counter(
            "mcds_sink_messages_total",
            "trace messages encoded into the sink",
        )
        .store(sink.message_count());
        reg.counter(
            "mcds_sink_bytes_written_total",
            "encoded trace bytes written",
        )
        .store(sink.bytes_written());
        reg.counter(
            "mcds_sink_dropped_total",
            "messages dropped for lack of trace memory",
        )
        .store(self.sink_dropped());
        reg.gauge("mcds_sink_used_bytes", "trace memory bytes in use")
            .set(sink.used() as f64);
        reg.gauge("mcds_sink_capacity_bytes", "trace memory capacity")
            .set(sink.capacity() as f64);

        // Debug links: transaction accounting plus fault-injector truth.
        for kind in [
            InterfaceKind::Jtag,
            InterfaceKind::Usb11,
            InterfaceKind::Can,
        ] {
            let Some(iface) = self.interface(kind) else {
                continue;
            };
            let labels: [(&str, &str); 1] = [("link", link_label(kind))];
            reg.counter_with(
                "mcds_link_transactions_total",
                "debug transactions completed on this link",
                &labels,
            )
            .store(iface.transactions());
            reg.counter_with(
                "mcds_link_payload_bytes_total",
                "payload bytes carried by this link",
                &labels,
            )
            .store(iface.payload_bytes());
            reg.counter_with(
                "mcds_link_busy_cycles_total",
                "simulated cycles this link was busy",
                &labels,
            )
            .store(iface.busy_cycles());
            if let Some(fs) = self.fault_stats(kind) {
                reg.counter_with(
                    "mcds_link_frames_total",
                    "frames offered to this link's fault injector",
                    &labels,
                )
                .store(fs.frames);
                reg.counter_with(
                    "mcds_link_frames_dropped_total",
                    "frames silently lost",
                    &labels,
                )
                .store(fs.dropped);
                reg.counter_with(
                    "mcds_link_frames_corrupted_total",
                    "frames delivered with a flipped bit",
                    &labels,
                )
                .store(fs.corrupted);
                reg.counter_with(
                    "mcds_link_frames_duplicated_total",
                    "frames delivered twice",
                    &labels,
                )
                .store(fs.duplicated);
                reg.counter_with(
                    "mcds_link_down_losses_total",
                    "frames lost to outage windows",
                    &labels,
                )
                .store(fs.down_losses);
                reg.counter_with(
                    "mcds_link_jitter_cycles_total",
                    "jitter delay added, in simulated cycles",
                    &labels,
                )
                .store(fs.jitter_cycles);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DebugOp, DeviceBuilder, DeviceVariant};
    use mcds_soc::asm::assemble;
    use mcds_telemetry::MetricValue;

    #[test]
    fn publish_mirrors_device_counters() {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        dev.soc_mut()
            .load_program(&assemble(".org 0x80000000\nhalt").unwrap());
        dev.attach_telemetry(Telemetry::new());
        dev.run_until_halt(100);
        dev.execute(InterfaceKind::Jtag, DebugOp::ReadStats)
            .unwrap();
        dev.publish_telemetry();
        let snap = dev.telemetry().unwrap().snapshot();
        let get = |name: &str| {
            snap.metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("metric {name} published"))
                .value
                .clone()
        };
        assert_eq!(
            get("mcds_sim_cycles_total"),
            MetricValue::Counter(dev.soc().cycle())
        );
        let MetricValue::Counter(bus_cycles) = get("mcds_bus_cycles_total") else {
            panic!("counter expected");
        };
        assert!(bus_cycles > 0);
        let MetricValue::Counter(link_xacts) = get("mcds_link_transactions_total") else {
            panic!("counter expected");
        };
        assert_eq!(link_xacts, 1);
        // The debug transaction also landed in the per-link histogram.
        let MetricValue::Histogram { count, .. } = get("mcds_debug_xact_cycles") else {
            panic!("histogram expected");
        };
        assert_eq!(count, 1);
    }

    #[test]
    fn detached_device_publishes_nothing_and_spans_nothing() {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        dev.soc_mut()
            .load_program(&assemble(".org 0x80000000\nhalt").unwrap());
        dev.run_until_halt(100);
        dev.publish_telemetry();
        assert!(dev.telemetry().is_none());
    }

    #[test]
    fn window_gauges_start_from_attach_point() {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        dev.soc_mut().load_program(
            &assemble(".org 0x80000000\nli r1, 20\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt")
                .unwrap(),
        );
        dev.run_cycles(50);
        let before_attach = dev.soc().bus_counters().cycles;
        assert!(before_attach > 0);
        dev.attach_telemetry(Telemetry::new());
        dev.run_until_halt(10_000);
        dev.publish_telemetry();
        let snap = dev.telemetry().unwrap().snapshot();
        let window = snap
            .metrics
            .iter()
            .find(|m| m.name == "mcds_bus_window_cycles")
            .unwrap();
        let total = snap
            .metrics
            .iter()
            .find(|m| m.name == "mcds_bus_cycles_total")
            .unwrap();
        let MetricValue::Gauge(window) = window.value else {
            panic!("gauge expected");
        };
        let MetricValue::Counter(total) = total.value else {
            panic!("counter expected");
        };
        assert!(window > 0.0);
        assert!(
            (window as u64) < total,
            "window ({window}) excludes the {before_attach} pre-attach cycles of {total}"
        );
    }
}
