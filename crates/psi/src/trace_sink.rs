//! The trace sink: routing sorted MCDS messages into emulation-RAM trace
//! segments.
//!
//! Section 7: *"The emulation RAM is segmented into 64 kByte blocks for use
//! as either overlay or trace memory. … The trace features used for system
//! debug of mission critical real-time systems require just a fraction of
//! that"* — the T4 experiment measures exactly how much. The sink encodes
//! the sorted message stream ([`mcds_trace::wire`]) and writes it into the
//! segments assigned the [`SegmentRole::Trace`] role, either stopping when
//! full (post-trigger capture) or wrapping (flight-recorder mode).
//!
//! [`SegmentRole::Trace`]: mcds_soc::mem::SegmentRole::Trace

use mcds_soc::mem::{EmulationRam, SegmentRole, EMEM_SEGMENT_SIZE};
use mcds_trace::{EncoderState, StreamEncoder, TimedMessage};

/// What happens when the trace region fills.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FullPolicy {
    /// Stop recording (keep the oldest data).
    #[default]
    Stop,
    /// Wrap around (keep the newest data, flight-recorder style).
    Wrap,
}

/// Serializable runtime state of a [`TraceSink`]: encoder context, write
/// cursor and fill-status flags. The segment assignment, full policy and
/// capacity are configuration and are *not* included (the stored bytes
/// themselves live in the emulation RAM, snapshotted separately).
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct SinkState {
    encoder: EncoderState,
    write_offset: u64,
    stopped: bool,
    bytes_written: u64,
    wrapped: bool,
}

/// Encodes trace messages into the emulation RAM's trace segments.
#[derive(Debug)]
pub struct TraceSink {
    segments: Vec<usize>,
    policy: FullPolicy,
    encoder: StreamEncoder,
    write_offset: usize,
    capacity: usize,
    stopped: bool,
    bytes_written: u64,
    wrapped: bool,
}

impl TraceSink {
    /// Creates a sink over the emulation-RAM segments listed in `segments`
    /// (which must carry [`SegmentRole::Trace`] in `emem`).
    ///
    /// # Panics
    ///
    /// Panics if a listed segment is out of range or not a trace segment.
    ///
    /// [`SegmentRole::Trace`]: mcds_soc::mem::SegmentRole::Trace
    pub fn new(emem: &EmulationRam, segments: Vec<usize>, policy: FullPolicy) -> TraceSink {
        for &s in &segments {
            assert!(
                emem.segment_role(s) == SegmentRole::Trace,
                "segment {s} is not a trace segment"
            );
        }
        let capacity = segments.len() * EMEM_SEGMENT_SIZE as usize;
        TraceSink {
            segments,
            policy,
            encoder: StreamEncoder::new(),
            write_offset: 0,
            capacity,
            stopped: false,
            bytes_written: 0,
            wrapped: false,
        }
    }

    /// A sink with no backing segments: every message is counted but
    /// dropped (production devices without emulation RAM).
    pub fn discarding() -> TraceSink {
        TraceSink {
            segments: Vec::new(),
            policy: FullPolicy::Stop,
            encoder: StreamEncoder::new(),
            write_offset: 0,
            capacity: 0,
            stopped: true,
            bytes_written: 0,
            wrapped: false,
        }
    }

    /// Configures stream-level sync records every `interval` messages
    /// (see [`mcds_trace::StreamEncoder::with_sync_interval`]): the stored
    /// stream then carries periodic absolute-timestamp resynchronization
    /// points, so a decoder can skip a corrupt region and continue exactly.
    ///
    /// # Panics
    ///
    /// Panics if messages have already been stored.
    ///
    /// [`mcds_trace::StreamEncoder::with_sync_interval`]: StreamEncoder::with_sync_interval
    pub fn with_sync_interval(mut self, interval: u64) -> TraceSink {
        assert!(
            self.encoder.byte_len() == 0,
            "sync interval must be configured before the first store"
        );
        self.encoder = StreamEncoder::with_sync_interval(interval);
        self
    }

    /// The configured sync-record interval, if any.
    pub fn sync_interval(&self) -> Option<u64> {
        self.encoder.sync_interval()
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes of encoded trace stored so far (≤ capacity).
    pub fn used(&self) -> usize {
        (self.bytes_written as usize).min(self.capacity)
    }

    /// Total encoded bytes produced (may exceed capacity when wrapping or
    /// stopped).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// True once a [`FullPolicy::Stop`] sink has filled.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// True if a wrapping sink has overwritten old data.
    pub fn has_wrapped(&self) -> bool {
        self.wrapped
    }

    /// Messages encoded so far.
    pub fn message_count(&self) -> u64 {
        self.encoder.message_count()
    }

    fn emem_offset(&self, linear: usize) -> usize {
        let seg = self.segments[linear / EMEM_SEGMENT_SIZE as usize];
        seg * EMEM_SEGMENT_SIZE as usize + linear % EMEM_SEGMENT_SIZE as usize
    }

    /// Encodes `messages` and stores the bytes into `emem`'s trace
    /// segments. Returns the number of messages actually stored.
    pub fn store(&mut self, messages: &[TimedMessage], emem: &mut EmulationRam) -> usize {
        let mut stored = 0;
        for m in messages {
            if self.stopped {
                break;
            }
            let before = self.encoder.byte_len();
            self.encoder.push(m);
            let bytes = &self.encoder.as_bytes()[before..];
            if self.policy == FullPolicy::Stop && self.write_offset + bytes.len() > self.capacity {
                self.stopped = true;
                break;
            }
            for &b in bytes {
                if self.write_offset == self.capacity {
                    self.write_offset = 0;
                    self.wrapped = true;
                }
                let off = self.emem_offset(self.write_offset);
                emem.bytes_mut()[off] = b;
                self.write_offset += 1;
            }
            self.bytes_written += bytes.len() as u64;
            stored += 1;
        }
        stored
    }

    /// Reads back the stored byte stream in write order (unwrapping if
    /// necessary). For wrapped sinks this returns only the most recent
    /// window, which generally starts mid-message — callers locate the
    /// first decodable sync; for stop-policy sinks it is the full stream.
    pub fn read_back(&self, emem: &EmulationRam) -> Vec<u8> {
        let used = self.used();
        let mut out = Vec::with_capacity(used);
        let start = if self.wrapped { self.write_offset } else { 0 };
        for i in 0..used {
            let linear = (start + i) % self.capacity.max(1);
            out.push(emem.bytes()[self.emem_offset(linear)]);
        }
        out
    }

    /// Captures the sink's runtime state (see [`SinkState`]).
    pub fn save_state(&self) -> SinkState {
        SinkState {
            encoder: self.encoder.save_state(),
            write_offset: self.write_offset as u64,
            stopped: self.stopped,
            bytes_written: self.bytes_written,
            wrapped: self.wrapped,
        }
    }

    /// Restores state captured by [`TraceSink::save_state`] onto a sink
    /// with the same segment assignment and policy.
    ///
    /// # Panics
    ///
    /// Panics if the saved write cursor does not fit this sink's capacity.
    pub fn restore_state(&mut self, state: &SinkState) {
        assert!(
            state.write_offset as usize <= self.capacity,
            "saved sink write offset exceeds capacity"
        );
        self.encoder.restore_state(&state.encoder);
        self.write_offset = state.write_offset as usize;
        self.stopped = state.stopped;
        self.bytes_written = state.bytes_written;
        self.wrapped = state.wrapped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_soc::event::CoreId;
    use mcds_trace::{StreamDecoder, TraceMessage, TraceSource};

    fn trace_emem(segments: usize) -> EmulationRam {
        let mut e = EmulationRam::new(8);
        for s in 0..segments {
            e.set_segment_role(s, SegmentRole::Trace);
        }
        e
    }

    fn m(ts: u64, id: u8) -> TimedMessage {
        TimedMessage {
            timestamp: ts,
            source: TraceSource::Core(CoreId(0)),
            message: TraceMessage::Watchpoint { id },
        }
    }

    #[test]
    fn store_and_read_back_roundtrips() {
        let mut emem = trace_emem(1);
        let mut sink = TraceSink::new(&emem, vec![0], FullPolicy::Stop);
        let msgs: Vec<TimedMessage> = (0..100).map(|i| m(i as u64 * 3, i as u8)).collect();
        assert_eq!(sink.store(&msgs, &mut emem), 100);
        let bytes = sink.read_back(&emem);
        let decoded = StreamDecoder::new(bytes).collect_all().unwrap();
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn stop_policy_halts_at_capacity() {
        let mut emem = trace_emem(1);
        let mut sink = TraceSink::new(&emem, vec![0], FullPolicy::Stop);
        // Each watchpoint message is 3–4 bytes; 64 KB holds ~20k of them.
        let msgs: Vec<TimedMessage> = (0..30_000).map(|i| m(i as u64, 0)).collect();
        let stored = sink.store(&msgs, &mut emem);
        assert!(stored < 30_000);
        assert!(sink.is_stopped());
        assert!(sink.used() <= sink.capacity());
        // Already-stored prefix still decodes.
        let decoded = StreamDecoder::new(sink.read_back(&emem))
            .collect_all()
            .unwrap();
        assert_eq!(decoded.len(), stored);
    }

    #[test]
    fn wrap_policy_keeps_newest() {
        let mut emem = trace_emem(1);
        let mut sink = TraceSink::new(&emem, vec![0], FullPolicy::Wrap);
        let msgs: Vec<TimedMessage> = (0..30_000).map(|i| m(i as u64, 0)).collect();
        let stored = sink.store(&msgs, &mut emem);
        assert_eq!(stored, 30_000, "wrap never refuses");
        assert!(sink.has_wrapped());
        assert!(sink.bytes_written() as usize > sink.capacity());
    }

    #[test]
    fn multiple_segments_extend_capacity() {
        let emem = trace_emem(3);
        let sink = TraceSink::new(&emem, vec![0, 1, 2], FullPolicy::Stop);
        assert_eq!(sink.capacity(), 3 * 64 * 1024);
    }

    #[test]
    fn non_contiguous_segments_work() {
        let mut e = EmulationRam::new(8);
        e.set_segment_role(1, SegmentRole::Trace);
        e.set_segment_role(5, SegmentRole::Trace);
        let mut sink = TraceSink::new(&e, vec![1, 5], FullPolicy::Stop);
        let msgs: Vec<TimedMessage> = (0..25_000).map(|i| m(i as u64, 7)).collect();
        let stored = sink.store(&msgs, &mut e);
        assert!(
            stored > 16_000,
            "spilled into the second segment ({stored})"
        );
        let decoded = StreamDecoder::new(sink.read_back(&e))
            .collect_all()
            .unwrap();
        assert_eq!(decoded.len(), stored);
    }

    #[test]
    #[should_panic(expected = "not a trace segment")]
    fn wrong_role_segment_rejected() {
        let emem = trace_emem(1);
        let _ = TraceSink::new(&emem, vec![3], FullPolicy::Stop);
    }

    #[test]
    fn sync_interval_survives_store_and_decode() {
        let mut emem = trace_emem(1);
        let mut sink = TraceSink::new(&emem, vec![0], FullPolicy::Stop).with_sync_interval(16);
        assert_eq!(sink.sync_interval(), Some(16));
        let msgs: Vec<TimedMessage> = (0..100).map(|i| m(i as u64 * 3, i as u8)).collect();
        assert_eq!(sink.store(&msgs, &mut emem), 100);
        let decoded = StreamDecoder::new(sink.read_back(&emem))
            .collect_all()
            .unwrap();
        assert_eq!(decoded, msgs, "sync records are transparent to decode");
    }

    #[test]
    fn discarding_sink_counts_nothing() {
        let mut emem = trace_emem(0);
        let mut sink = TraceSink::discarding();
        assert_eq!(sink.store(&[m(0, 0)], &mut emem), 0);
        assert_eq!(sink.capacity(), 0);
    }
}
