//! Deterministic fault injection for the debug links.
//!
//! Real debug links are not lossless: USB bulk frames get dropped or
//! corrupted, CAN arbitration loses frames under load, connectors glitch.
//! The XCP standard's `SYNCH` command and Nexus-style periodic sync
//! messages exist precisely because tools must survive this. This module
//! injects those faults into the simulated links — *deterministically*:
//! every decision is drawn from a counter-keyed SplitMix64 PRNG seeded by
//! the [`FaultPlan`], so the same seed and plan reproduce the exact same
//! fault pattern regardless of host timing, and experiments (T7) are
//! byte-identical across runs.
//!
//! The model is frame-oriented, matching [`InterfaceModel`]'s framing: a
//! command or response crossing a link is a sequence of frames, each of
//! which can independently be dropped, bit-corrupted, duplicated, or
//! delayed (jitter, in simulated cycles). Whole-link outages are modeled
//! as cycle windows during which every frame is lost.

use crate::interface::InterfaceKind;
use std::fmt;

/// An invalid fault-plan parameter, rejected at construction instead of
/// silently misbehaving at injection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A [`DownWindow`] whose end does not lie after its start — it could
    /// never match a cycle, so an outage the caller asked for would be
    /// silently dropped.
    InvertedWindow {
        /// The rejected window's first cycle.
        start_cycle: u64,
        /// The rejected window's (exclusive) end cycle.
        end_cycle: u64,
    },
    /// A per-mille rate above 1000 (i.e. a probability above 100%).
    RateOutOfRange {
        /// Which rate field was out of range.
        field: &'static str,
        /// The rejected value.
        per_mille: u16,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::InvertedWindow {
                start_cycle,
                end_cycle,
            } => write!(
                f,
                "down window [{start_cycle}, {end_cycle}) is empty or inverted"
            ),
            FaultPlanError::RateOutOfRange { field, per_mille } => {
                write!(f, "{field} = {per_mille}\u{2030} exceeds 1000\u{2030}")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// An interval of simulated time during which a link is dead.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct DownWindow {
    /// First cycle of the outage (inclusive).
    pub start_cycle: u64,
    /// First cycle after the outage (exclusive).
    pub end_cycle: u64,
}

impl DownWindow {
    /// A validated outage window covering `start_cycle..end_cycle`.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::InvertedWindow`] when `end_cycle <= start_cycle`:
    /// such a window can never contain a cycle, so accepting it would
    /// silently drop the outage the caller asked for.
    pub fn new(start_cycle: u64, end_cycle: u64) -> Result<DownWindow, FaultPlanError> {
        if end_cycle <= start_cycle {
            return Err(FaultPlanError::InvertedWindow {
                start_cycle,
                end_cycle,
            });
        }
        Ok(DownWindow {
            start_cycle,
            end_cycle,
        })
    }

    /// True if `cycle` falls inside the outage.
    pub fn contains(&self, cycle: u64) -> bool {
        (self.start_cycle..self.end_cycle).contains(&cycle)
    }
}

/// A deterministic, seedable description of link faults.
///
/// Rates are expressed per mille (‰, 0..=1000) so plans serialize as plain
/// integers and sweeps stay exact: `drop_per_mille: 50` is a 5% frame loss
/// rate.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-link fault PRNG.
    pub seed: u64,
    /// Probability (‰) that a frame is silently lost.
    pub drop_per_mille: u16,
    /// Probability (‰) that a frame arrives with flipped bits.
    pub corrupt_per_mille: u16,
    /// Probability (‰) that a frame is delivered twice.
    pub duplicate_per_mille: u16,
    /// Maximum extra delivery delay per frame, in simulated cycles
    /// (uniform in `0..=max_jitter_cycles`).
    pub max_jitter_cycles: u32,
    /// Whole-link outages in simulated time.
    pub down_windows: Vec<DownWindow>,
}

impl FaultPlan {
    /// A lossless plan (the default): every field zero.
    pub fn lossless(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_per_mille: 0,
            corrupt_per_mille: 0,
            duplicate_per_mille: 0,
            max_jitter_cycles: 0,
            down_windows: Vec::new(),
        }
    }

    /// A plan that drops `per_mille` ‰ of frames and corrupts the same
    /// fraction — the canonical "hostile link" used by the T7 sweep.
    ///
    /// Rates above 1000‰ are clamped to 1000‰ (certain loss): a campaign
    /// mutating plans must never be able to construct a draw threshold the
    /// injector cannot reach.
    pub fn lossy(seed: u64, per_mille: u16) -> FaultPlan {
        let per_mille = per_mille.min(1000);
        FaultPlan {
            seed,
            drop_per_mille: per_mille,
            corrupt_per_mille: per_mille,
            duplicate_per_mille: per_mille / 4,
            max_jitter_cycles: 0,
            down_windows: Vec::new(),
        }
    }

    /// Checks a plan built by hand (struct literal or deserialization):
    /// every rate must be at most 1000‰ and every down window non-empty.
    /// Constructor-built plans ([`FaultPlan::lossless`],
    /// [`FaultPlan::lossy`], windows via [`DownWindow::new`]) always pass.
    ///
    /// # Errors
    ///
    /// The first [`FaultPlanError`] found.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for (field, rate) in [
            ("drop_per_mille", self.drop_per_mille),
            ("corrupt_per_mille", self.corrupt_per_mille),
            ("duplicate_per_mille", self.duplicate_per_mille),
        ] {
            if rate > 1000 {
                return Err(FaultPlanError::RateOutOfRange {
                    field,
                    per_mille: rate,
                });
            }
        }
        for w in &self.down_windows {
            if w.end_cycle <= w.start_cycle {
                return Err(FaultPlanError::InvertedWindow {
                    start_cycle: w.start_cycle,
                    end_cycle: w.end_cycle,
                });
            }
        }
        Ok(())
    }

    /// True if the plan can never perturb a frame.
    pub fn is_lossless(&self) -> bool {
        self.drop_per_mille == 0
            && self.corrupt_per_mille == 0
            && self.duplicate_per_mille == 0
            && self.max_jitter_cycles == 0
            && self.down_windows.is_empty()
    }
}

/// What happened to one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// Arrived intact, possibly late and/or twice.
    Delivered {
        /// Jitter added to the delivery, in simulated cycles.
        extra_delay_cycles: u64,
        /// The frame arrived twice.
        duplicated: bool,
    },
    /// Never arrived.
    Dropped,
    /// Arrived with one bit inverted.
    Corrupted {
        /// Bit index (within the frame payload window) that flipped.
        flipped_bit: u32,
        /// Jitter added to the delivery, in simulated cycles.
        extra_delay_cycles: u64,
    },
}

/// Cumulative injector statistics (per link).
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames that crossed (or tried to cross) the link.
    pub frames: u64,
    /// Frames silently lost.
    pub dropped: u64,
    /// Frames delivered with a flipped bit.
    pub corrupted: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Total jitter delay added, in simulated cycles.
    pub jitter_cycles: u64,
    /// Frames lost to down windows (also counted in `dropped`).
    pub down_losses: u64,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Serializable runtime state of a [`FaultInjector`]: the plan (part of the
/// state because plans are installed at runtime), the frame counter the
/// deterministic draws are keyed on, and the cumulative statistics.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct FaultInjectorState {
    plan: FaultPlan,
    frame_index: u64,
    stats: FaultStats,
}

/// Per-link fault state: a frame counter plus the plan.
///
/// Draws are keyed on `(seed, link, frame_index, purpose)` — *not* on a
/// mutable RNG stream — so the fate of frame N is a pure function of the
/// plan and N. Adding retries or reordering upstream never shifts the
/// fault pattern of unrelated frames, which keeps ablation runs (recovery
/// on vs off) facing the identical hostile link.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    link_salt: u64,
    frame_index: u64,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector for one link; the link kind salts the PRNG so
    /// different links see independent fault patterns from one seed.
    pub fn new(kind: InterfaceKind, plan: FaultPlan) -> FaultInjector {
        let link_salt = match kind {
            InterfaceKind::Usb11 => 0x5553_4231,
            InterfaceKind::Jtag => 0x4A54_4147,
            InterfaceKind::Can => 0x4341_4E00,
        };
        FaultInjector {
            plan,
            link_salt,
            frame_index: 0,
            stats: FaultStats::default(),
        }
    }

    /// Rebuilds an injector from saved state (see [`FaultInjectorState`]).
    /// The `kind` must match the link the state was captured on so the PRNG
    /// salt — and therefore the remaining fault pattern — is identical.
    pub fn from_state(kind: InterfaceKind, state: &FaultInjectorState) -> FaultInjector {
        let mut inj = FaultInjector::new(kind, state.plan.clone());
        inj.frame_index = state.frame_index;
        inj.stats = state.stats;
        inj
    }

    /// Captures the injector's runtime state.
    pub fn save_state(&self) -> FaultInjectorState {
        FaultInjectorState {
            plan: self.plan.clone(),
            frame_index: self.frame_index,
            stats: self.stats,
        }
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Cumulative statistics so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// A uniform draw in `[0, 1000)` keyed by the current frame and a
    /// purpose discriminator.
    fn per_mille_draw(&self, purpose: u64) -> u16 {
        let key = self
            .plan
            .seed
            .wrapping_add(self.link_salt.rotate_left(17))
            .wrapping_add(self.frame_index.wrapping_mul(0x2545_F491_4F6C_DD1D))
            .wrapping_add(purpose.wrapping_mul(0x9E37_79B9));
        (splitmix64(key) % 1000) as u16
    }

    fn raw_draw(&self, purpose: u64) -> u64 {
        let key = self
            .plan
            .seed
            .wrapping_add(self.link_salt.rotate_left(17))
            .wrapping_add(self.frame_index.wrapping_mul(0x2545_F491_4F6C_DD1D))
            .wrapping_add(purpose.wrapping_mul(0x9E37_79B9));
        splitmix64(key ^ 0xDEAD_BEEF_CAFE_F00D)
    }

    /// Decides the fate of the next frame sent at `cycle`. Advances the
    /// frame counter.
    pub fn next_frame(&mut self, cycle: u64) -> FrameFate {
        self.stats.frames += 1;
        let in_outage = self.plan.down_windows.iter().any(|w| w.contains(cycle));
        if in_outage {
            self.frame_index += 1;
            self.stats.dropped += 1;
            self.stats.down_losses += 1;
            return FrameFate::Dropped;
        }
        let dropped = self.per_mille_draw(1) < self.plan.drop_per_mille;
        let corrupted = self.per_mille_draw(2) < self.plan.corrupt_per_mille;
        let duplicated = self.per_mille_draw(3) < self.plan.duplicate_per_mille;
        let extra_delay_cycles = if self.plan.max_jitter_cycles > 0 {
            self.raw_draw(4) % (self.plan.max_jitter_cycles as u64 + 1)
        } else {
            0
        };
        let flipped_bit = (self.raw_draw(5) % (64 * 8)) as u32;
        self.frame_index += 1;
        if dropped {
            self.stats.dropped += 1;
            return FrameFate::Dropped;
        }
        self.stats.jitter_cycles += extra_delay_cycles;
        if corrupted {
            self.stats.corrupted += 1;
            return FrameFate::Corrupted {
                flipped_bit,
                extra_delay_cycles,
            };
        }
        if duplicated {
            self.stats.duplicated += 1;
        }
        FrameFate::Delivered {
            extra_delay_cycles,
            duplicated,
        }
    }

    /// Applies frame fates to a bulk payload split into `frame_payload`-byte
    /// frames (the trace-upload path). Dropped frames are cut out of the
    /// stream, corrupted frames get one bit flipped in place, duplicated
    /// frames appear twice. Returns the perturbed payload plus the summed
    /// extra delay in cycles.
    pub fn mangle_payload(
        &mut self,
        payload: &[u8],
        frame_payload: u64,
        cycle: u64,
    ) -> (Vec<u8>, u64) {
        let frame_len = frame_payload.max(1) as usize;
        let mut out = Vec::with_capacity(payload.len());
        let mut total_delay = 0u64;
        for frame in payload.chunks(frame_len) {
            match self.next_frame(cycle) {
                FrameFate::Dropped => {}
                FrameFate::Corrupted {
                    flipped_bit,
                    extra_delay_cycles,
                } => {
                    total_delay += extra_delay_cycles;
                    let mut copy = frame.to_vec();
                    let bit = flipped_bit as usize % (copy.len() * 8);
                    copy[bit / 8] ^= 1 << (bit % 8);
                    out.extend_from_slice(&copy);
                }
                FrameFate::Delivered {
                    extra_delay_cycles,
                    duplicated,
                } => {
                    total_delay += extra_delay_cycles;
                    out.extend_from_slice(frame);
                    if duplicated {
                        out.extend_from_slice(frame);
                    }
                }
            }
        }
        (out, total_delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_fates(seed: u64, per_mille: u16, n: usize) -> Vec<FrameFate> {
        let mut inj = FaultInjector::new(InterfaceKind::Usb11, FaultPlan::lossy(seed, per_mille));
        (0..n).map(|_| inj.next_frame(0)).collect()
    }

    #[test]
    fn same_seed_same_fates() {
        assert_eq!(run_fates(42, 100, 500), run_fates(42, 100, 500));
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(run_fates(42, 100, 500), run_fates(43, 100, 500));
    }

    #[test]
    fn drop_rate_is_close_to_requested() {
        let fates = run_fates(7, 50, 20_000); // 5%
        let dropped = fates
            .iter()
            .filter(|f| matches!(f, FrameFate::Dropped))
            .count();
        let rate = dropped as f64 / fates.len() as f64;
        assert!((0.035..0.065).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn lossless_plan_never_perturbs() {
        let mut inj = FaultInjector::new(InterfaceKind::Jtag, FaultPlan::lossless(9));
        for cycle in 0..1000 {
            assert_eq!(
                inj.next_frame(cycle),
                FrameFate::Delivered {
                    extra_delay_cycles: 0,
                    duplicated: false
                }
            );
        }
        assert_eq!(inj.stats().dropped, 0);
    }

    #[test]
    fn down_window_kills_everything_inside_it() {
        let mut plan = FaultPlan::lossless(1);
        plan.down_windows.push(DownWindow {
            start_cycle: 100,
            end_cycle: 200,
        });
        let mut inj = FaultInjector::new(InterfaceKind::Can, plan);
        assert!(matches!(inj.next_frame(150), FrameFate::Dropped));
        assert!(matches!(inj.next_frame(200), FrameFate::Delivered { .. }));
        assert_eq!(inj.stats().down_losses, 1);
    }

    #[test]
    fn links_see_different_fault_patterns_from_one_seed() {
        let plan = FaultPlan::lossy(11, 200);
        let mut usb = FaultInjector::new(InterfaceKind::Usb11, plan.clone());
        let mut jtag = FaultInjector::new(InterfaceKind::Jtag, plan);
        let usb_fates: Vec<_> = (0..200).map(|_| usb.next_frame(0)).collect();
        let jtag_fates: Vec<_> = (0..200).map(|_| jtag.next_frame(0)).collect();
        assert_ne!(usb_fates, jtag_fates);
    }

    #[test]
    fn mangle_payload_is_deterministic_and_bounded() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let mut a = FaultInjector::new(InterfaceKind::Usb11, FaultPlan::lossy(3, 100));
        let mut b = FaultInjector::new(InterfaceKind::Usb11, FaultPlan::lossy(3, 100));
        let (out_a, delay_a) = a.mangle_payload(&payload, 64, 0);
        let (out_b, delay_b) = b.mangle_payload(&payload, 64, 0);
        assert_eq!(out_a, out_b);
        assert_eq!(delay_a, delay_b);
        // Duplications can only add whole frames; drops remove them.
        assert!(out_a.len() <= payload.len() * 2);
        assert_ne!(out_a, payload, "10% corruption should perturb 4 KiB");
    }

    #[test]
    fn lossy_clamps_rates_to_certain_loss() {
        let plan = FaultPlan::lossy(1, 5000);
        assert_eq!(plan.drop_per_mille, 1000);
        assert_eq!(plan.corrupt_per_mille, 1000);
        assert_eq!(plan.duplicate_per_mille, 250);
        assert!(plan.validate().is_ok());
        // Everything is dropped, nothing silently mis-draws.
        let mut inj = FaultInjector::new(InterfaceKind::Usb11, plan);
        for _ in 0..100 {
            assert_eq!(inj.next_frame(0), FrameFate::Dropped);
        }
    }

    #[test]
    fn down_window_construction_rejects_inverted_ranges() {
        assert!(DownWindow::new(100, 200).is_ok());
        assert_eq!(
            DownWindow::new(200, 200),
            Err(FaultPlanError::InvertedWindow {
                start_cycle: 200,
                end_cycle: 200
            })
        );
        assert!(matches!(
            DownWindow::new(300, 100),
            Err(FaultPlanError::InvertedWindow { .. })
        ));
    }

    #[test]
    fn validate_catches_hand_built_bad_plans() {
        let mut plan = FaultPlan::lossless(3);
        plan.corrupt_per_mille = 1001;
        assert_eq!(
            plan.validate(),
            Err(FaultPlanError::RateOutOfRange {
                field: "corrupt_per_mille",
                per_mille: 1001
            })
        );
        let mut plan = FaultPlan::lossless(3);
        plan.down_windows.push(DownWindow {
            start_cycle: 50,
            end_cycle: 10,
        });
        assert!(matches!(
            plan.validate(),
            Err(FaultPlanError::InvertedWindow { .. })
        ));
        assert!(FaultPlan::lossy(9, 100).validate().is_ok());
    }

    #[test]
    fn retry_does_not_shift_other_frames_fates() {
        // Frame fates are keyed by index: consuming one extra frame (a
        // retry) shifts later indices but frame N's fate in isolation is
        // reproducible by replaying N frames — the property the ablation
        // relies on.
        let mut one = FaultInjector::new(InterfaceKind::Usb11, FaultPlan::lossy(5, 300));
        let first: Vec<_> = (0..50).map(|_| one.next_frame(0)).collect();
        let mut two = FaultInjector::new(InterfaceKind::Usb11, FaultPlan::lossy(5, 300));
        let again: Vec<_> = (0..50).map(|_| two.next_frame(0)).collect();
        assert_eq!(first, again);
    }
}
