//! The debug-service processor (PCP2) model.
//!
//! Section 6: *"The USB 1.1 interface has significant software overhead,
//! but the system is unaffected as an extra PCP2 processor core is
//! integrated to run the supplied driver. The extra processor can also be
//! used for performance monitoring and consistency checking, and provides a
//! new programmable tool not found in previous ICEs."*
//!
//! The model charges per-command driver overhead in simulated cycles
//! (absorbed by the service core, never by the application cores) and
//! implements the two "programmable tool" monitor programs the paper names:
//! a performance monitor and a consistency checker.

use crate::interface::InterfaceKind;
use mcds_soc::bus::AddrRange;
use mcds_soc::event::SocEvent;
use mcds_soc::sink::CycleSink;

/// Driver overhead in service-processor cycles per command, by link.
pub fn command_overhead_cycles(kind: InterfaceKind) -> u64 {
    match kind {
        // USB driver: descriptor parsing, endpoint handling.
        InterfaceKind::Usb11 => 2_000,
        // JTAG is a hardware debug port; negligible software involvement.
        InterfaceKind::Jtag => 50,
        // CAN driver: frame reassembly on the service core.
        InterfaceKind::Can => 3_000,
    }
}

/// A performance-monitor snapshot.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Default, PartialEq, Eq)]
pub struct PerfSnapshot {
    /// Cycles observed.
    pub cycles: u64,
    /// Instructions retired per core.
    pub retired: Vec<u64>,
    /// Completed bus transactions.
    pub bus_xacts: u64,
    /// Bus transactions per 1000 cycles (occupancy proxy).
    pub bus_per_kilocycle: u64,
}

/// The performance-monitor program running on the service core.
#[derive(Debug, Clone, Default)]
pub struct PerfMonitor {
    enabled: bool,
    cycles: u64,
    retired: Vec<u64>,
    bus_xacts: u64,
}

impl PerfMonitor {
    /// Creates a disabled monitor for `cores` cores.
    pub fn new(cores: usize) -> PerfMonitor {
        PerfMonitor {
            enabled: false,
            cycles: 0,
            retired: vec![0; cores],
            bus_xacts: 0,
        }
    }

    /// Starts/stops counting.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// True while counting.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Observes one cycle's events (borrowed; nothing retained).
    pub fn observe(&mut self, _cycle: u64, events: &[SocEvent]) {
        if !self.enabled {
            return;
        }
        self.cycles += 1;
        for e in events {
            match e {
                SocEvent::Retire(r) => {
                    if let Some(n) = self.retired.get_mut(r.core.0 as usize) {
                        *n += 1;
                    }
                }
                SocEvent::Bus(_) => self.bus_xacts += 1,
                _ => {}
            }
        }
    }

    /// Reads the counters.
    pub fn snapshot(&self) -> PerfSnapshot {
        PerfSnapshot {
            cycles: self.cycles,
            retired: self.retired.clone(),
            bus_xacts: self.bus_xacts,
            bus_per_kilocycle: (self.bus_xacts * 1000)
                .checked_div(self.cycles)
                .unwrap_or(0),
        }
    }

    /// Clears the counters.
    pub fn reset(&mut self) {
        let cores = self.retired.len();
        let enabled = self.enabled;
        *self = PerfMonitor::new(cores);
        self.enabled = enabled;
    }
}

impl CycleSink for PerfMonitor {
    fn observe(&mut self, cycle: u64, events: &[SocEvent]) {
        PerfMonitor::observe(self, cycle, events);
    }
}

/// A recorded consistency violation.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Cycle of the offending write.
    pub cycle: u64,
    /// Written address.
    pub addr: u32,
    /// Written value.
    pub value: u32,
}

/// A consistency-checker rule: bus writes inside `range` must carry values
/// in `[min, max]`.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct ConsistencyRule {
    /// Watched address range.
    pub range: AddrRange,
    /// Minimum legal value.
    pub min: u32,
    /// Maximum legal value.
    pub max: u32,
}

/// The consistency-checker program running on the service core.
#[derive(Debug, Clone, Default)]
pub struct ConsistencyChecker {
    rules: Vec<ConsistencyRule>,
    violations: Vec<Violation>,
}

impl ConsistencyChecker {
    /// Creates a checker with no rules.
    pub fn new() -> ConsistencyChecker {
        ConsistencyChecker::default()
    }

    /// Adds a rule; returns its index.
    pub fn add_rule(&mut self, rule: ConsistencyRule) -> usize {
        self.rules.push(rule);
        self.rules.len() - 1
    }

    /// Observes one cycle's bus traffic.
    pub fn observe(&mut self, cycle: u64, events: &[SocEvent]) {
        if self.rules.is_empty() {
            return;
        }
        for e in events {
            if let SocEvent::Bus(x) = e {
                if !x.kind.is_write() {
                    continue;
                }
                for r in &self.rules {
                    if r.range.contains(x.addr) && !(r.min..=r.max).contains(&x.data) {
                        self.violations.push(Violation {
                            cycle,
                            addr: x.addr,
                            value: x.data,
                        });
                    }
                }
            }
        }
    }

    /// Recorded violations.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Clears recorded violations (rules kept).
    pub fn clear(&mut self) {
        self.violations.clear();
    }
}

impl CycleSink for ConsistencyChecker {
    fn observe(&mut self, cycle: u64, events: &[SocEvent]) {
        ConsistencyChecker::observe(self, cycle, events);
    }
}

/// Serializable runtime state of a [`ServiceProcessor`]: both monitor
/// programs (including checker rules, which are installed at runtime) and
/// the command-overhead accounting.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct ServiceState {
    perf_enabled: bool,
    perf_cycles: u64,
    perf_retired: Vec<u64>,
    perf_bus_xacts: u64,
    checker_rules: Vec<ConsistencyRule>,
    checker_violations: Vec<Violation>,
    commands_processed: u64,
    overhead_cycles: u64,
}

/// The PCP2 service processor: command overhead plus monitor programs.
#[derive(Debug)]
pub struct ServiceProcessor {
    perf: PerfMonitor,
    checker: ConsistencyChecker,
    commands_processed: u64,
    overhead_cycles: u64,
}

impl ServiceProcessor {
    /// Creates the service processor for a device with `cores` cores.
    pub fn new(cores: usize) -> ServiceProcessor {
        ServiceProcessor {
            perf: PerfMonitor::new(cores),
            checker: ConsistencyChecker::new(),
            commands_processed: 0,
            overhead_cycles: 0,
        }
    }

    /// The performance monitor.
    pub fn perf(&self) -> &PerfMonitor {
        &self.perf
    }

    /// Mutable access to the performance monitor.
    pub fn perf_mut(&mut self) -> &mut PerfMonitor {
        &mut self.perf
    }

    /// The consistency checker.
    pub fn checker(&self) -> &ConsistencyChecker {
        &self.checker
    }

    /// Mutable access to the consistency checker.
    pub fn checker_mut(&mut self) -> &mut ConsistencyChecker {
        &mut self.checker
    }

    /// Observes one cycle (monitor programs).
    pub fn observe(&mut self, cycle: u64, events: &[SocEvent]) {
        self.perf.observe(cycle, events);
        self.checker.observe(cycle, events);
    }

    /// Accounts one processed command over `kind`; returns its overhead in
    /// cycles.
    pub fn process_command(&mut self, kind: InterfaceKind) -> u64 {
        let overhead = command_overhead_cycles(kind);
        self.commands_processed += 1;
        self.overhead_cycles += overhead;
        overhead
    }

    /// Commands processed so far.
    pub fn commands_processed(&self) -> u64 {
        self.commands_processed
    }

    /// Total driver overhead absorbed by the service core.
    pub fn overhead_cycles(&self) -> u64 {
        self.overhead_cycles
    }

    /// Captures the service processor's runtime state (see
    /// [`ServiceState`]).
    pub fn save_state(&self) -> ServiceState {
        ServiceState {
            perf_enabled: self.perf.enabled,
            perf_cycles: self.perf.cycles,
            perf_retired: self.perf.retired.clone(),
            perf_bus_xacts: self.perf.bus_xacts,
            checker_rules: self.checker.rules.clone(),
            checker_violations: self.checker.violations.clone(),
            commands_processed: self.commands_processed,
            overhead_cycles: self.overhead_cycles,
        }
    }

    /// Restores state captured by [`ServiceProcessor::save_state`] onto a
    /// service processor built for the same core count.
    ///
    /// # Panics
    ///
    /// Panics if the per-core retire-counter count differs.
    pub fn restore_state(&mut self, state: &ServiceState) {
        assert_eq!(
            self.perf.retired.len(),
            state.perf_retired.len(),
            "service-core count mismatch on restore"
        );
        self.perf.enabled = state.perf_enabled;
        self.perf.cycles = state.perf_cycles;
        self.perf.retired = state.perf_retired.clone();
        self.perf.bus_xacts = state.perf_bus_xacts;
        self.checker.rules = state.checker_rules.clone();
        self.checker.violations = state.checker_violations.clone();
        self.commands_processed = state.commands_processed;
        self.overhead_cycles = state.overhead_cycles;
    }
}

impl CycleSink for ServiceProcessor {
    fn observe(&mut self, cycle: u64, events: &[SocEvent]) {
        ServiceProcessor::observe(self, cycle, events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_soc::bus::{BusXact, MasterId, XferKind};
    use mcds_soc::event::{CoreId, RetireEvent};
    use mcds_soc::isa::{Instr, MemWidth};

    fn retire(core: u8) -> SocEvent {
        SocEvent::Retire(RetireEvent {
            core: CoreId(core),
            pc: 0,
            instr: Instr::Nop,
            next_pc: 4,
            taken: None,
            mem: None,
        })
    }

    fn write(addr: u32, data: u32) -> SocEvent {
        SocEvent::Bus(BusXact {
            master: MasterId(0),
            addr,
            width: MemWidth::Word,
            kind: XferKind::Write,
            data,
        })
    }

    #[test]
    fn perf_monitor_counts_when_enabled() {
        let mut p = PerfMonitor::new(2);
        p.observe(0, &[retire(0)]);
        assert_eq!(p.snapshot().retired, vec![0, 0], "disabled: ignores events");
        p.set_enabled(true);
        p.observe(1, &[retire(0), retire(1), write(0x10, 1)]);
        p.observe(2, &[retire(0)]);
        let s = p.snapshot();
        assert_eq!(s.cycles, 2);
        assert_eq!(s.retired, vec![2, 1]);
        assert_eq!(s.bus_xacts, 1);
        assert_eq!(s.bus_per_kilocycle, 500);
        p.reset();
        assert_eq!(p.snapshot().cycles, 0);
        assert!(p.is_enabled(), "reset keeps the enable");
    }

    #[test]
    fn consistency_checker_flags_out_of_range_writes() {
        let mut c = ConsistencyChecker::new();
        c.add_rule(ConsistencyRule {
            range: AddrRange::new(0x1000, 0x100),
            min: 10,
            max: 100,
        });
        c.observe(5, &[write(0x1004, 50)]);
        c.observe(6, &[write(0x1004, 101)]);
        c.observe(7, &[write(0x2000, 999)]); // outside range
        assert_eq!(
            c.violations(),
            &[Violation {
                cycle: 6,
                addr: 0x1004,
                value: 101
            }]
        );
        c.clear();
        assert!(c.violations().is_empty());
    }

    #[test]
    fn command_overhead_ordering() {
        // USB needs the driver; JTAG is nearly free; CAN is the heaviest.
        assert!(
            command_overhead_cycles(InterfaceKind::Jtag)
                < command_overhead_cycles(InterfaceKind::Usb11)
        );
        assert!(
            command_overhead_cycles(InterfaceKind::Usb11)
                < command_overhead_cycles(InterfaceKind::Can)
        );
    }

    #[test]
    fn service_processor_accumulates_stats() {
        let mut s = ServiceProcessor::new(2);
        s.process_command(InterfaceKind::Usb11);
        s.process_command(InterfaceKind::Jtag);
        assert_eq!(s.commands_processed(), 2);
        assert_eq!(s.overhead_cycles(), 2_050);
    }
}
