//! The PSI device model: an SoC, its MCDS block, emulation resources and
//! debug links assembled into one steppable device.
//!
//! Construction variants follow the paper:
//!
//! * [`DeviceVariant::Production`] — the TC1796 production part: MCDS
//!   triggers and the address-mapping block are present, but there is no
//!   emulation RAM, no USB peripheral and no service core; debugging runs
//!   over JTAG and trace has nowhere to be stored.
//! * [`DeviceVariant::EdSideBooster`] — the single-chip TC1796ED
//!   (Figure 3): the production layout as a hard macro plus an emulation
//!   side booster carrying 512 KB of emulation RAM, a USB 1.1 peripheral
//!   and the PCP2 debug-service core.
//! * [`DeviceVariant::EdCarrierChip`] / [`DeviceVariant::EdBoosterChip`] —
//!   the two-chip constructions (Figure 4): functionally identical to the
//!   side booster; the extension chip is reusable across a product range.
//!
//! All variants share the production footprint and, with debug resources
//! idle, identical behaviour — the transparency property experiments F3/F4
//! verify.

use crate::faults::{FaultInjector, FaultInjectorState, FaultPlan, FaultStats, FrameFate};
use crate::interface::{InterfaceKind, InterfaceModel, LinkStats};
use crate::service::{ServiceProcessor, ServiceState};
use crate::trace_sink::{FullPolicy, SinkState, TraceSink};
use mcds::{Mcds, McdsConfig, McdsState, McdsStats};
use mcds_soc::bus::{BusCounters, BusFault, BusRequest, XferKind};
use mcds_soc::cpu::CoreConfig;
use mcds_soc::event::{CoreId, CycleRecord};
use mcds_soc::isa::{MemWidth, Reg};
use mcds_soc::mem::SegmentRole;
use mcds_soc::sink::{Collect, CycleSink, NullSink};
use mcds_soc::soc::{memmap, Soc, SocBuilder, SocState};
use mcds_telemetry::{Subsystem, Telemetry};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// How the development device is constructed.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceVariant {
    /// The production SoC (no emulation resources).
    Production,
    /// Single-chip PSI: emulation side booster at the edge of the SoC macro
    /// (Figure 3).
    EdSideBooster,
    /// Two-chip PSI: carrier chip under the production SoC (Figure 4B).
    EdCarrierChip,
    /// Two-chip PSI: booster chip on top of the production SoC (Figure 4A).
    EdBoosterChip,
    /// Selective PSI integration on the production mask set (Section 8
    /// future work): a small emulation region (64 KB, trace-oriented) on
    /// one side of the SoC, no USB peripheral and no service core — "in
    /// particular for the case when no large calibration overlay memory is
    /// required".
    SelectiveBooster,
}

/// Static facts about a construction variant (the F4/F5 inventory table).
#[derive(serde::Serialize, Debug, Clone, PartialEq, Eq)]
pub struct VariantInfo {
    /// Human-readable name.
    pub name: &'static str,
    /// Dies in the package.
    pub chips: u8,
    /// Same footprint as the production part (always true — the point of
    /// PSI).
    pub footprint_compatible: bool,
    /// Emulation RAM bytes.
    pub emulation_ram_bytes: u32,
    /// USB 1.1 debug link fitted.
    pub has_usb: bool,
    /// PCP2 debug-service core fitted.
    pub has_service_core: bool,
    /// Extra mask sets needed beyond the production device.
    pub extra_mask_sets: u8,
    /// The development-specific silicon is reusable across a product range.
    pub reusable_across_products: bool,
}

impl DeviceVariant {
    /// True for development (ED) variants with emulation resources.
    pub fn has_emulation_resources(self) -> bool {
        self != DeviceVariant::Production
    }

    /// The variant's inventory facts.
    pub fn info(self) -> VariantInfo {
        match self {
            DeviceVariant::Production => VariantInfo {
                name: "TC1796 production",
                chips: 1,
                footprint_compatible: true,
                emulation_ram_bytes: 0,
                has_usb: false,
                has_service_core: false,
                extra_mask_sets: 0,
                reusable_across_products: false,
            },
            DeviceVariant::EdSideBooster => VariantInfo {
                name: "TC1796ED single-chip (emulation side booster)",
                chips: 1,
                footprint_compatible: true,
                emulation_ram_bytes: memmap::EMEM_SIZE,
                has_usb: true,
                has_service_core: true,
                extra_mask_sets: 1,
                reusable_across_products: false,
            },
            DeviceVariant::EdCarrierChip => VariantInfo {
                name: "TC1796ED two-chip (carrier chip)",
                chips: 2,
                footprint_compatible: true,
                emulation_ram_bytes: memmap::EMEM_SIZE,
                has_usb: true,
                has_service_core: true,
                extra_mask_sets: 1,
                reusable_across_products: true,
            },
            DeviceVariant::EdBoosterChip => VariantInfo {
                name: "TC1796ED two-chip (booster chip)",
                chips: 2,
                footprint_compatible: true,
                emulation_ram_bytes: memmap::EMEM_SIZE,
                has_usb: true,
                has_service_core: true,
                extra_mask_sets: 1,
                reusable_across_products: true,
            },
            DeviceVariant::SelectiveBooster => VariantInfo {
                name: "TC1796 selective PSI (single mask set)",
                chips: 1,
                footprint_compatible: true,
                emulation_ram_bytes: 64 * 1024,
                has_usb: false,
                has_service_core: false,
                extra_mask_sets: 0,
                reusable_across_products: false,
            },
        }
    }
}

impl fmt::Display for DeviceVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.info().name)
    }
}

/// A debug command executed over a device interface.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone)]
pub enum DebugOp {
    /// Read `count` words starting at `addr` over the debug bus master.
    ReadWords {
        /// Start address.
        addr: u32,
        /// Number of 32-bit words.
        count: usize,
    },
    /// Write words starting at `addr`.
    WriteWords {
        /// Start address.
        addr: u32,
        /// The words to write.
        data: Vec<u32>,
    },
    /// Halt a core (debug break).
    HaltCore(CoreId),
    /// Resume a halted core.
    ResumeCore(CoreId),
    /// Single-step a halted core by `n` instructions.
    StepCore(CoreId, u64),
    /// Read a general register of a halted core.
    ReadReg(CoreId, Reg),
    /// Write a general register of a halted core.
    WriteReg(CoreId, Reg, u32),
    /// Read the program counter of a halted core.
    ReadPc(CoreId),
    /// Set the program counter of a halted core.
    SetPc(CoreId, u32),
    /// Download the trace memory contents.
    ReadTrace,
    /// Replace the MCDS configuration.
    Reconfigure(Box<McdsConfig>),
    /// Erase and program flash (out-of-band, charged flash timing).
    ProgramFlash {
        /// Absolute flash address.
        addr: u32,
        /// Bytes to program.
        bytes: Vec<u8>,
    },
    /// Query MCDS/sink statistics.
    ReadStats,
}

impl DebugOp {
    /// Approximate request payload size on the wire.
    fn request_bytes(&self) -> usize {
        match self {
            DebugOp::ReadWords { .. }
            | DebugOp::HaltCore(_)
            | DebugOp::ResumeCore(_)
            | DebugOp::StepCore(..)
            | DebugOp::ReadReg(..)
            | DebugOp::ReadPc(_)
            | DebugOp::ReadTrace
            | DebugOp::ReadStats => 8,
            DebugOp::WriteReg(..) | DebugOp::SetPc(..) => 12,
            DebugOp::WriteWords { data, .. } => 8 + data.len() * 4,
            DebugOp::Reconfigure(_) => 256,
            DebugOp::ProgramFlash { bytes, .. } => 8 + bytes.len(),
        }
    }
}

/// A debug command's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DebugResponse {
    /// Command acknowledged.
    Ack,
    /// Words read from memory.
    Words(Vec<u32>),
    /// A register or PC value.
    Value(u32),
    /// The downloaded trace byte stream.
    TraceBytes(Vec<u8>),
    /// MCDS and sink statistics.
    Stats {
        /// MCDS statistics.
        mcds: McdsStats,
        /// Encoded trace bytes stored.
        sink_used: usize,
        /// Trace memory capacity.
        sink_capacity: usize,
    },
}

impl DebugResponse {
    fn response_bytes(&self) -> usize {
        match self {
            DebugResponse::Ack => 4,
            DebugResponse::Words(w) => 4 + w.len() * 4,
            DebugResponse::Value(_) => 8,
            DebugResponse::TraceBytes(b) => 4 + b.len(),
            DebugResponse::Stats { .. } => 40,
        }
    }
}

/// An error from the device model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The variant has no such interface (e.g. USB on a production part).
    InterfaceUnavailable(InterfaceKind),
    /// The operation needs emulation RAM this variant lacks.
    NoEmulationRam,
    /// A bus fault during a debug access.
    Bus(BusFault),
    /// The core did not halt within the supervision timeout.
    CoreUnresponsive(CoreId),
    /// The operation requires the core to be halted.
    CoreNotHalted(CoreId),
    /// No core with this id.
    NoSuchCore(CoreId),
    /// The flash range is invalid.
    BadFlashRange {
        /// Offending address.
        addr: u32,
    },
    /// A command or response frame was lost on the link (injected fault);
    /// the host observes this as a timeout. The operation may or may not
    /// have executed on the device — exactly the ambiguity real debug
    /// tools must resolve with retry and resynchronization.
    LinkTimeout(InterfaceKind),
    /// The debug bus master was never granted the bus. With fixed-priority
    /// arbitration the debug master ranks below every core, so cores that
    /// saturate the bus can starve it indefinitely; rather than livelock,
    /// the access gives up after a bounded number of cycles.
    BusStarved {
        /// Cycles the access waited before giving up.
        waited: u64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InterfaceUnavailable(k) => {
                write!(f, "interface {k} not fitted on this variant")
            }
            DeviceError::NoEmulationRam => write!(f, "no emulation RAM on this variant"),
            DeviceError::Bus(e) => write!(f, "debug bus access failed: {e}"),
            DeviceError::CoreUnresponsive(c) => write!(f, "{c} did not halt in time"),
            DeviceError::CoreNotHalted(c) => write!(f, "{c} must be halted"),
            DeviceError::NoSuchCore(c) => write!(f, "no such core {c}"),
            DeviceError::BadFlashRange { addr } => {
                write!(f, "address {addr:#010x} outside program flash")
            }
            DeviceError::LinkTimeout(k) => {
                write!(f, "{k} link timed out (frame lost or corrupted)")
            }
            DeviceError::BusStarved { waited } => {
                write!(
                    f,
                    "debug bus master starved: no grant within {waited} cycles"
                )
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// How many cycles a debug-master bus access waits for a grant before
/// failing with [`DeviceError::BusStarved`]. Uncontended grants take a few
/// cycles; even heavy multi-master contention resolves within tens. The
/// bound exists because fixed-priority arbitration can starve the debug
/// master forever while every core keeps the bus saturated.
pub const BUS_STARVATION_LIMIT: u64 = 2_000;

impl From<BusFault> for DeviceError {
    fn from(e: BusFault) -> DeviceError {
        DeviceError::Bus(e)
    }
}

/// Flash erase time per 64 KB sector (automotive NOR class).
const FLASH_ERASE_NS_PER_64K: u64 = 600_000_000;

/// Flash program time per byte.
const FLASH_PROGRAM_NS_PER_BYTE: u64 = 3_000;

/// Returns the simulated cycles to erase+program `len` bytes of flash.
pub fn flash_reprogram_cycles(len: usize) -> u64 {
    let sectors = (len as u64).div_ceil(64 * 1024);
    memmap::ns_to_cycles(sectors * FLASH_ERASE_NS_PER_64K + len as u64 * FLASH_PROGRAM_NS_PER_BYTE)
}

/// A serializable device recipe: everything needed to rebuild a device
/// with a structurally identical configuration — the precondition for
/// restoring a [`mcds_psi` snapshot](DeviceState) captured from the
/// original. Remote services (the debug farm) ship this over the wire and
/// persist it next to suspended sessions so revival can reconstruct the
/// exact same hardware.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone)]
pub struct DeviceSpec {
    /// The PSI construction variant.
    pub variant: DeviceVariant,
    /// Per-core reset configuration (at least one).
    pub cores: Vec<CoreConfig>,
    /// MCDS configuration; `None` leaves the block in its default
    /// (trace-idle) configuration.
    pub mcds: Option<McdsConfig>,
    /// Fits the DMA controller.
    pub with_dma: bool,
    /// Overrides flash wait states.
    pub flash_wait_states: Option<u32>,
}

impl DeviceSpec {
    /// A spec for `variant` with `n` default cores.
    pub fn with_cores(variant: DeviceVariant, n: usize) -> DeviceSpec {
        DeviceSpec {
            variant,
            cores: vec![CoreConfig::default(); n.max(1)],
            mcds: None,
            with_dma: false,
            flash_wait_states: None,
        }
    }

    /// Builds the device this spec describes. Two builds of the same spec
    /// are structurally identical, so a snapshot captured from one restores
    /// into the other.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty.
    pub fn build(&self) -> Device {
        let mut builder = DeviceBuilder::new(self.variant);
        for c in &self.cores {
            builder = builder.core(*c);
        }
        if let Some(mcds) = &self.mcds {
            builder = builder.mcds(mcds.clone());
        }
        if self.with_dma {
            builder = builder.with_dma();
        }
        if let Some(ws) = self.flash_wait_states {
            builder = builder.flash_wait_states(ws);
        }
        builder.build()
    }
}

/// Builder for a [`Device`].
pub struct DeviceBuilder {
    variant: DeviceVariant,
    cores: Vec<CoreConfig>,
    mcds: McdsConfig,
    trace_segments: Vec<usize>,
    trace_policy: FullPolicy,
    trace_sync_interval: Option<u64>,
    flash_wait_states: Option<u32>,
    dma: bool,
}

impl DeviceBuilder {
    /// Starts a builder for `variant`.
    pub fn new(variant: DeviceVariant) -> DeviceBuilder {
        DeviceBuilder {
            variant,
            cores: Vec::new(),
            mcds: McdsConfig::default(),
            trace_segments: vec![6, 7],
            trace_policy: FullPolicy::Stop,
            trace_sync_interval: None,
            flash_wait_states: None,
            dma: false,
        }
    }

    /// Fits the DMA controller (an extra bus master).
    pub fn with_dma(mut self) -> DeviceBuilder {
        self.dma = true;
        self
    }

    /// Adds `n` default-configured cores.
    pub fn cores(mut self, n: usize) -> DeviceBuilder {
        for _ in 0..n {
            self.cores.push(CoreConfig::default());
        }
        self
    }

    /// Adds one core with an explicit configuration.
    pub fn core(mut self, config: CoreConfig) -> DeviceBuilder {
        self.cores.push(config);
        self
    }

    /// Sets the MCDS configuration. If `mcds.cores` is empty it is expanded
    /// to default per-core configs at build time.
    pub fn mcds(mut self, config: McdsConfig) -> DeviceBuilder {
        self.mcds = config;
        self
    }

    /// Selects which emulation-RAM segments hold trace (the rest become
    /// calibration overlay). Default: segments 6 and 7 (128 KB — "the trace
    /// features … require just a fraction" of the 512 KB).
    pub fn trace_segments(mut self, segments: Vec<usize>) -> DeviceBuilder {
        self.trace_segments = segments;
        self
    }

    /// Sets the trace-full policy.
    pub fn trace_policy(mut self, policy: FullPolicy) -> DeviceBuilder {
        self.trace_policy = policy;
        self
    }

    /// Emits a stream-level sync record every `interval` trace messages
    /// (absolute timestamp + compression reset), letting host-side decoders
    /// resynchronize after a corrupt region of an uploaded trace. Off by
    /// default — a lossless link does not need the extra bytes.
    pub fn trace_sync_interval(mut self, interval: u64) -> DeviceBuilder {
        self.trace_sync_interval = Some(interval);
        self
    }

    /// Overrides flash wait states.
    pub fn flash_wait_states(mut self, ws: u32) -> DeviceBuilder {
        self.flash_wait_states = Some(ws);
        self
    }

    /// Builds the device.
    ///
    /// # Panics
    ///
    /// Panics if no cores were configured.
    pub fn build(mut self) -> Device {
        assert!(!self.cores.is_empty(), "device needs at least one core");
        let core_count = self.cores.len();
        let mut soc_builder = SocBuilder::new();
        if let Some(ws) = self.flash_wait_states {
            soc_builder = soc_builder.flash_wait_states(ws);
        }
        for c in &self.cores {
            soc_builder = soc_builder.core(*c);
        }
        let info = self.variant.info();
        let segments = (info.emulation_ram_bytes / (64 * 1024)) as usize;
        if segments > 0 {
            soc_builder = soc_builder.with_emulation_ram_segments(segments);
        }
        if self.dma {
            soc_builder = soc_builder.with_dma();
        }
        let mut soc = soc_builder.build();

        let sink = if segments > 0 {
            let emem = soc.mapper_mut().emem_mut().expect("device has emem");
            for s in 0..emem.segment_count() {
                emem.set_segment_role(s, SegmentRole::Overlay);
            }
            // Keep only the trace segments that exist on this variant; a
            // small selective-integration region defaults to its last (or
            // only) segment.
            let mut trace_segments: Vec<usize> = self
                .trace_segments
                .iter()
                .copied()
                .filter(|&s| s < segments)
                .collect();
            if trace_segments.is_empty() {
                trace_segments.push(segments - 1);
            }
            for &s in &trace_segments {
                emem.set_segment_role(s, SegmentRole::Trace);
            }
            TraceSink::new(emem, trace_segments, self.trace_policy)
        } else {
            TraceSink::discarding()
        };
        let sink = match self.trace_sync_interval {
            Some(n) => sink.with_sync_interval(n),
            None => sink,
        };

        if self.mcds.cores.is_empty() {
            self.mcds.cores = vec![Default::default(); core_count];
        }
        let mcds = Mcds::new(self.mcds);

        Device {
            variant: self.variant,
            soc,
            mcds,
            sink,
            jtag: InterfaceModel::jtag(),
            usb: info.has_usb.then(InterfaceModel::usb11),
            can: InterfaceModel::can(),
            service: info
                .has_service_core
                .then(|| ServiceProcessor::new(core_count)),
            trigger_out_log: Vec::new(),
            sink_dropped: 0,
            faults: HashMap::new(),
            telemetry: None,
        }
    }
}

/// A stable per-link code used to key serialized fault-injector state
/// deterministically (`Jtag = 0`, `Usb11 = 1`, `Can = 2`).
fn kind_code(kind: InterfaceKind) -> u8 {
    match kind {
        InterfaceKind::Jtag => 0,
        InterfaceKind::Usb11 => 1,
        InterfaceKind::Can => 2,
    }
}

fn kind_from_code(code: u8) -> InterfaceKind {
    match code {
        0 => InterfaceKind::Jtag,
        1 => InterfaceKind::Usb11,
        2 => InterfaceKind::Can,
        _ => panic!("unknown interface code {code} in saved device state"),
    }
}

/// Serializable runtime state of a whole [`Device`] — everything except the
/// memory contents (flash, SRAM, emulation RAM), which are exposed as raw
/// images by [`mcds_soc::soc::Soc::memory_image`] and snapshotted
/// separately so large memories can be delta-compressed.
///
/// Restoring requires a device built with the identical configuration
/// (variant, cores, MCDS config, trace segments); the restore methods
/// assert structural compatibility.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone)]
pub struct DeviceState {
    soc: SocState,
    mcds: McdsState,
    sink: SinkState,
    jtag: LinkStats,
    usb: Option<LinkStats>,
    can: LinkStats,
    service: Option<ServiceState>,
    trigger_out_log: Vec<(u64, u8)>,
    sink_dropped: u64,
    faults: Vec<(u8, FaultInjectorState)>,
}

/// An attached telemetry handle plus the bus-counter baseline captured at
/// attach time (the reference point for the `mcds_bus_window_*` gauges).
///
/// Deliberately NOT part of [`DeviceState`]: telemetry lives outside the
/// determinism boundary — it is never serialized, hashed, or replayed.
pub(crate) struct DeviceTelemetry {
    pub(crate) handle: Telemetry,
    pub(crate) bus_baseline: BusCounters,
}

/// The assembled device.
pub struct Device {
    variant: DeviceVariant,
    soc: Soc,
    mcds: Mcds,
    sink: TraceSink,
    jtag: InterfaceModel,
    usb: Option<InterfaceModel>,
    can: InterfaceModel,
    service: Option<ServiceProcessor>,
    trigger_out_log: Vec<(u64, u8)>,
    sink_dropped: u64,
    faults: HashMap<InterfaceKind, FaultInjector>,
    pub(crate) telemetry: Option<DeviceTelemetry>,
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Device")
            .field("variant", &self.variant)
            .field("cycle", &self.soc.cycle())
            .finish()
    }
}

impl Device {
    /// The construction variant.
    pub fn variant(&self) -> DeviceVariant {
        self.variant
    }

    /// The underlying SoC (backdoor; no simulated time).
    pub fn soc(&self) -> &Soc {
        &self.soc
    }

    /// Mutable backdoor to the SoC (program loading, sensor stimulus).
    pub fn soc_mut(&mut self) -> &mut Soc {
        &mut self.soc
    }

    /// The MCDS block.
    pub fn mcds(&self) -> &Mcds {
        &self.mcds
    }

    /// Mutable backdoor to the MCDS block (zero-cost reconfiguration for
    /// experiments; hosts should use [`DebugOp::Reconfigure`]).
    pub fn mcds_mut(&mut self) -> &mut Mcds {
        &mut self.mcds
    }

    /// The trace sink.
    pub fn sink(&self) -> &TraceSink {
        &self.sink
    }

    /// Split mutable access to the SoC and the trace sink (so callers can
    /// store residual messages through the same path the hardware uses).
    pub fn soc_sink_mut(&mut self) -> (&mut Soc, &mut TraceSink) {
        (&mut self.soc, &mut self.sink)
    }

    /// The service processor, if fitted.
    pub fn service(&self) -> Option<&ServiceProcessor> {
        self.service.as_ref()
    }

    /// Mutable access to the service processor, if fitted.
    pub fn service_mut(&mut self) -> Option<&mut ServiceProcessor> {
        self.service.as_mut()
    }

    /// An interface's model (statistics, throughput numbers).
    pub fn interface(&self, kind: InterfaceKind) -> Option<&InterfaceModel> {
        match kind {
            InterfaceKind::Jtag => Some(&self.jtag),
            InterfaceKind::Usb11 => self.usb.as_ref(),
            InterfaceKind::Can => Some(&self.can),
        }
    }

    /// Mutable access to an interface's model. External fabrics (the
    /// virtual-vehicle CAN bus) use this to account the frames they carry
    /// on the device's own bus port, so per-device link statistics reflect
    /// vehicle traffic as well as debug traffic.
    ///
    /// The link statistics live inside [`DeviceState`], so fabric-side
    /// accounting participates in snapshot/replay like every other input.
    pub fn interface_mut(&mut self, kind: InterfaceKind) -> Option<&mut InterfaceModel> {
        match kind {
            InterfaceKind::Jtag => Some(&mut self.jtag),
            InterfaceKind::Usb11 => self.usb.as_mut(),
            InterfaceKind::Can => Some(&mut self.can),
        }
    }

    /// Installs a deterministic fault plan on one link, replacing any
    /// prior plan (and resetting its statistics). Until cleared, every
    /// command, response and trace upload crossing that link runs through
    /// the plan's frame-fate draws.
    pub fn set_fault_plan(&mut self, kind: InterfaceKind, plan: FaultPlan) {
        self.faults.insert(kind, FaultInjector::new(kind, plan));
    }

    /// Removes the fault plan from one link, restoring lossless delivery.
    pub fn clear_fault_plan(&mut self, kind: InterfaceKind) {
        self.faults.remove(&kind);
    }

    /// The fault plan active on a link, if any.
    pub fn fault_plan(&self, kind: InterfaceKind) -> Option<&FaultPlan> {
        self.faults.get(&kind).map(|i| i.plan())
    }

    /// Cumulative fault statistics for a link (None if no plan installed).
    pub fn fault_stats(&self, kind: InterfaceKind) -> Option<FaultStats> {
        self.faults.get(&kind).map(|i| i.stats())
    }

    /// Attaches a telemetry bundle. Sampling is strictly observational:
    /// an attached device simulates bit-identically to a detached one (the
    /// suite's determinism test proves it). The bus counters at attach
    /// time become the baseline for the `mcds_bus_window_*` gauges.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(DeviceTelemetry {
            handle: telemetry,
            bus_baseline: self.soc.bus_counters().clone(),
        });
    }

    /// Detaches telemetry; subsequent sampling is skipped entirely.
    pub fn detach_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// The attached telemetry bundle, if any (layers above the device —
    /// the XCP master, host sessions, replay — publish through this).
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref().map(|t| &t.handle)
    }

    /// Messages the sink had to drop (production devices without trace
    /// memory).
    pub fn sink_dropped(&self) -> u64 {
        self.sink_dropped
    }

    /// MCDS trigger-out pin pulses as `(cycle, pin)`.
    pub fn trigger_out_log(&self) -> &[(u64, u8)] {
        &self.trigger_out_log
    }

    /// Captures the device's full runtime state except memory contents
    /// (see [`DeviceState`]).
    pub fn save_state(&self) -> DeviceState {
        let mut faults: Vec<(u8, FaultInjectorState)> = self
            .faults
            .iter()
            .map(|(&kind, inj)| (kind_code(kind), inj.save_state()))
            .collect();
        faults.sort_unstable_by_key(|&(code, _)| code);
        DeviceState {
            soc: self.soc.save_state(),
            mcds: self.mcds.save_state(),
            sink: self.sink.save_state(),
            jtag: self.jtag.save_state(),
            usb: self.usb.as_ref().map(InterfaceModel::save_state),
            can: self.can.save_state(),
            service: self.service.as_ref().map(ServiceProcessor::save_state),
            trigger_out_log: self.trigger_out_log.clone(),
            sink_dropped: self.sink_dropped,
            faults,
        }
    }

    /// Restores state captured by [`Device::save_state`] onto a device
    /// built with the identical configuration. Memory contents are restored
    /// separately via [`mcds_soc::soc::Soc::restore_memory_image`].
    ///
    /// # Panics
    ///
    /// Panics on structural mismatch (core count, fitted USB/service core,
    /// sink capacity, MCDS shape).
    pub fn restore_state(&mut self, state: &DeviceState) {
        self.soc.restore_state(&state.soc);
        self.mcds.restore_state(&state.mcds);
        self.sink.restore_state(&state.sink);
        self.jtag.restore_state(&state.jtag);
        match (self.usb.as_mut(), state.usb.as_ref()) {
            (Some(model), Some(s)) => model.restore_state(s),
            (None, None) => {}
            _ => panic!("USB fitment mismatch on restore"),
        }
        self.can.restore_state(&state.can);
        match (self.service.as_mut(), state.service.as_ref()) {
            (Some(proc), Some(s)) => proc.restore_state(s),
            (None, None) => {}
            _ => panic!("service-core fitment mismatch on restore"),
        }
        self.trigger_out_log = state.trigger_out_log.clone();
        self.sink_dropped = state.sink_dropped;
        self.faults = state
            .faults
            .iter()
            .map(|(code, s)| {
                let kind = kind_from_code(*code);
                (kind, FaultInjector::from_state(kind, s))
            })
            .collect();
    }

    /// Advances the device one SoC cycle on the streaming hot path: steps
    /// the SoC, runs the MCDS and service-core monitors on the borrowed
    /// event slice, pushes the same slice into `sink`, applies
    /// break/suspend outputs and stores trace — all without materialising
    /// a [`CycleRecord`].
    ///
    /// Delivery order within the cycle: MCDS, then service-core monitors,
    /// then `sink` (so a sink observes a cycle only after the device's own
    /// observers have).
    pub fn step_into<S: CycleSink + ?Sized>(&mut self, sink: &mut S) {
        // Split borrow: soc (scratch events), mcds and service are
        // disjoint fields, so the borrowed event slice can feed all
        // observers without a copy.
        let Device {
            soc, mcds, service, ..
        } = self;
        let (cycle, events) = soc.step_events();
        let outputs = mcds.on_cycle(cycle, events);
        if let Some(s) = service.as_mut() {
            s.observe(cycle, events);
        }
        sink.observe(cycle, events);
        for c in outputs.break_cores {
            self.soc.core_mut(c).request_break();
        }
        for c in outputs.suspend_cores {
            self.soc.core_mut(c).set_suspended(true);
        }
        for c in outputs.resume_cores {
            self.soc.core_mut(c).set_suspended(false);
        }
        for pin in outputs.trigger_out_pins {
            self.trigger_out_log.push((cycle, pin));
        }
        let messages = self.mcds.take_messages();
        if !messages.is_empty() {
            let span_t0 = self.telemetry.as_ref().map(|_| Instant::now());
            match self.soc.mapper_mut().emem_mut() {
                Some(_) => {
                    // Split borrow: sink and emem are disjoint fields.
                    let Device { soc, sink, .. } = self;
                    let emem = soc.mapper_mut().emem_mut().expect("checked above");
                    let stored = sink.store(&messages, emem);
                    self.sink_dropped += (messages.len() - stored) as u64;
                }
                None => self.sink_dropped += messages.len() as u64,
            }
            if let (Some(t0), Some(tel)) = (span_t0, self.telemetry.as_ref()) {
                tel.handle.spans().record(
                    Subsystem::TraceEncode,
                    cycle,
                    cycle,
                    t0.elapsed().as_nanos() as u64,
                );
            }
        }
    }

    /// Advances the device one SoC cycle and returns the cycle's observable
    /// events as an owned record (legacy batch wrapper over
    /// [`Device::step_into`]; allocates per cycle).
    pub fn step(&mut self) -> CycleRecord {
        let mut collect = Collect::new();
        self.step_into(&mut collect);
        collect
            .records
            .pop()
            .expect("step_into observes exactly one cycle")
    }

    /// Steps `n` cycles, discarding events (streams into [`NullSink`]; no
    /// per-cycle records are allocated).
    pub fn run_cycles(&mut self, n: u64) {
        // With an idle MCDS and no service processor, every per-cycle
        // device-layer action is provably a no-op for the whole run (the
        // idle flag cannot change inside a stepping loop), so the
        // fast-forward runs at bare-SoC speed.
        if self.mcds.is_idle() && self.service.is_none() {
            self.soc.run_cycles(n);
            return;
        }
        let mut sink = NullSink;
        for _ in 0..n {
            self.step_into(&mut sink);
        }
    }

    /// Steps `n` cycles streaming events into `sink`. Takes the same
    /// bare-SoC fast path as [`Device::run_cycles`] when the MCDS is idle
    /// and no service processor is fitted; the execution kernel then
    /// batches and skips as far as the sink's
    /// [`CycleSink::wants_cycles`] contract allows.
    pub fn run_cycles_into<S: CycleSink + ?Sized>(&mut self, n: u64, sink: &mut S) {
        if self.mcds.is_idle() && self.service.is_none() {
            self.soc.run_cycles_into(n, sink);
            return;
        }
        for _ in 0..n {
            self.step_into(sink);
        }
    }

    /// Steps until all cores halt or `max_cycles` pass, streaming each
    /// cycle's events into `sink`; returns the number of cycles stepped.
    /// Memory use is the sink's choice — long supervised runs should pass
    /// [`NullSink`] or a bounded observer rather than collecting.
    pub fn run_until_halt_into<S: CycleSink + ?Sized>(
        &mut self,
        max_cycles: u64,
        sink: &mut S,
    ) -> u64 {
        // Same provably-no-op argument as `run_cycles`: with an idle MCDS
        // and no service processor the device layer adds nothing per
        // cycle, so the run goes through the SoC execution kernel (which
        // may batch and skip when the sink does not observe every cycle).
        if self.mcds.is_idle() && self.service.is_none() {
            return self.soc.run_until_halt_into(max_cycles, sink);
        }
        for stepped in 0..max_cycles {
            self.step_into(sink);
            if self.soc.cores().all(|c| c.is_halted()) {
                return stepped + 1;
            }
        }
        max_cycles
    }

    /// The SoC execution kernel's mode (see [`mcds_soc::ExecMode`]): a
    /// speed knob for unobserved runs, bit-identical across settings.
    pub fn exec_mode(&self) -> mcds_soc::ExecMode {
        self.soc.exec_mode()
    }

    /// Sets the SoC execution kernel's mode.
    pub fn set_exec_mode(&mut self, mode: mcds_soc::ExecMode) {
        self.soc.set_exec_mode(mode);
    }

    /// Kernel cycle-accounting counters (stepped / skipped / batched).
    pub fn exec_stats(&self) -> &mcds_soc::ExecStats {
        self.soc.exec_stats()
    }

    /// Resets the kernel cycle-accounting counters.
    pub fn reset_exec_stats(&mut self) {
        self.soc.reset_exec_stats()
    }

    /// Steps until all cores halt or `max_cycles` pass; returns the records
    /// (legacy batch wrapper over [`Device::run_until_halt_into`] +
    /// [`Collect`]; memory grows with run length).
    pub fn run_until_halt(&mut self, max_cycles: u64) -> Vec<CycleRecord> {
        let mut collect = Collect::new();
        self.run_until_halt_into(max_cycles, &mut collect);
        collect.into_records()
    }

    /// Lets `cycles` of simulated time pass. If the whole system is
    /// quiescent (all cores halted, debug bus idle) the clock jumps in one
    /// go; otherwise the device steps cycle by cycle so running cores and
    /// the MCDS stay live.
    pub fn wait_cycles(&mut self, cycles: u64) {
        if self.soc.cores().all(|c| c.is_halted()) && !self.soc.debug_busy() {
            self.soc.advance_clock(cycles);
        } else {
            self.run_cycles(cycles);
        }
    }

    /// A debug-master bus access that advances the device until completion.
    ///
    /// # Errors
    ///
    /// Returns the bus fault if the access failed, or
    /// [`DeviceError::BusStarved`] if fixed-priority arbitration never
    /// granted the (lowest-priority) debug master within
    /// [`BUS_STARVATION_LIMIT`] cycles — e.g. while several cores saturate
    /// the bus.
    pub fn bus_access(&mut self, request: BusRequest) -> Result<u32, DeviceError> {
        let start_cycle = self.soc.cycle();
        let span_t0 = self.telemetry.as_ref().map(|_| Instant::now());
        // A previously starved access may leave a completion behind if its
        // transaction was already in flight when we gave up; it belongs to
        // that abandoned request, not this one.
        let _ = self.soc.take_debug_completion();
        self.soc.debug_request(request);
        loop {
            self.step_into(&mut NullSink);
            if let Some(c) = self.soc.take_debug_completion() {
                if let (Some(t0), Some(tel)) = (span_t0, self.telemetry.as_ref()) {
                    tel.handle.spans().record(
                        Subsystem::BusArbitration,
                        start_cycle,
                        self.soc.cycle(),
                        t0.elapsed().as_nanos() as u64,
                    );
                }
                return match c.fault {
                    Some(f) => Err(DeviceError::Bus(f)),
                    None => Ok(c.rdata),
                };
            }
            let waited = self.soc.cycle().saturating_sub(start_cycle);
            if waited >= BUS_STARVATION_LIMIT {
                self.soc.cancel_debug_request();
                return Err(DeviceError::BusStarved { waited });
            }
        }
    }

    /// Debug-master word read (steps the device).
    pub fn bus_read_word(&mut self, addr: u32) -> Result<u32, DeviceError> {
        self.bus_access(BusRequest {
            addr,
            width: MemWidth::Word,
            kind: XferKind::Read,
            wdata: 0,
        })
    }

    /// Debug-master word write (steps the device).
    pub fn bus_write_word(&mut self, addr: u32, value: u32) -> Result<(), DeviceError> {
        self.bus_access(BusRequest {
            addr,
            width: MemWidth::Word,
            kind: XferKind::Write,
            wdata: value,
        })
        .map(|_| ())
    }

    fn check_core(&self, core: CoreId) -> Result<(), DeviceError> {
        if (core.0 as usize) < self.soc.core_count() {
            Ok(())
        } else {
            Err(DeviceError::NoSuchCore(core))
        }
    }

    fn perform(&mut self, op: DebugOp) -> Result<DebugResponse, DeviceError> {
        match op {
            DebugOp::ReadWords { addr, count } => {
                let mut words = Vec::with_capacity(count);
                for i in 0..count {
                    words.push(self.bus_read_word(addr + 4 * i as u32)?);
                }
                Ok(DebugResponse::Words(words))
            }
            DebugOp::WriteWords { addr, data } => {
                for (i, w) in data.iter().enumerate() {
                    self.bus_write_word(addr + 4 * i as u32, *w)?;
                }
                Ok(DebugResponse::Ack)
            }
            DebugOp::HaltCore(core) => {
                self.check_core(core)?;
                self.soc.core_mut(core).request_break();
                // Supervise: a core stuck on a slow bus transaction still
                // reaches its instruction boundary quickly.
                for _ in 0..10_000 {
                    if self.soc.core(core).is_halted() {
                        return Ok(DebugResponse::Ack);
                    }
                    self.step_into(&mut NullSink);
                }
                Err(DeviceError::CoreUnresponsive(core))
            }
            DebugOp::ResumeCore(core) => {
                self.check_core(core)?;
                self.soc.core_mut(core).resume();
                Ok(DebugResponse::Ack)
            }
            DebugOp::StepCore(core, n) => {
                self.check_core(core)?;
                if !self.soc.core(core).is_halted() {
                    return Err(DeviceError::CoreNotHalted(core));
                }
                self.soc.core_mut(core).step_instructions(n);
                for _ in 0..10_000 * n.max(1) {
                    if self.soc.core(core).is_halted() {
                        return Ok(DebugResponse::Ack);
                    }
                    self.step_into(&mut NullSink);
                }
                Err(DeviceError::CoreUnresponsive(core))
            }
            DebugOp::ReadReg(core, r) => {
                self.check_core(core)?;
                if !self.soc.core(core).is_halted() {
                    return Err(DeviceError::CoreNotHalted(core));
                }
                Ok(DebugResponse::Value(self.soc.core(core).reg(r)))
            }
            DebugOp::WriteReg(core, r, v) => {
                self.check_core(core)?;
                if !self.soc.core(core).is_halted() {
                    return Err(DeviceError::CoreNotHalted(core));
                }
                self.soc.core_mut(core).set_reg(r, v);
                Ok(DebugResponse::Ack)
            }
            DebugOp::ReadPc(core) => {
                self.check_core(core)?;
                if !self.soc.core(core).is_halted() {
                    return Err(DeviceError::CoreNotHalted(core));
                }
                Ok(DebugResponse::Value(self.soc.core(core).pc()))
            }
            DebugOp::SetPc(core, pc) => {
                self.check_core(core)?;
                if !self.soc.core(core).is_halted() {
                    return Err(DeviceError::CoreNotHalted(core));
                }
                self.soc.core_mut(core).set_pc(pc);
                Ok(DebugResponse::Ack)
            }
            DebugOp::ReadTrace => {
                let emem = self
                    .soc
                    .mapper()
                    .emem()
                    .ok_or(DeviceError::NoEmulationRam)?;
                Ok(DebugResponse::TraceBytes(self.sink.read_back(emem)))
            }
            DebugOp::Reconfigure(config) => {
                self.mcds.reconfigure(*config);
                Ok(DebugResponse::Ack)
            }
            DebugOp::ProgramFlash { addr, bytes } => {
                let flash_end = memmap::FLASH_BASE + memmap::FLASH_SIZE;
                if addr < memmap::FLASH_BASE
                    || (addr as u64 + bytes.len() as u64) > flash_end as u64
                {
                    return Err(DeviceError::BadFlashRange { addr });
                }
                self.wait_cycles(flash_reprogram_cycles(bytes.len()));
                self.soc
                    .mapper_mut()
                    .flash_mut()
                    .program(addr - memmap::FLASH_BASE, &bytes);
                Ok(DebugResponse::Ack)
            }
            DebugOp::ReadStats => Ok(DebugResponse::Stats {
                mcds: self.mcds.stats(),
                sink_used: self.sink.used(),
                sink_capacity: self.sink.capacity(),
            }),
        }
    }

    /// Executes a debug command over the given link, paying its latency,
    /// transfer time and driver overhead in simulated time while the device
    /// keeps running.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InterfaceUnavailable`] if the variant lacks
    /// the link, [`DeviceError::LinkTimeout`] if an injected fault ate a
    /// command or response frame, or the underlying operation's error.
    pub fn execute(
        &mut self,
        kind: InterfaceKind,
        op: DebugOp,
    ) -> Result<DebugResponse, DeviceError> {
        if self.interface(kind).is_none() {
            return Err(DeviceError::InterfaceUnavailable(kind));
        }
        let span_t0 = self.telemetry.as_ref().map(|_| Instant::now());
        let start = self.soc.cycle();
        let request_bytes = op.request_bytes();
        let overhead = match self.service.as_mut() {
            Some(s) => s.process_command(kind),
            None => crate::service::command_overhead_cycles(InterfaceKind::Jtag),
        };
        let iface = self.interface(kind).expect("checked above");
        let inbound =
            iface.request_latency_cycles() + iface.transfer_cycles(request_bytes) + overhead;
        let frame_payload = iface.frame_payload();
        let request_frames = iface.frames_for(request_bytes.max(1));
        self.wait_cycles(inbound);
        // Command-direction faults: a lost or corrupted command frame means
        // the device never sees a coherent command — the host observes a
        // timeout and the operation does NOT execute.
        self.transmit_frames(kind, request_frames)?;
        let response = self.perform(op)?;
        let iface = self.interface(kind).expect("checked above");
        let response_bytes = response.response_bytes();
        let outbound = iface.transfer_cycles(response_bytes) + iface.response_latency_cycles();
        let response_frames = iface.frames_for(response_bytes.max(1));
        self.wait_cycles(outbound);
        let response = match response {
            // Bulk trace upload: faults perturb the payload itself — dropped
            // frames leave gaps, corrupted frames carry a flipped bit — and
            // the damaged stream is still delivered. Surviving that is the
            // trace decoder's job (sync markers + resync), not the link's.
            DebugResponse::TraceBytes(bytes) => {
                let now = self.soc.cycle();
                match self.faults.get_mut(&kind) {
                    Some(inj) => {
                        let (mangled, delay) = inj.mangle_payload(&bytes, frame_payload, now);
                        self.wait_cycles(delay);
                        DebugResponse::TraceBytes(mangled)
                    }
                    None => DebugResponse::TraceBytes(bytes),
                }
            }
            // Control responses: link CRCs discard damaged frames, so a lost
            // or corrupted response frame is a host-side timeout — but the
            // operation DID execute, so device state (e.g. an auto-increment
            // MTA) has already advanced. Retry layers must handle this.
            other => {
                self.transmit_frames(kind, response_frames)?;
                other
            }
        };
        let busy = self.soc.cycle() - start;
        let payload = request_bytes + response.response_bytes();
        match kind {
            InterfaceKind::Jtag => self.jtag.record_transaction(payload, busy),
            InterfaceKind::Usb11 => {
                if let Some(u) = self.usb.as_mut() {
                    u.record_transaction(payload, busy);
                }
            }
            InterfaceKind::Can => self.can.record_transaction(payload, busy),
        }
        if let (Some(t0), Some(tel)) = (span_t0, self.telemetry.as_ref()) {
            tel.handle.spans().record(
                Subsystem::DebugLink,
                start,
                self.soc.cycle(),
                t0.elapsed().as_nanos() as u64,
            );
            crate::telemetry::debug_xact_histogram(&tel.handle, kind).observe(busy);
        }
        Ok(response)
    }

    /// Runs `frames` control frames through the link's fault injector (if
    /// one is installed), charging any jitter in simulated time. Corrupted
    /// control frames count as lost — the receiver's CRC discards them.
    ///
    /// Transports layered over the device (e.g. the XCP master) call this
    /// so their traffic faces the same hostile link as debug commands.
    ///
    /// # Errors
    ///
    /// [`DeviceError::LinkTimeout`] if any frame was lost.
    pub fn transmit_frames(&mut self, kind: InterfaceKind, frames: u64) -> Result<(), DeviceError> {
        let now = self.soc.cycle();
        let Some(inj) = self.faults.get_mut(&kind) else {
            return Ok(());
        };
        let mut lost = false;
        let mut delay = 0u64;
        for _ in 0..frames {
            match inj.next_frame(now) {
                FrameFate::Dropped => lost = true,
                FrameFate::Corrupted {
                    extra_delay_cycles, ..
                } => {
                    lost = true;
                    delay += extra_delay_cycles;
                }
                FrameFate::Delivered {
                    extra_delay_cycles, ..
                } => delay += extra_delay_cycles,
            }
        }
        self.wait_cycles(delay);
        if lost {
            return Err(DeviceError::LinkTimeout(kind));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds::observer::{CoreTraceConfig, TraceQualifier};
    use mcds_soc::asm::assemble;
    use mcds_soc::event::SocEvent;

    fn blink_program() -> mcds_soc::asm::Program {
        assemble(
            "
            .equ OUT0, 0xF0000100
            .org 0x80000000
            start:
                li r1, 12
                li r2, OUT0
            loop:
                sw r1, 0(r2)
                addi r1, r1, -1
                bne r1, r0, loop
                halt
            ",
        )
        .unwrap()
    }

    fn tracing_mcds(cores: usize) -> McdsConfig {
        McdsConfig {
            cores: (0..cores)
                .map(|_| CoreTraceConfig {
                    program_trace: TraceQualifier::Always,
                    ..Default::default()
                })
                .collect(),
            fifo_depth: 256,
            sink_bandwidth: 4,
            ..Default::default()
        }
    }

    /// Runs the same program on two variants and compares the architectural
    /// event streams (retires and port writes).
    fn run_and_collect(variant: DeviceVariant) -> (Vec<(u64, u32)>, u64) {
        let mut dev = DeviceBuilder::new(variant).cores(1).build();
        dev.soc_mut().load_program(&blink_program());
        let records = dev.run_until_halt(20_000);
        let retires: Vec<(u64, u32)> = records
            .iter()
            .flat_map(|r| {
                r.events.iter().filter_map(move |e| match e {
                    SocEvent::Retire(x) => Some((r.cycle, x.pc)),
                    _ => None,
                })
            })
            .collect();
        (retires, dev.soc().cycle())
    }

    #[test]
    fn production_and_ed_devices_behave_identically() {
        // The PSI transparency claim: "Both versions of the SoC are
        // interchangeable with complete transparency to the application
        // system" (Section 6).
        let (prod, prod_cycles) = run_and_collect(DeviceVariant::Production);
        for variant in [
            DeviceVariant::EdSideBooster,
            DeviceVariant::EdCarrierChip,
            DeviceVariant::EdBoosterChip,
        ] {
            let (ed, ed_cycles) = run_and_collect(variant);
            assert_eq!(prod, ed, "{variant}: cycle-exact identical execution");
            assert_eq!(prod_cycles, ed_cycles);
        }
    }

    #[test]
    fn ed_device_captures_trace_production_does_not() {
        let run = |variant: DeviceVariant| {
            let mut dev = DeviceBuilder::new(variant)
                .cores(1)
                .mcds(tracing_mcds(1))
                .build();
            dev.soc_mut().load_program(&blink_program());
            dev.run_until_halt(20_000);
            let cycle = dev.soc().cycle();
            dev.mcds_mut().flush(cycle);
            let messages = dev.mcds_mut().take_messages();
            // Trace that arrived during the run:
            (
                dev.sink().message_count(),
                dev.sink_dropped(),
                messages.len(),
            )
        };
        let (ed_stored, ed_dropped, _) = run(DeviceVariant::EdSideBooster);
        assert!(ed_stored > 0, "ED device stores trace on package");
        assert_eq!(ed_dropped, 0);
        let (prod_stored, prod_dropped, _) = run(DeviceVariant::Production);
        assert_eq!(prod_stored, 0, "production device has no trace memory");
        assert!(prod_dropped > 0);
    }

    #[test]
    fn trace_roundtrip_through_trace_memory_and_usb() {
        let program = blink_program();
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .mcds(tracing_mcds(1))
            .build();
        dev.soc_mut().load_program(&program);
        dev.run_until_halt(20_000);
        // Flush residual messages into the sink.
        let cycle = dev.soc().cycle();
        dev.mcds_mut().flush(cycle);
        let residual = dev.mcds_mut().take_messages();
        let Device { soc, sink, .. } = &mut dev;
        sink.store(&residual, soc.mapper_mut().emem_mut().unwrap());

        let resp = dev
            .execute(InterfaceKind::Usb11, DebugOp::ReadTrace)
            .expect("trace download over USB");
        let DebugResponse::TraceBytes(bytes) = resp else {
            panic!("expected trace bytes")
        };
        let msgs = mcds_trace::StreamDecoder::new(bytes).collect_all().unwrap();
        let image = mcds_trace::ProgramImage::from(&program);
        let flow = mcds_trace::reconstruct_flow(&image, &msgs).unwrap();
        assert_eq!(
            flow.len(),
            3 + 12 * 3,
            "li + 2-word li + 12 iterations of 3"
        );
    }

    #[test]
    fn usb_unavailable_on_production() {
        let mut dev = DeviceBuilder::new(DeviceVariant::Production)
            .cores(1)
            .build();
        let err = dev
            .execute(InterfaceKind::Usb11, DebugOp::ReadStats)
            .unwrap_err();
        assert_eq!(err, DeviceError::InterfaceUnavailable(InterfaceKind::Usb11));
        // JTAG works everywhere.
        assert!(dev.execute(InterfaceKind::Jtag, DebugOp::ReadStats).is_ok());
    }

    #[test]
    fn jtag_halt_is_orders_of_magnitude_faster_than_usb() {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(2)
            .build();
        dev.soc_mut()
            .load_program(&assemble(".org 0x80000000\nloop: addi r1, r1, 1\nj loop").unwrap());
        dev.run_cycles(100);
        let t0 = dev.soc().cycle();
        dev.execute(InterfaceKind::Jtag, DebugOp::HaltCore(CoreId(0)))
            .unwrap();
        let jtag_cycles = dev.soc().cycle() - t0;
        let t1 = dev.soc().cycle();
        dev.execute(InterfaceKind::Usb11, DebugOp::HaltCore(CoreId(1)))
            .unwrap();
        let usb_cycles = dev.soc().cycle() - t1;
        assert!(
            jtag_cycles * 100 < usb_cycles,
            "JTAG halt ({jtag_cycles} cy) ≫ faster than USB halt ({usb_cycles} cy)"
        );
        assert!(dev.soc().core(CoreId(0)).is_halted());
        assert!(dev.soc().core(CoreId(1)).is_halted());
    }

    #[test]
    fn register_access_requires_halt() {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        dev.soc_mut()
            .load_program(&assemble(".org 0x80000000\nloop: addi r1, r1, 1\nj loop").unwrap());
        dev.run_cycles(50);
        let err = dev
            .execute(
                InterfaceKind::Jtag,
                DebugOp::ReadReg(CoreId(0), Reg::new(1)),
            )
            .unwrap_err();
        assert_eq!(err, DeviceError::CoreNotHalted(CoreId(0)));
        dev.execute(InterfaceKind::Jtag, DebugOp::HaltCore(CoreId(0)))
            .unwrap();
        let DebugResponse::Value(v) = dev
            .execute(
                InterfaceKind::Jtag,
                DebugOp::ReadReg(CoreId(0), Reg::new(1)),
            )
            .unwrap()
        else {
            panic!()
        };
        assert!(v > 0);
    }

    #[test]
    fn memory_ops_roundtrip_over_interface() {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        dev.soc_mut()
            .load_program(&assemble(".org 0x80000000\nhalt").unwrap());
        dev.run_until_halt(1_000);
        dev.execute(
            InterfaceKind::Usb11,
            DebugOp::WriteWords {
                addr: memmap::SRAM_BASE,
                data: vec![1, 2, 3],
            },
        )
        .unwrap();
        let DebugResponse::Words(w) = dev
            .execute(
                InterfaceKind::Usb11,
                DebugOp::ReadWords {
                    addr: memmap::SRAM_BASE,
                    count: 3,
                },
            )
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(w, vec![1, 2, 3]);
    }

    #[test]
    fn flash_reprogramming_charges_time() {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        dev.soc_mut()
            .load_program(&assemble(".org 0x80000000\nhalt").unwrap());
        dev.run_until_halt(1_000);
        let t0 = dev.soc().cycle();
        dev.execute(
            InterfaceKind::Usb11,
            DebugOp::ProgramFlash {
                addr: memmap::FLASH_BASE + 0x10000,
                bytes: vec![0xAB; 1024],
            },
        )
        .unwrap();
        let elapsed = dev.soc().cycle() - t0;
        assert!(
            elapsed >= flash_reprogram_cycles(1024),
            "flash programming time charged ({elapsed})"
        );
        assert_eq!(
            dev.soc().backdoor_read(memmap::FLASH_BASE + 0x10000, 2),
            vec![0xAB, 0xAB]
        );
        // Out-of-range is rejected.
        let err = dev
            .execute(
                InterfaceKind::Usb11,
                DebugOp::ProgramFlash {
                    addr: memmap::FLASH_BASE + memmap::FLASH_SIZE - 4,
                    bytes: vec![0; 8],
                },
            )
            .unwrap_err();
        assert!(matches!(err, DeviceError::BadFlashRange { .. }));
    }

    #[test]
    fn variant_inventory_matches_paper() {
        let prod = DeviceVariant::Production.info();
        assert_eq!(prod.emulation_ram_bytes, 0);
        assert!(!prod.has_usb);
        let ed = DeviceVariant::EdSideBooster.info();
        assert_eq!(ed.emulation_ram_bytes, 512 * 1024, "512 KB, Section 6");
        assert!(ed.has_usb && ed.has_service_core);
        assert_eq!(ed.chips, 1);
        assert!(DeviceVariant::EdCarrierChip.info().reusable_across_products);
        assert!(DeviceVariant::EdBoosterChip.info().chips == 2);
        // Footprint compatibility is universal — the point of PSI.
        for v in [
            DeviceVariant::Production,
            DeviceVariant::EdSideBooster,
            DeviceVariant::EdCarrierChip,
            DeviceVariant::EdBoosterChip,
        ] {
            assert!(v.info().footprint_compatible);
        }
    }

    #[test]
    fn service_monitors_observe_the_run() {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        dev.soc_mut().load_program(&blink_program());
        dev.service_mut().unwrap().perf_mut().set_enabled(true);
        dev.service_mut()
            .unwrap()
            .checker_mut()
            .add_rule(crate::service::ConsistencyRule {
                range: mcds_soc::AddrRange::new(0xF000_0100, 4),
                min: 0,
                max: 5,
            });
        dev.run_until_halt(20_000);
        let snap = dev.service().unwrap().perf().snapshot();
        assert!(snap.retired[0] > 30);
        assert!(snap.bus_xacts > 30);
        // The blink program writes 12..1; values above 5 violate the rule.
        let v = dev.service().unwrap().checker().violations();
        assert_eq!(v.len(), 7, "writes of 12..=6 flagged");
    }
}

#[cfg(test)]
mod selective_tests {
    use super::*;
    use mcds::observer::{CoreTraceConfig, TraceQualifier};
    use mcds_soc::asm::assemble;

    #[test]
    fn selective_booster_has_small_trace_region_and_no_usb() {
        let info = DeviceVariant::SelectiveBooster.info();
        assert_eq!(info.extra_mask_sets, 0, "single mask set is the point");
        assert_eq!(info.emulation_ram_bytes, 64 * 1024);
        assert!(!info.has_usb && !info.has_service_core);

        let config = McdsConfig {
            cores: vec![CoreTraceConfig {
                program_trace: TraceQualifier::Always,
                ..Default::default()
            }],
            fifo_depth: 1024,
            sink_bandwidth: 4,
            ..Default::default()
        };
        let mut dev = DeviceBuilder::new(DeviceVariant::SelectiveBooster)
            .cores(1)
            .mcds(config)
            .build();
        assert_eq!(
            dev.sink().capacity(),
            64 * 1024,
            "the whole region is trace"
        );
        dev.soc_mut().load_program(
            &assemble(".org 0x80000000\nli r1, 30\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt")
                .unwrap(),
        );
        dev.run_until_halt(50_000);
        assert!(dev.sink().message_count() > 0, "trace captured on package");
        // JTAG works; USB does not exist.
        assert!(dev.execute(InterfaceKind::Jtag, DebugOp::ReadTrace).is_ok());
        assert_eq!(
            dev.execute(InterfaceKind::Usb11, DebugOp::ReadStats)
                .unwrap_err(),
            DeviceError::InterfaceUnavailable(InterfaceKind::Usb11)
        );
    }

    #[test]
    fn selective_booster_is_transparent_too() {
        let run = |variant: DeviceVariant| {
            let mut dev = DeviceBuilder::new(variant).cores(1).build();
            dev.soc_mut().load_program(
                &assemble(
                    ".org 0x80000000\nli r1, 50\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt",
                )
                .unwrap(),
            );
            dev.run_until_halt(50_000);
            (dev.soc().cycle(), dev.soc().core(CoreId(0)).retired())
        };
        assert_eq!(
            run(DeviceVariant::Production),
            run(DeviceVariant::SelectiveBooster)
        );
    }
}

#[cfg(test)]
mod interface_stats_tests {
    use super::*;
    use mcds_soc::asm::assemble;

    #[test]
    fn interface_statistics_accumulate_per_link() {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        dev.soc_mut()
            .load_program(&assemble(".org 0x80000000\nhalt").unwrap());
        dev.run_until_halt(100);
        dev.execute(
            InterfaceKind::Jtag,
            DebugOp::ReadWords {
                addr: memmap::SRAM_BASE,
                count: 4,
            },
        )
        .unwrap();
        dev.execute(InterfaceKind::Usb11, DebugOp::ReadStats)
            .unwrap();
        dev.execute(InterfaceKind::Usb11, DebugOp::ReadStats)
            .unwrap();
        let jtag = dev.interface(InterfaceKind::Jtag).unwrap();
        assert_eq!(jtag.transactions(), 1);
        assert!(jtag.payload_bytes() >= 4 * 4);
        assert!(jtag.busy_cycles() > 0);
        let usb = dev.interface(InterfaceKind::Usb11).unwrap();
        assert_eq!(usb.transactions(), 2);
        // The PCP2 processed all three commands.
        assert_eq!(dev.service().unwrap().commands_processed(), 3);
    }
}

#[cfg(test)]
mod fault_injection_tests {
    use super::*;
    use crate::faults::FaultPlan;
    use mcds::observer::{CoreTraceConfig, TraceQualifier};
    use mcds_soc::asm::assemble;

    fn halted_ed_device() -> Device {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        dev.soc_mut()
            .load_program(&assemble(".org 0x80000000\nhalt").unwrap());
        dev.run_until_halt(100);
        dev
    }

    #[test]
    fn lossless_fault_plan_is_transparent() {
        let mut plain = halted_ed_device();
        let mut faulty = halted_ed_device();
        faulty.set_fault_plan(InterfaceKind::Usb11, FaultPlan::lossless(1));
        let a = plain
            .execute(InterfaceKind::Usb11, DebugOp::ReadStats)
            .unwrap();
        let b = faulty
            .execute(InterfaceKind::Usb11, DebugOp::ReadStats)
            .unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(plain.soc().cycle(), faulty.soc().cycle());
        let stats = faulty.fault_stats(InterfaceKind::Usb11).unwrap();
        assert!(stats.frames > 0);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn total_loss_plan_times_out_every_command() {
        let mut dev = halted_ed_device();
        dev.set_fault_plan(InterfaceKind::Usb11, FaultPlan::lossy(7, 1000));
        for _ in 0..5 {
            assert_eq!(
                dev.execute(InterfaceKind::Usb11, DebugOp::ReadStats)
                    .unwrap_err(),
                DeviceError::LinkTimeout(InterfaceKind::Usb11)
            );
        }
        assert!(dev.fault_stats(InterfaceKind::Usb11).unwrap().dropped >= 5);
        // Other links stay lossless.
        assert!(dev.execute(InterfaceKind::Jtag, DebugOp::ReadStats).is_ok());
    }

    #[test]
    fn timeouts_still_charge_simulated_time() {
        let mut dev = halted_ed_device();
        dev.set_fault_plan(InterfaceKind::Usb11, FaultPlan::lossy(7, 1000));
        let before = dev.soc().cycle();
        let _ = dev.execute(InterfaceKind::Usb11, DebugOp::ReadStats);
        assert!(
            dev.soc().cycle() > before,
            "a lost command still burns link latency"
        );
    }

    #[test]
    fn moderate_loss_lets_retries_through() {
        let mut dev = halted_ed_device();
        dev.set_fault_plan(InterfaceKind::Usb11, FaultPlan::lossy(21, 300));
        let mut ok = 0;
        let mut err = 0;
        for _ in 0..40 {
            match dev.execute(InterfaceKind::Usb11, DebugOp::ReadStats) {
                Ok(_) => ok += 1,
                Err(DeviceError::LinkTimeout(_)) => err += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(ok > 0, "30% loss must let some commands through");
        assert!(err > 0, "30% loss must kill some commands");
    }

    #[test]
    fn trace_upload_is_mangled_not_timed_out() {
        let trace_dev = || {
            let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
                .cores(1)
                .mcds(McdsConfig {
                    cores: vec![CoreTraceConfig {
                        program_trace: TraceQualifier::Always,
                        ..Default::default()
                    }],
                    fifo_depth: 256,
                    sink_bandwidth: 4,
                    ..Default::default()
                })
                .build();
            dev.soc_mut().load_program(
                &assemble(
                    ".org 0x80000000\nli r1, 40\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt",
                )
                .unwrap(),
            );
            dev.run_until_halt(50_000);
            dev
        };
        let mut clean = trace_dev();
        let clean_bytes = match clean
            .execute(InterfaceKind::Usb11, DebugOp::ReadTrace)
            .unwrap()
        {
            DebugResponse::TraceBytes(b) => b,
            other => panic!("unexpected response {other:?}"),
        };
        assert!(!clean_bytes.is_empty());
        // A short upload is only a few frames; scan seeds until one both
        // gets the command through and perturbs the payload. Deterministic:
        // the same seed always shows the same behaviour.
        let mut perturbed = false;
        for seed in 0..64 {
            let mut faulty = trace_dev();
            faulty.set_fault_plan(InterfaceKind::Usb11, FaultPlan::lossy(seed, 300));
            match faulty.execute(InterfaceKind::Usb11, DebugOp::ReadTrace) {
                Ok(DebugResponse::TraceBytes(b)) => {
                    assert!(faulty.fault_stats(InterfaceKind::Usb11).unwrap().frames > 0);
                    if b != clean_bytes {
                        perturbed = true;
                        break;
                    }
                }
                Ok(other) => panic!("unexpected response {other:?}"),
                Err(DeviceError::LinkTimeout(_)) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(
            perturbed,
            "30% frame faults must perturb some bulk trace upload"
        );
    }

    #[test]
    fn saturated_dual_core_bus_starves_debug_access_with_typed_error() {
        // Two cores in tight load loops keep the fixed-priority bus granted
        // to cores forever; the debug master must fail bounded, not hang.
        let busy = assemble(
            "
            .org 0x80000000
            loop0:
                lw r1, 0(r2)
                j loop0
            .org 0x80010000
            loop1:
                lw r1, 0(r2)
                j loop1
            ",
        )
        .unwrap();
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(2)
            .build();
        dev.soc_mut().load_program(&busy);
        for c in 0..2 {
            dev.soc_mut()
                .core_mut(mcds_soc::CoreId(c))
                .set_reg(mcds_soc::isa::Reg::new(2), mcds_soc::memmap::SRAM_BASE);
        }
        dev.soc_mut()
            .core_mut(mcds_soc::CoreId(1))
            .set_pc(0x8001_0000);
        dev.run_cycles(100);
        let err = dev
            .bus_read_word(mcds_soc::memmap::SRAM_BASE)
            .expect_err("debug master must starve under dual-core saturation");
        match err {
            DeviceError::BusStarved { waited } => {
                assert!(waited >= BUS_STARVATION_LIMIT);
            }
            other => panic!("expected BusStarved, got {other}"),
        }
        // The device stays usable: halt a core, and the access completes.
        dev.execute(InterfaceKind::Jtag, DebugOp::HaltCore(CoreId(0)))
            .unwrap();
        dev.bus_read_word(mcds_soc::memmap::SRAM_BASE)
            .expect("access completes once a core yields the bus");
    }

    #[test]
    fn fault_plan_accessors_roundtrip() {
        let mut dev = halted_ed_device();
        assert!(dev.fault_plan(InterfaceKind::Can).is_none());
        let plan = FaultPlan::lossy(3, 50);
        dev.set_fault_plan(InterfaceKind::Can, plan.clone());
        assert_eq!(dev.fault_plan(InterfaceKind::Can), Some(&plan));
        dev.clear_fault_plan(InterfaceKind::Can);
        assert!(dev.fault_plan(InterfaceKind::Can).is_none());
        assert!(dev.fault_stats(InterfaceKind::Can).is_none());
    }
}
