#![warn(missing_docs)]

//! # mcds-psi — the Package-Sized In-circuit Emulator
//!
//! The PSI of Mayer et al. (DATE 2005): *"a novel method of including trace
//! buffers, overlay memories, processing resources and communication
//! interfaces without changing device behavior. PSI requires no external
//! emulation box, as the debug host interfaces directly with the SoC using
//! a standard interface."*
//!
//! * [`device`] — the assembled device: production TC1796 vs the TC1796ED
//!   construction variants (single-chip side booster, two-chip carrier /
//!   booster), debug command execution with realistic link timing;
//! * [`interface`] — USB 1.1 / JTAG / CAN latency+bandwidth models
//!   (JTAG ≈ 2 µs, USB ≈ 3 ms, Section 6);
//! * [`faults`] — deterministic, seedable fault injection on those links
//!   (frame drop / corruption / duplication / jitter, outage windows);
//! * [`service`] — the PCP2 debug-service core: driver overhead,
//!   performance monitor, consistency checker;
//! * [`trace_sink`] — trace storage in the 64 KB emulation-RAM segments.
//!
//! ```
//! use mcds_psi::device::{DeviceBuilder, DeviceVariant, DebugOp, DebugResponse};
//! use mcds_psi::interface::InterfaceKind;
//! use mcds_soc::asm::assemble;
//! use mcds_soc::soc::memmap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster).cores(2).build();
//! dev.soc_mut().load_program(&assemble(".org 0x80000000\nli r1, 7\nhalt")?);
//! dev.run_until_halt(10_000);
//! let resp = dev.execute(
//!     InterfaceKind::Jtag,
//!     DebugOp::ReadWords { addr: memmap::SRAM_BASE, count: 1 },
//! )?;
//! assert!(matches!(resp, DebugResponse::Words(_)));
//! # Ok(())
//! # }
//! ```

pub mod device;
pub mod faults;
pub mod interface;
pub mod multichip;
pub mod service;
pub mod telemetry;
pub mod trace_sink;

pub use device::{
    DebugOp, DebugResponse, Device, DeviceBuilder, DeviceError, DeviceSpec, DeviceState,
    DeviceVariant, VariantInfo, BUS_STARVATION_LIMIT,
};
pub use faults::{
    DownWindow, FaultInjector, FaultInjectorState, FaultPlan, FaultPlanError, FaultStats, FrameFate,
};
pub use interface::{InterfaceKind, InterfaceModel, InterfaceModelError, LinkStats};
pub use multichip::{MultiChipBench, TriggerWire};
pub use service::{
    ConsistencyChecker, ConsistencyRule, PerfMonitor, ServiceProcessor, ServiceState,
};
pub use telemetry::link_label;
pub use trace_sink::{FullPolicy, SinkState, TraceSink};
