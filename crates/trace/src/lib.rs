#![warn(missing_docs)]

//! # mcds-trace — trace messages, wire codec and reconstruction
//!
//! The Nexus-class trace layer of the MCDS reproduction (Mayer et al.,
//! DATE 2005): message definitions ([`message`]), the compressed byte-stream
//! format stored in the PSI trace memory ([`wire`]), the program-image view
//! ([`image`]) and host-side program/data flow reconstruction
//! ([`reconstruct`]).
//!
//! ## Example: encode, decode, reconstruct
//!
//! ```
//! use mcds_trace::message::{TimedMessage, TraceMessage, TraceSource};
//! use mcds_trace::wire::{encode_all, StreamDecoder};
//! use mcds_trace::image::ProgramImage;
//! use mcds_trace::reconstruct::reconstruct_flow;
//! use mcds_soc::asm::assemble;
//! use mcds_soc::event::CoreId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(".org 0x1000\nnop\nnop\nhalt")?;
//! let image = ProgramImage::from(&program);
//! let msgs = vec![
//!     TimedMessage {
//!         timestamp: 10,
//!         source: TraceSource::Core(CoreId(0)),
//!         message: TraceMessage::ProgSync { pc: 0x1000 },
//!     },
//!     TimedMessage {
//!         timestamp: 14,
//!         source: TraceSource::Core(CoreId(0)),
//!         message: TraceMessage::FlowFlush { i_cnt: 2, history: Default::default() },
//!     },
//! ];
//! let bytes = encode_all(&msgs);
//! let decoded = StreamDecoder::new(bytes).collect_all()?;
//! let flow = reconstruct_flow(&image, &decoded)?;
//! assert_eq!(flow.iter().map(|e| e.pc).collect::<Vec<_>>(), vec![0x1000, 0x1004]);
//! # Ok(())
//! # }
//! ```

pub mod image;
pub mod message;
pub mod reconstruct;
pub mod wire;

pub use image::ProgramImage;
pub use message::{BranchBits, TimedMessage, TraceMessage, TraceSource};
pub use reconstruct::{
    collect_data_log, reconstruct_flow, reconstruct_flow_lossy, DataRecord, ExecutedInstr,
    FlowReconstructor, LossyFlowReport, ReconstructError,
};
pub use wire::{
    decode_wrapped, encode_all, DecodeStreamError, EncoderState, ResyncReport, StreamDecoder,
    StreamEncoder, SYNC_MAGIC,
};
