//! Host-side reconstruction of program and data flow from trace messages.
//!
//! Given the program image and the (sorted, timestamped) message stream, the
//! reconstructor replays exactly which instruction every core executed —
//! what the paper's developers see in their trace tool. The data log is a
//! direct mapping of data messages.
//!
//! Reconstruction rules per message:
//!
//! * `ProgSync { pc }` — the core's flow is (re-)anchored at `pc`.
//! * `DirectBranch { i_cnt }` — `i_cnt` instructions ran; the last is a
//!   conditional branch that was **taken**; conditional branches inside the
//!   run fell through (per-branch message mode).
//! * `BranchHistory { i_cnt, history }` — `i_cnt` instructions ran;
//!   conditional branches consumed outcome bits oldest-first.
//! * `IndirectBranch { i_cnt, history, target }` — as above, but the last
//!   instruction is an indirect jump landing at `target`.
//! * `FlowFlush { i_cnt, history }` — trailing instructions at a window
//!   close; the last instruction is not a control transfer.
//! * `Overflow` — flow is unreliable; program messages are skipped (and
//!   counted) until the next `ProgSync`.
//!
//! Unconditional direct jumps (`jal`) cost no trace bandwidth: the walker
//! follows them from the image.

use crate::image::ProgramImage;
use crate::message::{BranchBits, TimedMessage, TraceMessage, TraceSource};
use mcds_soc::event::CoreId;
use mcds_soc::isa::{Instr, MemWidth};
use std::collections::HashMap;
use std::fmt;

/// One reconstructed executed instruction.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutedInstr {
    /// The executing core.
    pub core: CoreId,
    /// The instruction's address.
    pub pc: u32,
}

/// One entry of the reconstructed data log.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataRecord {
    /// Cycle timestamp of the access.
    pub timestamp: u64,
    /// Originating source.
    pub source: TraceSource,
    /// Byte address.
    pub addr: u32,
    /// Data value.
    pub value: u32,
    /// Access width.
    pub width: MemWidth,
    /// True for writes.
    pub is_write: bool,
}

/// Error produced during flow reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconstructError {
    /// The image does not cover an address the flow reached.
    MissingImage {
        /// The uncovered address.
        pc: u32,
    },
    /// A word in the image failed to decode.
    BadInstr {
        /// The address of the bad word.
        pc: u32,
    },
    /// A `DirectBranch` run did not end on a conditional branch.
    NotABranch {
        /// Address of the terminal instruction.
        pc: u32,
    },
    /// An `IndirectBranch` run did not end on an indirect jump.
    NotIndirect {
        /// Address of the terminal instruction.
        pc: u32,
    },
    /// A conditional branch had no outcome available (exhausted history in
    /// a history-mode run).
    HistoryExhausted {
        /// Address of the branch.
        pc: u32,
    },
    /// The flow ran into an instruction that never retires (`BRK`/`HALT`)
    /// mid-run — image and trace disagree.
    FlowDiverged {
        /// Address of the impossible instruction.
        pc: u32,
    },
}

impl fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ReconstructError::MissingImage { pc } => {
                write!(f, "program image does not cover {pc:#010x}")
            }
            ReconstructError::BadInstr { pc } => write!(f, "undecodable word at {pc:#010x}"),
            ReconstructError::NotABranch { pc } => {
                write!(f, "direct-branch message ends at non-branch {pc:#010x}")
            }
            ReconstructError::NotIndirect { pc } => {
                write!(f, "indirect-branch message ends at non-indirect {pc:#010x}")
            }
            ReconstructError::HistoryExhausted { pc } => {
                write!(f, "no branch outcome available at {pc:#010x}")
            }
            ReconstructError::FlowDiverged { pc } => {
                write!(f, "flow reached non-retiring instruction at {pc:#010x}")
            }
        }
    }
}

impl std::error::Error for ReconstructError {}

#[derive(Debug, Default)]
struct CoreFlow {
    pc: Option<u32>,
}

enum Terminal {
    TakenDirect,
    Indirect(u32),
    None,
}

/// Reconstructs per-core program flow from a message stream.
#[derive(Debug)]
pub struct FlowReconstructor<'a> {
    image: &'a ProgramImage,
    flows: HashMap<CoreId, CoreFlow>,
    skipped_unsynced: u64,
}

impl<'a> FlowReconstructor<'a> {
    /// Creates a reconstructor over `image`.
    pub fn new(image: &'a ProgramImage) -> FlowReconstructor<'a> {
        FlowReconstructor {
            image,
            flows: HashMap::new(),
            skipped_unsynced: 0,
        }
    }

    /// Number of program messages skipped because the flow was unsynced
    /// (e.g. after an overflow, before the next sync).
    pub fn skipped_unsynced(&self) -> u64 {
        self.skipped_unsynced
    }

    /// Drops `core`'s flow anchor: program messages from it are skipped
    /// (and counted) until its next `ProgSync`, exactly as after a FIFO
    /// overflow. Lossy reconstruction uses this when a trace/image
    /// contradiction reveals that messages were lost.
    pub fn desync(&mut self, core: CoreId) {
        self.flows.entry(core).or_default().pc = None;
    }

    /// The current anchored PC of `core`, if synced.
    pub fn current_pc(&self, core: CoreId) -> Option<u32> {
        self.flows.get(&core).and_then(|f| f.pc)
    }

    /// Feeds one message; returns the instructions it proves were executed.
    ///
    /// Data and watchpoint messages return an empty list.
    ///
    /// # Errors
    ///
    /// Returns a [`ReconstructError`] if the trace contradicts the image.
    pub fn feed(&mut self, m: &TimedMessage) -> Result<Vec<ExecutedInstr>, ReconstructError> {
        let TraceSource::Core(core) = m.source else {
            return Ok(Vec::new());
        };
        let flow = self.flows.entry(core).or_default();
        match m.message {
            TraceMessage::ProgSync { pc } => {
                flow.pc = Some(pc);
                Ok(Vec::new())
            }
            TraceMessage::Overflow { .. } => {
                flow.pc = None;
                Ok(Vec::new())
            }
            TraceMessage::DirectBranch { i_cnt } => {
                self.advance(core, i_cnt, BranchBits::new(), Terminal::TakenDirect)
            }
            TraceMessage::IndirectBranch {
                i_cnt,
                history,
                target,
            } => self.advance(core, i_cnt, history, Terminal::Indirect(target)),
            TraceMessage::BranchHistory { i_cnt, history }
            | TraceMessage::FlowFlush { i_cnt, history } => {
                self.advance(core, i_cnt, history, Terminal::None)
            }
            TraceMessage::DataWrite { .. }
            | TraceMessage::DataRead { .. }
            | TraceMessage::Watchpoint { .. } => Ok(Vec::new()),
        }
    }

    fn advance(
        &mut self,
        core: CoreId,
        i_cnt: u32,
        history: BranchBits,
        terminal: Terminal,
    ) -> Result<Vec<ExecutedInstr>, ReconstructError> {
        let flow = self.flows.entry(core).or_default();
        let Some(mut pc) = flow.pc else {
            self.skipped_unsynced += 1;
            return Ok(Vec::new());
        };
        let mut out = Vec::with_capacity(i_cnt as usize);
        let mut bit = 0u8;
        for k in 0..i_cnt {
            let instr = match self.image.instr_at(pc) {
                None => return Err(ReconstructError::MissingImage { pc }),
                Some(Err(_)) => return Err(ReconstructError::BadInstr { pc }),
                Some(Ok(i)) => i,
            };
            out.push(ExecutedInstr { core, pc });
            let last = k + 1 == i_cnt;
            pc = match instr {
                Instr::Branch { imm, .. } => {
                    let taken = if last && matches!(terminal, Terminal::TakenDirect) {
                        true
                    } else if bit < history.count {
                        let t = history.get(bit);
                        bit += 1;
                        t
                    } else if matches!(terminal, Terminal::TakenDirect | Terminal::None) || !last {
                        // Per-branch message mode: untagged conditionals
                        // fell through.
                        false
                    } else {
                        return Err(ReconstructError::HistoryExhausted { pc });
                    };
                    if taken {
                        pc.wrapping_add((imm as i32 as u32).wrapping_mul(4))
                    } else {
                        pc.wrapping_add(4)
                    }
                }
                Instr::Jal { imm, .. } => pc.wrapping_add((imm as u32).wrapping_mul(4)),
                Instr::Jalr { .. } | Instr::Eret => {
                    if last {
                        match terminal {
                            Terminal::Indirect(target) => target,
                            _ => return Err(ReconstructError::NotIndirect { pc }),
                        }
                    } else {
                        // An indirect jump inside a counted run is
                        // impossible: the observer always closes the run at
                        // an indirect branch.
                        return Err(ReconstructError::FlowDiverged { pc });
                    }
                }
                Instr::Brk | Instr::Halt => return Err(ReconstructError::FlowDiverged { pc }),
                _ => pc.wrapping_add(4),
            };
            if last {
                match terminal {
                    Terminal::TakenDirect => {
                        if !matches!(instr, Instr::Branch { .. }) {
                            return Err(ReconstructError::NotABranch {
                                pc: out[out.len() - 1].pc,
                            });
                        }
                    }
                    Terminal::Indirect(_) => {
                        if !matches!(instr, Instr::Jalr { .. } | Instr::Eret) {
                            return Err(ReconstructError::NotIndirect {
                                pc: out[out.len() - 1].pc,
                            });
                        }
                    }
                    Terminal::None => {}
                }
            }
        }
        self.flows.get_mut(&core).expect("flow exists").pc = Some(pc);
        Ok(out)
    }
}

/// Reconstructs the full per-core flow for a whole message stream.
///
/// # Errors
///
/// Returns the first [`ReconstructError`] encountered.
pub fn reconstruct_flow(
    image: &ProgramImage,
    messages: &[TimedMessage],
) -> Result<Vec<ExecutedInstr>, ReconstructError> {
    let mut r = FlowReconstructor::new(image);
    let mut out = Vec::new();
    for m in messages {
        out.extend(r.feed(m)?);
    }
    Ok(out)
}

/// Accounting of what lossy reconstruction had to give up on.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LossyFlowReport {
    /// Trace/image contradictions converted into desyncs (each one is a
    /// symptom of lost or corrupt messages upstream).
    pub desyncs: u64,
    /// Program messages skipped while a core's flow was unsynced.
    pub skipped_unsynced: u64,
}

/// Reconstructs per-core flow from a stream that may have gaps (dropped
/// frames, skipped corrupt regions, FIFO overflows).
///
/// Where [`reconstruct_flow`] aborts on the first trace/image
/// contradiction, this treats a contradiction the same way the strict path
/// treats an `Overflow` message: the offending core's flow is dropped and
/// re-anchors at its next `ProgSync`. The instructions proven by cleanly
/// decoded runs between gaps are all recovered.
pub fn reconstruct_flow_lossy(
    image: &ProgramImage,
    messages: &[TimedMessage],
) -> (Vec<ExecutedInstr>, LossyFlowReport) {
    let mut r = FlowReconstructor::new(image);
    let mut out = Vec::new();
    let mut report = LossyFlowReport::default();
    for m in messages {
        match r.feed(m) {
            Ok(instrs) => out.extend(instrs),
            Err(_) => {
                if let TraceSource::Core(core) = m.source {
                    r.desync(core);
                }
                report.desyncs += 1;
            }
        }
    }
    report.skipped_unsynced = r.skipped_unsynced();
    (out, report)
}

/// Extracts the data log from a message stream.
pub fn collect_data_log(messages: &[TimedMessage]) -> Vec<DataRecord> {
    messages
        .iter()
        .filter_map(|m| match m.message {
            TraceMessage::DataWrite { addr, value, width } => Some(DataRecord {
                timestamp: m.timestamp,
                source: m.source,
                addr,
                value,
                width,
                is_write: true,
            }),
            TraceMessage::DataRead { addr, value, width } => Some(DataRecord {
                timestamp: m.timestamp,
                source: m.source,
                addr,
                value,
                width,
                is_write: false,
            }),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_soc::asm::assemble;

    fn msg(core: u8, message: TraceMessage) -> TimedMessage {
        TimedMessage {
            timestamp: 0,
            source: TraceSource::Core(CoreId(core)),
            message,
        }
    }

    /// A loop: 3 iterations of (addi, bne-taken), then bne falls through,
    /// then halt.
    fn loop_image() -> ProgramImage {
        let p = assemble(
            "
            .org 0x1000
            start:
                li r1, 3
            loop:
                addi r1, r1, -1
                bne r1, r0, loop
                halt
            ",
        )
        .unwrap();
        ProgramImage::from(&p)
    }

    #[test]
    fn direct_branch_mode_reconstructs_loop() {
        let img = loop_image();
        let mut r = FlowReconstructor::new(&img);
        // sync at start; li retires, then addi+bne (taken) twice, then
        // addi+bne (not taken) + trailing flush.
        assert!(r
            .feed(&msg(0, TraceMessage::ProgSync { pc: 0x1000 }))
            .unwrap()
            .is_empty());
        let a = r
            .feed(&msg(0, TraceMessage::DirectBranch { i_cnt: 3 }))
            .unwrap();
        assert_eq!(
            a.iter().map(|e| e.pc).collect::<Vec<_>>(),
            vec![0x1000, 0x1004, 0x1008],
            "li, addi, bne-taken"
        );
        let b = r
            .feed(&msg(0, TraceMessage::DirectBranch { i_cnt: 2 }))
            .unwrap();
        assert_eq!(
            b.iter().map(|e| e.pc).collect::<Vec<_>>(),
            vec![0x1004, 0x1008]
        );
        // Final iteration: bne falls through; flush covers addi+bne.
        let c = r
            .feed(&msg(
                0,
                TraceMessage::FlowFlush {
                    i_cnt: 2,
                    history: BranchBits::new(),
                },
            ))
            .unwrap();
        assert_eq!(
            c.iter().map(|e| e.pc).collect::<Vec<_>>(),
            vec![0x1004, 0x1008]
        );
        assert_eq!(r.current_pc(CoreId(0)), Some(0x100C), "lands on halt");
    }

    #[test]
    fn history_mode_reconstructs_loop() {
        let img = loop_image();
        let mut r = FlowReconstructor::new(&img);
        r.feed(&msg(0, TraceMessage::ProgSync { pc: 0x1000 }))
            .unwrap();
        let mut h = BranchBits::new();
        h.push(true);
        h.push(true);
        h.push(false);
        // One message covers li + 3×(addi,bne).
        let a = r
            .feed(&msg(
                0,
                TraceMessage::BranchHistory {
                    i_cnt: 7,
                    history: h,
                },
            ))
            .unwrap();
        assert_eq!(
            a.iter().map(|e| e.pc).collect::<Vec<_>>(),
            vec![0x1000, 0x1004, 0x1008, 0x1004, 0x1008, 0x1004, 0x1008]
        );
        assert_eq!(r.current_pc(CoreId(0)), Some(0x100C));
    }

    #[test]
    fn jal_is_followed_without_messages() {
        let p = assemble(
            "
            .org 0x2000
            main:
                nop
                j over
                nop            ; skipped
            over:
                nop
                halt
            ",
        )
        .unwrap();
        let img = ProgramImage::from(&p);
        let mut r = FlowReconstructor::new(&img);
        r.feed(&msg(0, TraceMessage::ProgSync { pc: 0x2000 }))
            .unwrap();
        let a = r
            .feed(&msg(
                0,
                TraceMessage::FlowFlush {
                    i_cnt: 3,
                    history: BranchBits::new(),
                },
            ))
            .unwrap();
        assert_eq!(
            a.iter().map(|e| e.pc).collect::<Vec<_>>(),
            vec![0x2000, 0x2004, 0x200C]
        );
    }

    #[test]
    fn indirect_branch_needs_target_message() {
        let p = assemble(
            "
            .org 0x3000
            main:
                jalr r0, 0(r1)
            elsewhere:
                nop
            ",
        )
        .unwrap();
        let img = ProgramImage::from(&p);
        let mut r = FlowReconstructor::new(&img);
        r.feed(&msg(0, TraceMessage::ProgSync { pc: 0x3000 }))
            .unwrap();
        let a = r
            .feed(&msg(
                0,
                TraceMessage::IndirectBranch {
                    i_cnt: 1,
                    history: BranchBits::new(),
                    target: 0x3004,
                },
            ))
            .unwrap();
        assert_eq!(a[0].pc, 0x3000);
        assert_eq!(r.current_pc(CoreId(0)), Some(0x3004));
    }

    #[test]
    fn overflow_desyncs_until_next_sync() {
        let img = loop_image();
        let mut r = FlowReconstructor::new(&img);
        r.feed(&msg(0, TraceMessage::ProgSync { pc: 0x1000 }))
            .unwrap();
        r.feed(&msg(0, TraceMessage::Overflow { lost: 5 })).unwrap();
        let skipped = r
            .feed(&msg(0, TraceMessage::DirectBranch { i_cnt: 3 }))
            .unwrap();
        assert!(skipped.is_empty());
        assert_eq!(r.skipped_unsynced(), 1);
        r.feed(&msg(0, TraceMessage::ProgSync { pc: 0x1004 }))
            .unwrap();
        let a = r
            .feed(&msg(0, TraceMessage::DirectBranch { i_cnt: 2 }))
            .unwrap();
        assert_eq!(a.len(), 2, "resynced");
    }

    #[test]
    fn trace_image_mismatch_is_detected() {
        let img = loop_image();
        let mut r = FlowReconstructor::new(&img);
        r.feed(&msg(0, TraceMessage::ProgSync { pc: 0x1000 }))
            .unwrap();
        // Claim a taken direct branch after 1 instruction, but 0x1000 is li.
        let e = r
            .feed(&msg(0, TraceMessage::DirectBranch { i_cnt: 1 }))
            .unwrap_err();
        assert_eq!(e, ReconstructError::NotABranch { pc: 0x1000 });

        let mut r = FlowReconstructor::new(&img);
        r.feed(&msg(0, TraceMessage::ProgSync { pc: 0xFFFF_0000 }))
            .unwrap();
        let e = r
            .feed(&msg(0, TraceMessage::DirectBranch { i_cnt: 1 }))
            .unwrap_err();
        assert_eq!(e, ReconstructError::MissingImage { pc: 0xFFFF_0000 });
    }

    #[test]
    fn per_core_flows_are_independent() {
        let img = loop_image();
        let mut r = FlowReconstructor::new(&img);
        r.feed(&msg(0, TraceMessage::ProgSync { pc: 0x1000 }))
            .unwrap();
        r.feed(&msg(1, TraceMessage::ProgSync { pc: 0x1004 }))
            .unwrap();
        let a = r
            .feed(&msg(0, TraceMessage::DirectBranch { i_cnt: 3 }))
            .unwrap();
        let b = r
            .feed(&msg(1, TraceMessage::DirectBranch { i_cnt: 2 }))
            .unwrap();
        assert_eq!(a[0].pc, 0x1000);
        assert_eq!(b[0].pc, 0x1004);
        assert_eq!(a[0].core, CoreId(0));
        assert_eq!(b[0].core, CoreId(1));
    }

    #[test]
    fn lossy_reconstruction_survives_a_gap() {
        let img = loop_image();
        // A stream with a gap: sync, one good run, then a run that
        // contradicts the image (stale messages after lost ones), then a
        // fresh sync and another good run.
        let msgs = vec![
            msg(0, TraceMessage::ProgSync { pc: 0x1000 }),
            msg(0, TraceMessage::DirectBranch { i_cnt: 3 }),
            // Gap: pretend intermediate messages were dropped; this run no
            // longer lines up with the image (ends on addi, not a branch).
            msg(0, TraceMessage::DirectBranch { i_cnt: 1 }),
            msg(0, TraceMessage::ProgSync { pc: 0x1004 }),
            msg(0, TraceMessage::DirectBranch { i_cnt: 2 }),
        ];
        assert!(reconstruct_flow(&img, &msgs).is_err(), "strict path aborts");
        let (instrs, report) = reconstruct_flow_lossy(&img, &msgs);
        assert_eq!(report.desyncs, 1);
        assert_eq!(
            instrs.iter().map(|e| e.pc).collect::<Vec<_>>(),
            vec![0x1000, 0x1004, 0x1008, 0x1004, 0x1008],
            "both clean runs recovered"
        );
    }

    #[test]
    fn lossy_reconstruction_counts_unsynced_skips() {
        let img = loop_image();
        let msgs = vec![
            // No sync yet: skipped.
            msg(0, TraceMessage::DirectBranch { i_cnt: 3 }),
            msg(0, TraceMessage::ProgSync { pc: 0x1000 }),
            msg(0, TraceMessage::DirectBranch { i_cnt: 3 }),
        ];
        let (instrs, report) = reconstruct_flow_lossy(&img, &msgs);
        assert_eq!(instrs.len(), 3);
        assert_eq!(report.desyncs, 0);
        assert_eq!(report.skipped_unsynced, 1);
    }

    #[test]
    fn lossy_matches_strict_on_clean_streams() {
        let img = loop_image();
        let msgs = vec![
            msg(0, TraceMessage::ProgSync { pc: 0x1000 }),
            msg(0, TraceMessage::DirectBranch { i_cnt: 3 }),
            msg(0, TraceMessage::DirectBranch { i_cnt: 2 }),
        ];
        let strict = reconstruct_flow(&img, &msgs).unwrap();
        let (lossy, report) = reconstruct_flow_lossy(&img, &msgs);
        assert_eq!(strict, lossy);
        assert_eq!(report, LossyFlowReport::default());
    }

    #[test]
    fn data_log_collects_reads_and_writes() {
        let msgs = vec![
            TimedMessage {
                timestamp: 5,
                source: TraceSource::Core(CoreId(0)),
                message: TraceMessage::DataWrite {
                    addr: 0x10,
                    value: 1,
                    width: MemWidth::Word,
                },
            },
            TimedMessage {
                timestamp: 9,
                source: TraceSource::Bus,
                message: TraceMessage::DataRead {
                    addr: 0x14,
                    value: 2,
                    width: MemWidth::Byte,
                },
            },
            msg(0, TraceMessage::ProgSync { pc: 0 }),
        ];
        let log = collect_data_log(&msgs);
        assert_eq!(log.len(), 2);
        assert!(log[0].is_write);
        assert_eq!(log[1].source, TraceSource::Bus);
        assert_eq!(log[1].timestamp, 9);
    }
}
