//! The program image used by host-side reconstruction.
//!
//! Program-flow reconstruction needs the executed binary: the trace stream
//! only says *how many* instructions ran and which way conditional branches
//! went; the instructions themselves come from the image the debugger loaded
//! (or read back from flash).

use mcds_soc::asm::Program;
use mcds_soc::isa::{DecodeInstrError, Instr};

/// A read-only view of the loaded program binary.
#[derive(Debug, Clone, Default)]
pub struct ProgramImage {
    chunks: Vec<(u32, Vec<u8>)>,
}

impl ProgramImage {
    /// Creates an empty image.
    pub fn new() -> ProgramImage {
        ProgramImage::default()
    }

    /// Builds an image from raw `(base, bytes)` chunks.
    pub fn from_chunks(chunks: Vec<(u32, Vec<u8>)>) -> ProgramImage {
        ProgramImage { chunks }
    }

    /// Adds a chunk (e.g. a patched region read back from the target).
    /// Later chunks take precedence over earlier ones on overlap.
    pub fn add_chunk(&mut self, base: u32, bytes: Vec<u8>) {
        self.chunks.push((base, bytes));
    }

    /// Reads the little-endian word at `addr`, if covered.
    pub fn word_at(&self, addr: u32) -> Option<u32> {
        for (base, bytes) in self.chunks.iter().rev() {
            if addr >= *base {
                let off = (addr - base) as usize;
                if off + 4 <= bytes.len() {
                    return Some(u32::from_le_bytes([
                        bytes[off],
                        bytes[off + 1],
                        bytes[off + 2],
                        bytes[off + 3],
                    ]));
                }
            }
        }
        None
    }

    /// Decodes the instruction at `addr`.
    ///
    /// Returns `None` if the address is not covered, `Some(Err(_))` if the
    /// word does not decode.
    pub fn instr_at(&self, addr: u32) -> Option<Result<Instr, DecodeInstrError>> {
        self.word_at(addr).map(Instr::decode)
    }

    /// Total bytes covered.
    pub fn byte_len(&self) -> usize {
        self.chunks.iter().map(|(_, b)| b.len()).sum()
    }
}

impl From<&Program> for ProgramImage {
    fn from(p: &Program) -> ProgramImage {
        ProgramImage {
            chunks: p.chunks.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_soc::asm::assemble;

    #[test]
    fn image_from_program_decodes_instructions() {
        let p = assemble(".org 0x100\nnop\nhalt").unwrap();
        let img = ProgramImage::from(&p);
        assert_eq!(img.instr_at(0x100).unwrap().unwrap(), Instr::Nop);
        assert_eq!(img.instr_at(0x104).unwrap().unwrap(), Instr::Halt);
        assert!(img.instr_at(0x200).is_none());
    }

    #[test]
    fn later_chunks_override_earlier() {
        let mut img = ProgramImage::new();
        img.add_chunk(0x100, Instr::Nop.encode().to_le_bytes().to_vec());
        img.add_chunk(0x100, Instr::Halt.encode().to_le_bytes().to_vec());
        assert_eq!(img.instr_at(0x100).unwrap().unwrap(), Instr::Halt);
    }
}
