//! Trace message model.
//!
//! The MCDS emits Nexus-class messages: program-flow messages that let the
//! host reconstruct every executed instruction from the program image plus a
//! compressed event stream, data messages for load/store visibility, and
//! housekeeping messages (watchpoints, overflow). Every message carries a
//! cycle timestamp — Section 4: *"Scalable time stamping … ensures that all
//! messages are stored in correct temporal order. The time stamping allows a
//! time resolution down to cycle level."*

use mcds_soc::event::CoreId;
use mcds_soc::isa::MemWidth;
use std::fmt;

/// Where a trace message originated.
#[derive(
    serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub enum TraceSource {
    /// A processor core's adaptation logic.
    Core(CoreId),
    /// The multi-master bus tap.
    Bus,
}

impl TraceSource {
    /// Packs the source into a 4-bit code (cores 0–14, bus = 15).
    pub fn code(self) -> u8 {
        match self {
            TraceSource::Core(c) => {
                debug_assert!(c.0 < 15, "core id fits 4-bit source code");
                c.0
            }
            TraceSource::Bus => 15,
        }
    }

    /// Unpacks a 4-bit source code.
    pub fn from_code(code: u8) -> TraceSource {
        if code == 15 {
            TraceSource::Bus
        } else {
            TraceSource::Core(CoreId(code))
        }
    }
}

impl fmt::Display for TraceSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceSource::Core(c) => write!(f, "{c}"),
            TraceSource::Bus => write!(f, "bus"),
        }
    }
}

/// A branch-history word: up to 32 conditional-branch outcomes, oldest in
/// bit 0.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BranchBits {
    /// Outcome bits (1 = taken), oldest at bit 0.
    pub bits: u32,
    /// Number of valid bits (0–32).
    pub count: u8,
}

impl BranchBits {
    /// An empty history.
    pub fn new() -> BranchBits {
        BranchBits::default()
    }

    /// Appends an outcome.
    ///
    /// # Panics
    ///
    /// Panics if the history is already full (32 bits).
    pub fn push(&mut self, taken: bool) {
        assert!(self.count < 32, "branch history full");
        if taken {
            self.bits |= 1 << self.count;
        }
        self.count += 1;
    }

    /// True when 32 outcomes are stored.
    pub fn is_full(&self) -> bool {
        self.count == 32
    }

    /// True when no outcomes are stored.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Outcome of the `i`-th (oldest-first) recorded branch.
    ///
    /// # Panics
    ///
    /// Panics if `i >= count`.
    pub fn get(&self, i: u8) -> bool {
        assert!(i < self.count);
        self.bits & (1 << i) != 0
    }
}

/// A trace message payload.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMessage {
    /// Full program-counter synchronisation: the next counted instruction
    /// executes at `pc`. Emitted at trace start, after overflow, and
    /// periodically.
    ProgSync {
        /// Address of the next instruction.
        pc: u32,
    },
    /// `i_cnt` instructions retired since the last program message; the last
    /// one is a *taken* conditional branch (per-branch message mode).
    DirectBranch {
        /// Instructions since the last program message (≥ 1).
        i_cnt: u32,
    },
    /// `i_cnt` instructions retired; the last is an indirect branch landing
    /// at `target`. Carries any pending conditional-branch history.
    IndirectBranch {
        /// Instructions since the last program message (≥ 1).
        i_cnt: u32,
        /// Branch-history bits for conditional branches inside the run.
        history: BranchBits,
        /// The indirect branch target (absolute; compressed on the wire).
        target: u32,
    },
    /// `i_cnt` instructions retired; conditional-branch outcomes inside the
    /// run are in `history` (branch-history compression mode).
    BranchHistory {
        /// Instructions since the last program message (≥ 1).
        i_cnt: u32,
        /// Outcomes, oldest first.
        history: BranchBits,
    },
    /// `i_cnt` trailing instructions with outcomes in `history`, ending at
    /// an arbitrary (non-branch) instruction. Emitted when trace is stopped
    /// or qualification closes a window.
    FlowFlush {
        /// Instructions since the last program message (may be 0 if only
        /// history bits are pending).
        i_cnt: u32,
        /// Outcomes, oldest first.
        history: BranchBits,
    },
    /// A data store became visible.
    DataWrite {
        /// Byte address (compressed on the wire).
        addr: u32,
        /// Stored value.
        value: u32,
        /// Access width.
        width: MemWidth,
    },
    /// A data load became visible.
    DataRead {
        /// Byte address (compressed on the wire).
        addr: u32,
        /// Loaded value.
        value: u32,
        /// Access width.
        width: MemWidth,
    },
    /// A trigger/watchpoint fired.
    Watchpoint {
        /// Watchpoint (trigger line) id.
        id: u8,
    },
    /// The source FIFO overflowed and `lost` messages were dropped. Program
    /// flow is unreliable until the next [`TraceMessage::ProgSync`].
    Overflow {
        /// Number of messages dropped.
        lost: u32,
    },
}

impl TraceMessage {
    /// The 4-bit wire type code.
    pub fn type_code(&self) -> u8 {
        match self {
            TraceMessage::ProgSync { .. } => 0,
            TraceMessage::DirectBranch { .. } => 1,
            TraceMessage::IndirectBranch { .. } => 2,
            TraceMessage::BranchHistory { .. } => 3,
            TraceMessage::FlowFlush { .. } => 4,
            TraceMessage::DataWrite { .. } => 5,
            TraceMessage::DataRead { .. } => 6,
            TraceMessage::Watchpoint { .. } => 7,
            TraceMessage::Overflow { .. } => 8,
        }
    }

    /// True for program-flow messages (those that advance reconstruction).
    pub fn is_program(&self) -> bool {
        matches!(
            self,
            TraceMessage::ProgSync { .. }
                | TraceMessage::DirectBranch { .. }
                | TraceMessage::IndirectBranch { .. }
                | TraceMessage::BranchHistory { .. }
                | TraceMessage::FlowFlush { .. }
        )
    }

    /// True for data-trace messages.
    pub fn is_data(&self) -> bool {
        matches!(
            self,
            TraceMessage::DataWrite { .. } | TraceMessage::DataRead { .. }
        )
    }
}

/// A trace message with its origin and cycle timestamp.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedMessage {
    /// SoC cycle the event occurred on.
    pub timestamp: u64,
    /// Originating source.
    pub source: TraceSource,
    /// Payload.
    pub message: TraceMessage,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_code_roundtrip() {
        for i in 0..15 {
            let s = TraceSource::Core(CoreId(i));
            assert_eq!(TraceSource::from_code(s.code()), s);
        }
        assert_eq!(
            TraceSource::from_code(TraceSource::Bus.code()),
            TraceSource::Bus
        );
    }

    #[test]
    fn branch_bits_push_and_get() {
        let mut b = BranchBits::new();
        assert!(b.is_empty());
        b.push(true);
        b.push(false);
        b.push(true);
        assert_eq!(b.count, 3);
        assert!(b.get(0));
        assert!(!b.get(1));
        assert!(b.get(2));
        assert!(!b.is_full());
        for _ in 3..32 {
            b.push(false);
        }
        assert!(b.is_full());
    }

    #[test]
    #[should_panic(expected = "branch history full")]
    fn branch_bits_overflow_panics() {
        let mut b = BranchBits::new();
        for _ in 0..33 {
            b.push(true);
        }
    }

    #[test]
    fn type_codes_are_distinct() {
        let msgs = [
            TraceMessage::ProgSync { pc: 0 },
            TraceMessage::DirectBranch { i_cnt: 1 },
            TraceMessage::IndirectBranch {
                i_cnt: 1,
                history: BranchBits::new(),
                target: 0,
            },
            TraceMessage::BranchHistory {
                i_cnt: 1,
                history: BranchBits::new(),
            },
            TraceMessage::FlowFlush {
                i_cnt: 0,
                history: BranchBits::new(),
            },
            TraceMessage::DataWrite {
                addr: 0,
                value: 0,
                width: MemWidth::Word,
            },
            TraceMessage::DataRead {
                addr: 0,
                value: 0,
                width: MemWidth::Word,
            },
            TraceMessage::Watchpoint { id: 0 },
            TraceMessage::Overflow { lost: 0 },
        ];
        let mut codes: Vec<u8> = msgs.iter().map(|m| m.type_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), msgs.len());
    }
}
