//! The wire format: how trace messages are packed into the on-chip trace
//! memory.
//!
//! Compression techniques (per-source state, mirrored by the decoder):
//!
//! * **Timestamp deltas** — timestamps are non-decreasing after the message
//!   sorter, so each message stores a varint delta.
//! * **Address XOR** — indirect-branch targets and data addresses are XORed
//!   with the previous value from the same source, then varint-encoded; in
//!   loops the delta is tiny.
//! * **Varints** — LEB128 for every multi-byte field, so small `i_cnt`s and
//!   values cost one byte.
//!
//! The encoding is byte-aligned (a simplification of Nexus MDO/MSEO
//! framing); compression-ratio experiments measure encoded bytes against
//! the raw uncompressed event stream.
//!
//! A [`TraceMessage::ProgSync`] also resets its source's address-XOR state
//! (like a Nexus full-sync): a decoder that joins the stream mid-way — the
//! wrapped flight-recorder window of [`decode_wrapped`] — is fully exact
//! from each source's first sync onwards.
//!
//! ## Stream-level sync records
//!
//! When the encoder is built with [`StreamEncoder::with_sync_interval`], it
//! interleaves *sync records* every N messages: the magic bytes
//! [`SYNC_MAGIC`] followed by a varint **absolute** timestamp. A sync
//! record resets the timestamp context and *every* source's address-XOR
//! state, so a decoder joining (or re-joining) the stream at a sync record
//! is byte-exact from there on — absolute time included. The magic's
//! leading byte `0xFF` can never open a valid message (type nibble `0xF` is
//! unassigned), so a header can never be mistaken for a sync record.
//! [`StreamDecoder::resync`] scans forward for the magic after corruption,
//! and [`StreamDecoder::collect_resilient`] drives decode/resync
//! end-to-end, reporting every gap it skipped. Program flow re-anchors at
//! the first genuine [`TraceMessage::ProgSync`] after the gap (the MCDS
//! observer emits one every `sync_period` program messages).
//!
//! One caveat: varint *payload* bytes can legitimately contain `0xFF`, so
//! in a damaged stream a payload position can masquerade as the magic.
//! Intact streams are unaffected (the sequential decoder only interprets
//! the magic at message boundaries), and recovery is always exact from the
//! first genuine sync record after the damage; a false match can only cost
//! part of the single inter-record segment it lies in.

use crate::message::{BranchBits, TimedMessage, TraceMessage, TraceSource};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mcds_soc::isa::MemWidth;
use std::collections::HashMap;
use std::fmt;

/// Error produced when decoding a trace byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeStreamError {
    /// The stream ended in the middle of a message.
    Truncated,
    /// An unassigned message type code.
    BadType {
        /// The offending code.
        code: u8,
    },
    /// An invalid width code in a data message.
    BadWidth {
        /// The offending code.
        code: u8,
    },
    /// A varint longer than 10 bytes.
    BadVarint,
    /// A branch-history count above 32 bits.
    BadHistory {
        /// The offending count.
        count: u8,
    },
}

impl fmt::Display for DecodeStreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeStreamError::Truncated => write!(f, "trace stream truncated mid-message"),
            DecodeStreamError::BadType { code } => write!(f, "unknown message type code {code}"),
            DecodeStreamError::BadWidth { code } => write!(f, "unknown width code {code}"),
            DecodeStreamError::BadVarint => write!(f, "malformed varint"),
            DecodeStreamError::BadHistory { count } => {
                write!(f, "branch-history count {count} exceeds 32")
            }
        }
    }
}

impl std::error::Error for DecodeStreamError {}

/// Magic prefix of a stream-level sync record.
///
/// The leading `0xFF` is unambiguous at a message boundary: a valid header
/// never carries the unassigned type nibble `0xF`. The second byte guards
/// the mid-stream scan of [`StreamDecoder::resync`] against stray `0xFF`
/// payload bytes.
pub const SYNC_MAGIC: [u8; 2] = [0xFF, 0xA5];

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, DecodeStreamError> {
    let mut v = 0u64;
    for shift in (0..70).step_by(7) {
        if !buf.has_remaining() {
            return Err(DecodeStreamError::Truncated);
        }
        let byte = buf.get_u8();
        if shift == 63 && byte > 1 {
            return Err(DecodeStreamError::BadVarint);
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(DecodeStreamError::BadVarint)
}

fn width_code(w: MemWidth) -> u8 {
    match w {
        MemWidth::Byte => 0,
        MemWidth::Half => 1,
        MemWidth::Word => 2,
    }
}

fn width_from_code(c: u8) -> Result<MemWidth, DecodeStreamError> {
    match c {
        0 => Ok(MemWidth::Byte),
        1 => Ok(MemWidth::Half),
        2 => Ok(MemWidth::Word),
        code => Err(DecodeStreamError::BadWidth { code }),
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct SourceState {
    last_indirect_target: u32,
    last_data_addr: u32,
}

/// Serializable runtime state of a [`StreamEncoder`]: the bytes produced so
/// far, the timestamp context and the per-source compression state (stored
/// as a vector sorted by source code so serialization is deterministic).
/// The sync-record interval is configuration and is *not* included.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct EncoderState {
    bytes: Vec<u8>,
    last_timestamp: u64,
    source_state: Vec<(u8, u32, u32)>,
    messages: u64,
    sync_records: u64,
}

/// Encodes [`TimedMessage`]s into the byte stream stored in trace memory.
///
/// Messages must be fed in non-decreasing timestamp order (the message
/// sorter guarantees this on chip).
#[derive(Debug, Default)]
pub struct StreamEncoder {
    buf: BytesMut,
    last_timestamp: u64,
    state: HashMap<u8, SourceState>,
    messages: u64,
    sync_interval: Option<u64>,
    sync_records: u64,
}

impl StreamEncoder {
    /// Creates an empty encoder. No stream-level sync records are emitted;
    /// use [`StreamEncoder::with_sync_interval`] for a resynchronizable
    /// stream.
    pub fn new() -> StreamEncoder {
        StreamEncoder::default()
    }

    /// Creates an encoder that emits a stream-level sync record
    /// ([`SYNC_MAGIC`] + varint absolute timestamp, resetting the timestamp
    /// context and all per-source compression state) before the first
    /// message and then before every `interval`-th message.
    ///
    /// Smaller intervals cost a few bytes per record but bound how much
    /// trace a corrupt byte can destroy: a decoder re-joins exactly at the
    /// next record.
    pub fn with_sync_interval(interval: u64) -> StreamEncoder {
        StreamEncoder {
            sync_interval: Some(interval.max(1)),
            ..StreamEncoder::default()
        }
    }

    /// The configured sync-record interval, if any.
    pub fn sync_interval(&self) -> Option<u64> {
        self.sync_interval
    }

    /// Number of stream-level sync records emitted so far.
    pub fn sync_record_count(&self) -> u64 {
        self.sync_records
    }

    /// Number of messages encoded so far.
    pub fn message_count(&self) -> u64 {
        self.messages
    }

    /// Number of bytes produced so far.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Encodes one message.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `m.timestamp` is older than the previous
    /// message (the sorter must deliver in order).
    pub fn push(&mut self, m: &TimedMessage) {
        debug_assert!(
            m.timestamp >= self.last_timestamp,
            "messages must arrive in timestamp order"
        );
        if let Some(n) = self.sync_interval {
            if self.messages.is_multiple_of(n) {
                self.emit_sync_record(m.timestamp);
            }
        }
        let delta = m.timestamp.saturating_sub(self.last_timestamp);
        self.last_timestamp = m.timestamp;
        let src = m.source.code();
        let state = self.state.entry(src).or_default();
        self.buf.put_u8((src << 4) | m.message.type_code());
        put_varint(&mut self.buf, delta);
        match m.message {
            TraceMessage::ProgSync { pc } => {
                // Full sync: reset this source's compression state so
                // decoders can join the stream here.
                *state = SourceState::default();
                put_varint(&mut self.buf, pc as u64)
            }
            TraceMessage::DirectBranch { i_cnt } => put_varint(&mut self.buf, i_cnt as u64),
            TraceMessage::IndirectBranch {
                i_cnt,
                history,
                target,
            } => {
                put_varint(&mut self.buf, i_cnt as u64);
                self.buf.put_u8(history.count);
                if history.count > 0 {
                    put_varint(&mut self.buf, history.bits as u64);
                }
                let xored = target ^ state.last_indirect_target;
                state.last_indirect_target = target;
                put_varint(&mut self.buf, xored as u64);
            }
            TraceMessage::BranchHistory { i_cnt, history }
            | TraceMessage::FlowFlush { i_cnt, history } => {
                put_varint(&mut self.buf, i_cnt as u64);
                self.buf.put_u8(history.count);
                if history.count > 0 {
                    put_varint(&mut self.buf, history.bits as u64);
                }
            }
            TraceMessage::DataWrite { addr, value, width }
            | TraceMessage::DataRead { addr, value, width } => {
                let xored = addr ^ state.last_data_addr;
                state.last_data_addr = addr;
                self.buf.put_u8(width_code(width));
                put_varint(&mut self.buf, xored as u64);
                put_varint(&mut self.buf, value as u64);
            }
            TraceMessage::Watchpoint { id } => self.buf.put_u8(id),
            TraceMessage::Overflow { lost } => put_varint(&mut self.buf, lost as u64),
        }
        self.messages += 1;
    }

    /// Writes a sync record: magic + absolute timestamp, and resets the
    /// whole compression context so a decoder can join here byte-exactly.
    fn emit_sync_record(&mut self, timestamp: u64) {
        self.buf.put_slice(&SYNC_MAGIC);
        put_varint(&mut self.buf, timestamp);
        self.last_timestamp = timestamp;
        self.state.clear();
        self.sync_records += 1;
    }

    /// Finishes encoding and returns the byte stream.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Borrows the bytes produced so far without consuming the encoder.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Captures the encoder's runtime state (see [`EncoderState`]).
    pub fn save_state(&self) -> EncoderState {
        let mut source_state: Vec<(u8, u32, u32)> = self
            .state
            .iter()
            .map(|(&src, s)| (src, s.last_indirect_target, s.last_data_addr))
            .collect();
        source_state.sort_unstable_by_key(|&(src, _, _)| src);
        EncoderState {
            bytes: self.buf.to_vec(),
            last_timestamp: self.last_timestamp,
            source_state,
            messages: self.messages,
            sync_records: self.sync_records,
        }
    }

    /// Restores state captured by [`StreamEncoder::save_state`]. The
    /// configured sync-record interval is kept as-is.
    pub fn restore_state(&mut self, state: &EncoderState) {
        self.buf = BytesMut::new();
        self.buf.put_slice(&state.bytes);
        self.last_timestamp = state.last_timestamp;
        self.state = state
            .source_state
            .iter()
            .map(|&(src, target, addr)| {
                (
                    src,
                    SourceState {
                        last_indirect_target: target,
                        last_data_addr: addr,
                    },
                )
            })
            .collect();
        self.messages = state.messages;
        self.sync_records = state.sync_records;
    }
}

/// Accounting of what [`StreamDecoder::collect_resilient`] had to skip.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResyncReport {
    /// Number of corrupt regions skipped (each ended at a sync record).
    pub gaps: u64,
    /// Total bytes discarded while scanning for sync records.
    pub bytes_skipped: u64,
    /// True if the stream ended inside a corrupt region with no further
    /// sync record to re-join at (the tail after the last good message is
    /// lost).
    pub tail_lost: bool,
}

/// Decodes a trace byte stream back into [`TimedMessage`]s.
///
/// Decode errors are **sticky**: once [`StreamDecoder::next_message`]
/// returns an error, every further call returns the same error until
/// [`StreamDecoder::resync`] skips ahead to the next stream-level sync
/// record. A corrupt byte therefore cannot silently smear mis-framed
/// garbage into the output.
#[derive(Debug)]
pub struct StreamDecoder {
    buf: Bytes,
    last_timestamp: u64,
    state: HashMap<u8, SourceState>,
    failed: Option<DecodeStreamError>,
}

impl StreamDecoder {
    /// Creates a decoder over `bytes`.
    pub fn new(bytes: impl Into<Bytes>) -> StreamDecoder {
        StreamDecoder {
            buf: bytes.into(),
            last_timestamp: 0,
            state: HashMap::new(),
            failed: None,
        }
    }

    /// Decodes the next message, or `None` at a clean end of stream.
    ///
    /// Stream-level sync records are consumed transparently: they reset the
    /// timestamp context and all per-source compression state but produce
    /// no message.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeStreamError`] on truncation or malformed fields.
    /// The error is sticky — see [`StreamDecoder::resync`].
    pub fn next_message(&mut self) -> Result<Option<TimedMessage>, DecodeStreamError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        match self.parse_next() {
            Ok(m) => Ok(m),
            Err(e) => {
                self.failed = Some(e.clone());
                Err(e)
            }
        }
    }

    fn parse_next(&mut self) -> Result<Option<TimedMessage>, DecodeStreamError> {
        while self.buf.has_remaining() && self.buf[0] == SYNC_MAGIC[0] {
            if self.buf.remaining() < 2 {
                return Err(DecodeStreamError::Truncated);
            }
            if self.buf[1] != SYNC_MAGIC[1] {
                return Err(DecodeStreamError::BadType { code: 0xF });
            }
            self.buf.advance(2);
            self.last_timestamp = get_varint(&mut self.buf)?;
            self.state.clear();
        }
        if !self.buf.has_remaining() {
            return Ok(None);
        }
        let header = self.buf.get_u8();
        let source = TraceSource::from_code(header >> 4);
        let type_code = header & 0xF;
        let delta = get_varint(&mut self.buf)?;
        self.last_timestamp = self.last_timestamp.saturating_add(delta);
        let state = self.state.entry(header >> 4).or_default();
        let get_history = |buf: &mut Bytes| -> Result<BranchBits, DecodeStreamError> {
            if !buf.has_remaining() {
                return Err(DecodeStreamError::Truncated);
            }
            let count = buf.get_u8();
            if count > 32 {
                return Err(DecodeStreamError::BadHistory { count });
            }
            let bits = if count > 0 {
                get_varint(buf)? as u32
            } else {
                0
            };
            Ok(BranchBits { bits, count })
        };
        let message = match type_code {
            0 => {
                *state = SourceState::default();
                TraceMessage::ProgSync {
                    pc: get_varint(&mut self.buf)? as u32,
                }
            }
            1 => TraceMessage::DirectBranch {
                i_cnt: get_varint(&mut self.buf)? as u32,
            },
            2 => {
                let i_cnt = get_varint(&mut self.buf)? as u32;
                let history = get_history(&mut self.buf)?;
                let xored = get_varint(&mut self.buf)? as u32;
                let target = xored ^ state.last_indirect_target;
                state.last_indirect_target = target;
                TraceMessage::IndirectBranch {
                    i_cnt,
                    history,
                    target,
                }
            }
            3 | 4 => {
                let i_cnt = get_varint(&mut self.buf)? as u32;
                let history = get_history(&mut self.buf)?;
                if type_code == 3 {
                    TraceMessage::BranchHistory { i_cnt, history }
                } else {
                    TraceMessage::FlowFlush { i_cnt, history }
                }
            }
            5 | 6 => {
                if !self.buf.has_remaining() {
                    return Err(DecodeStreamError::Truncated);
                }
                let width = width_from_code(self.buf.get_u8())?;
                let xored = get_varint(&mut self.buf)? as u32;
                let addr = xored ^ state.last_data_addr;
                state.last_data_addr = addr;
                let value = get_varint(&mut self.buf)? as u32;
                if type_code == 5 {
                    TraceMessage::DataWrite { addr, value, width }
                } else {
                    TraceMessage::DataRead { addr, value, width }
                }
            }
            7 => {
                if !self.buf.has_remaining() {
                    return Err(DecodeStreamError::Truncated);
                }
                TraceMessage::Watchpoint {
                    id: self.buf.get_u8(),
                }
            }
            8 => TraceMessage::Overflow {
                lost: get_varint(&mut self.buf)? as u32,
            },
            code => return Err(DecodeStreamError::BadType { code }),
        };
        Ok(Some(TimedMessage {
            timestamp: self.last_timestamp,
            source,
            message,
        }))
    }

    /// Decodes the remainder of the stream into a vector.
    ///
    /// # Errors
    ///
    /// Returns the first decode error encountered.
    pub fn collect_all(mut self) -> Result<Vec<TimedMessage>, DecodeStreamError> {
        let mut out = Vec::new();
        while let Some(m) = self.next_message()? {
            out.push(m);
        }
        Ok(out)
    }

    /// Recovers from a decode error (or joins mid-stream) by scanning
    /// forward for the next stream-level sync record.
    ///
    /// On success the sticky error is cleared, all decode state is reset
    /// (the record itself re-establishes absolute time), and the number of
    /// bytes skipped to reach the record is returned. Returns `None` — and
    /// leaves the decoder failed — when no sync record remains, i.e. the
    /// rest of the stream is unrecoverable.
    pub fn resync(&mut self) -> Option<usize> {
        let pos = self.buf.windows(2).position(|w| w == SYNC_MAGIC)?;
        self.buf.advance(pos);
        self.failed = None;
        self.state.clear();
        Some(pos)
    }

    /// Decodes as much of the stream as possible, skipping corrupt regions
    /// at sync-record boundaries.
    ///
    /// Because a sync record resets the timestamp context and *all*
    /// per-source compression state, the stretch between two sync records
    /// decodes identically in isolation. This method therefore splits the
    /// stream at every [`SYNC_MAGIC`] occurrence and decodes each segment
    /// independently — so damage in one segment (even damage that happens
    /// to keep parsing, mis-framed, for a while) can never swallow the
    /// segments after it.
    ///
    /// Returns every message that decoded cleanly plus a [`ResyncReport`]
    /// of the gaps. A stream with no corruption returns all messages and a
    /// zeroed report; a stream with no sync records degrades to "everything
    /// up to the first bad byte".
    pub fn collect_resilient(self) -> (Vec<TimedMessage>, ResyncReport) {
        let data: &[u8] = &self.buf;
        let mut starts: Vec<usize> = vec![0];
        starts.extend(
            data.windows(2)
                .enumerate()
                .filter(|(_, w)| *w == SYNC_MAGIC)
                .map(|(i, _)| i),
        );
        starts.dedup();
        let mut out = Vec::new();
        let mut report = ResyncReport::default();
        for (k, &s) in starts.iter().enumerate() {
            let end = starts.get(k + 1).copied().unwrap_or(data.len());
            if s == end {
                continue;
            }
            let mut dec = StreamDecoder::new(self.buf.slice(s..end));
            loop {
                match dec.next_message() {
                    Ok(Some(m)) => out.push(m),
                    Ok(None) => break,
                    Err(_) => {
                        report.gaps += 1;
                        report.bytes_skipped += dec.buf.remaining() as u64;
                        if k + 1 == starts.len() {
                            report.tail_lost = true;
                        }
                        break;
                    }
                }
            }
        }
        (out, report)
    }
}

/// Encodes a batch of messages (convenience for tests and benches).
pub fn encode_all(messages: &[TimedMessage]) -> Bytes {
    let mut enc = StreamEncoder::new();
    for m in messages {
        enc.push(m);
    }
    enc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_soc::event::CoreId;

    fn sample_messages() -> Vec<TimedMessage> {
        let c0 = TraceSource::Core(CoreId(0));
        let c1 = TraceSource::Core(CoreId(1));
        let mut h = BranchBits::new();
        h.push(true);
        h.push(false);
        vec![
            TimedMessage {
                timestamp: 100,
                source: c0,
                message: TraceMessage::ProgSync { pc: 0x8000_0000 },
            },
            TimedMessage {
                timestamp: 105,
                source: c1,
                message: TraceMessage::ProgSync { pc: 0x8000_0400 },
            },
            TimedMessage {
                timestamp: 110,
                source: c0,
                message: TraceMessage::DirectBranch { i_cnt: 7 },
            },
            TimedMessage {
                timestamp: 113,
                source: c0,
                message: TraceMessage::IndirectBranch {
                    i_cnt: 3,
                    history: h,
                    target: 0x8000_0200,
                },
            },
            TimedMessage {
                timestamp: 113,
                source: c1,
                message: TraceMessage::DataWrite {
                    addr: 0xD000_0010,
                    value: 42,
                    width: MemWidth::Word,
                },
            },
            TimedMessage {
                timestamp: 120,
                source: c1,
                message: TraceMessage::DataRead {
                    addr: 0xD000_0014,
                    value: 7,
                    width: MemWidth::Half,
                },
            },
            TimedMessage {
                timestamp: 130,
                source: c0,
                message: TraceMessage::BranchHistory {
                    i_cnt: 40,
                    history: h,
                },
            },
            TimedMessage {
                timestamp: 131,
                source: c0,
                message: TraceMessage::Watchpoint { id: 3 },
            },
            TimedMessage {
                timestamp: 140,
                source: TraceSource::Bus,
                message: TraceMessage::Overflow { lost: 9 },
            },
            TimedMessage {
                timestamp: 150,
                source: c0,
                message: TraceMessage::FlowFlush {
                    i_cnt: 5,
                    history: BranchBits::new(),
                },
            },
        ]
    }

    #[test]
    fn roundtrip_all_message_kinds() {
        let msgs = sample_messages();
        let bytes = encode_all(&msgs);
        let back = StreamDecoder::new(bytes).collect_all().unwrap();
        assert_eq!(back, msgs);
    }

    #[test]
    fn address_xor_compression_shrinks_loops() {
        // Same data address written repeatedly: after the first message the
        // XOR is zero and the address costs one byte.
        let c0 = TraceSource::Core(CoreId(0));
        let mut msgs = Vec::new();
        for i in 0..100u64 {
            msgs.push(TimedMessage {
                timestamp: i * 10,
                source: c0,
                message: TraceMessage::DataWrite {
                    addr: 0xD000_0010,
                    value: 5,
                    width: MemWidth::Word,
                },
            });
        }
        let bytes = encode_all(&msgs);
        // header + ts-delta + width + addr(1) + value(1) = 5 bytes steady
        // state; first message pays 5 bytes for the address.
        assert!(
            bytes.len() <= 100 * 5 + 4,
            "stream is {} bytes",
            bytes.len()
        );
        let back = StreamDecoder::new(bytes).collect_all().unwrap();
        assert_eq!(back, msgs);
    }

    #[test]
    fn timestamp_deltas_accumulate() {
        let c0 = TraceSource::Core(CoreId(0));
        let msgs = vec![
            TimedMessage {
                timestamp: 1_000_000,
                source: c0,
                message: TraceMessage::ProgSync { pc: 4 },
            },
            TimedMessage {
                timestamp: 1_000_001,
                source: c0,
                message: TraceMessage::DirectBranch { i_cnt: 1 },
            },
        ];
        let back = StreamDecoder::new(encode_all(&msgs)).collect_all().unwrap();
        assert_eq!(back[0].timestamp, 1_000_000);
        assert_eq!(back[1].timestamp, 1_000_001);
    }

    #[test]
    fn truncated_stream_reports_error() {
        let bytes = encode_all(&sample_messages());
        let cut = bytes.slice(..bytes.len() - 2);
        let mut dec = StreamDecoder::new(cut);
        let result = loop {
            match dec.next_message() {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        assert!(
            matches!(result, Err(DecodeStreamError::Truncated)),
            "{result:?}"
        );
    }

    #[test]
    fn oversized_history_count_rejected() {
        // Header: source 0, type 3 (BranchHistory); ts delta 0; i_cnt 1;
        // count 200 (invalid).
        let mut dec = StreamDecoder::new(vec![0x03, 0x00, 0x01, 200]);
        assert!(matches!(
            dec.next_message(),
            Err(DecodeStreamError::BadHistory { count: 200 })
        ));
    }

    #[test]
    fn timestamp_overflow_saturates() {
        // Two maximal deltas must not panic in debug builds.
        let c0 = TraceSource::Core(CoreId(0));
        let mut msgs = vec![TimedMessage {
            timestamp: u64::MAX,
            source: c0,
            message: TraceMessage::ProgSync { pc: 0 },
        }];
        let bytes = encode_all(&msgs);
        let mut doubled = bytes.to_vec();
        doubled.extend_from_slice(&bytes);
        let mut dec = StreamDecoder::new(doubled);
        assert!(dec.next_message().unwrap().is_some());
        let second = dec.next_message().unwrap().unwrap();
        assert_eq!(second.timestamp, u64::MAX, "saturated, not wrapped");
        msgs.clear();
    }

    #[test]
    fn bad_type_code_rejected() {
        // Header with type 0xF (unassigned), minimal timestamp.
        let mut dec = StreamDecoder::new(vec![0x0F, 0x00]);
        assert!(matches!(
            dec.next_message(),
            Err(DecodeStreamError::BadType { code: 0xF })
        ));
    }

    #[test]
    fn per_source_state_is_independent() {
        let c0 = TraceSource::Core(CoreId(0));
        let c1 = TraceSource::Core(CoreId(1));
        let msgs = vec![
            TimedMessage {
                timestamp: 1,
                source: c0,
                message: TraceMessage::DataWrite {
                    addr: 0x1000,
                    value: 1,
                    width: MemWidth::Word,
                },
            },
            TimedMessage {
                timestamp: 2,
                source: c1,
                message: TraceMessage::DataWrite {
                    addr: 0x2000,
                    value: 2,
                    width: MemWidth::Word,
                },
            },
            TimedMessage {
                timestamp: 3,
                source: c0,
                message: TraceMessage::DataWrite {
                    addr: 0x1004,
                    value: 3,
                    width: MemWidth::Word,
                },
            },
            TimedMessage {
                timestamp: 4,
                source: c1,
                message: TraceMessage::DataWrite {
                    addr: 0x2004,
                    value: 4,
                    width: MemWidth::Word,
                },
            },
        ];
        let back = StreamDecoder::new(encode_all(&msgs)).collect_all().unwrap();
        assert_eq!(back, msgs);
    }

    #[test]
    fn varint_boundaries() {
        let mut buf = BytesMut::new();
        for v in [0u64, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            put_varint(&mut buf, v);
        }
        let mut bytes = buf.freeze();
        for v in [0u64, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            assert_eq!(get_varint(&mut bytes).unwrap(), v);
        }
        assert!(!bytes.has_remaining());
    }
}

/// Decodes a byte window that may start mid-message (a wrapped
/// flight-recorder read-back): tries successive start offsets until the
/// remainder of the window decodes cleanly, then returns the skipped byte
/// count and the messages.
///
/// The stream has no explicit framing, so this is a scan; `max_skip` bounds
/// it (a few hundred bytes is plenty — messages are short). Decoded
/// per-source compression state is rebuilt from the window, so absolute
/// fields (sync PCs) are exact while XOR-compressed fields of each source's
/// *first* message may be wrong; program reconstruction is reliable from
/// the first `ProgSync` onwards, exactly like recovering after an overflow.
///
/// # Errors
///
/// Returns [`DecodeStreamError::Truncated`] if no offset within `max_skip`
/// yields a cleanly decodable remainder.
pub fn decode_wrapped(
    bytes: &[u8],
    max_skip: usize,
) -> Result<(usize, Vec<TimedMessage>), DecodeStreamError> {
    let limit = max_skip.min(bytes.len());
    for skip in 0..=limit {
        if let Ok(msgs) = StreamDecoder::new(bytes[skip..].to_vec()).collect_all() {
            return Ok((skip, msgs));
        }
    }
    Err(DecodeStreamError::Truncated)
}

#[cfg(test)]
mod wrapped_tests {
    use super::*;
    use mcds_soc::event::CoreId;

    #[test]
    fn decode_wrapped_skips_partial_head() {
        let c0 = TraceSource::Core(CoreId(0));
        let msgs: Vec<TimedMessage> = (0..50)
            .map(|i| TimedMessage {
                timestamp: i * 7,
                source: c0,
                message: TraceMessage::ProgSync {
                    pc: 0x8000_0000 + i as u32 * 4,
                },
            })
            .collect();
        let bytes = encode_all(&msgs);
        // Chop into the middle of the first message.
        let window = &bytes[3..];
        let (skipped, decoded) = decode_wrapped(window, 64).expect("resyncs");
        assert!(decoded.len() >= 45, "recovered most of the window");
        // The tail matches the original suffix by message count.
        let tail_pc = match decoded.last().unwrap().message {
            TraceMessage::ProgSync { pc } => pc,
            _ => panic!(),
        };
        assert_eq!(tail_pc, 0x8000_0000 + 49 * 4, "last message intact");
        assert!(skipped <= 16);
    }

    #[test]
    fn decode_wrapped_handles_aligned_window() {
        let c0 = TraceSource::Core(CoreId(0));
        let msgs = vec![TimedMessage {
            timestamp: 5,
            source: c0,
            message: TraceMessage::DirectBranch { i_cnt: 3 },
        }];
        let bytes = encode_all(&msgs);
        let (skipped, decoded) = decode_wrapped(&bytes, 8).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn decode_wrapped_gives_up_within_budget() {
        // Pure garbage that never decodes: error, not a hang.
        let garbage = vec![0x0F; 64]; // type code 0xF is always invalid
        assert!(decode_wrapped(&garbage, 16).is_err());
    }
}

#[cfg(test)]
mod sync_reset_tests {
    use super::*;
    use mcds_soc::event::CoreId;

    /// A decoder that joins after a sync sees exact addresses even though
    /// it missed the earlier compression state.
    #[test]
    fn sync_resets_compression_state_for_late_joiners() {
        let c0 = TraceSource::Core(CoreId(0));
        let mk = |ts, message| TimedMessage {
            timestamp: ts,
            source: c0,
            message,
        };
        let msgs = vec![
            // Pre-window traffic establishing XOR state.
            mk(
                1,
                TraceMessage::IndirectBranch {
                    i_cnt: 1,
                    history: BranchBits::new(),
                    target: 0x8000_1234,
                },
            ),
            mk(
                2,
                TraceMessage::DataWrite {
                    addr: 0xD000_0040,
                    value: 1,
                    width: MemWidth::Word,
                },
            ),
            // The window boundary: a full sync.
            mk(3, TraceMessage::ProgSync { pc: 0x8000_2000 }),
            mk(
                4,
                TraceMessage::IndirectBranch {
                    i_cnt: 2,
                    history: BranchBits::new(),
                    target: 0x8000_3000,
                },
            ),
            mk(
                5,
                TraceMessage::DataWrite {
                    addr: 0xD000_0080,
                    value: 2,
                    width: MemWidth::Word,
                },
            ),
        ];
        let bytes = encode_all(&msgs);
        // Find the byte offset of the sync message by re-encoding the
        // prefix.
        let prefix = encode_all(&msgs[..2]);
        let window = &bytes[prefix.len()..];
        let decoded = StreamDecoder::new(window.to_vec()).collect_all().unwrap();
        assert_eq!(decoded.len(), 3);
        assert!(matches!(
            decoded[0].message,
            TraceMessage::ProgSync { pc: 0x8000_2000 }
        ));
        assert!(matches!(
            decoded[1].message,
            TraceMessage::IndirectBranch {
                target: 0x8000_3000,
                ..
            }
        ));
        assert!(matches!(
            decoded[2].message,
            TraceMessage::DataWrite {
                addr: 0xD000_0080,
                ..
            }
        ));
        // Timestamps are deltas, so the late joiner sees relative time
        // starting at its first message — expected and harmless.
    }
}

#[cfg(test)]
mod sync_record_tests {
    use super::*;
    use mcds_soc::event::CoreId;

    fn mk(ts: u64, message: TraceMessage) -> TimedMessage {
        TimedMessage {
            timestamp: ts,
            source: TraceSource::Core(CoreId(0)),
            message,
        }
    }

    fn flow_stream(n: u64) -> Vec<TimedMessage> {
        (0..n)
            .map(|i| {
                if i % 8 == 0 {
                    mk(
                        i * 10,
                        TraceMessage::ProgSync {
                            pc: 0x8000_0000 + i as u32 * 4,
                        },
                    )
                } else {
                    mk(
                        i * 10,
                        TraceMessage::IndirectBranch {
                            i_cnt: i as u32 % 5 + 1,
                            history: BranchBits::new(),
                            target: 0x8000_0000 + (i as u32 * 52) % 0x400,
                        },
                    )
                }
            })
            .collect()
    }

    fn encode_synced(msgs: &[TimedMessage], interval: u64) -> Bytes {
        let mut enc = StreamEncoder::with_sync_interval(interval);
        for m in msgs {
            enc.push(m);
        }
        enc.finish()
    }

    #[test]
    fn synced_stream_roundtrips_exactly() {
        let msgs = flow_stream(100);
        let bytes = encode_synced(&msgs, 10);
        let back = StreamDecoder::new(bytes).collect_all().unwrap();
        assert_eq!(back, msgs);
    }

    #[test]
    fn sync_records_are_emitted_at_the_interval() {
        let msgs = flow_stream(100);
        let mut enc = StreamEncoder::with_sync_interval(10);
        for m in &msgs {
            enc.push(m);
        }
        assert_eq!(enc.sync_record_count(), 10, "one per 10 messages");
        assert!(StreamEncoder::new().sync_interval().is_none());
    }

    #[test]
    fn decode_errors_are_sticky() {
        let mut dec = StreamDecoder::new(vec![0x0F, 0x00]);
        let first = dec.next_message();
        assert!(matches!(
            first,
            Err(DecodeStreamError::BadType { code: 0xF })
        ));
        // Every further call repeats the same error — no mis-framed decode.
        for _ in 0..4 {
            assert_eq!(dec.next_message(), first);
        }
    }

    #[test]
    fn resync_skips_to_next_sync_record() {
        let msgs = flow_stream(60);
        let bytes = encode_synced(&msgs, 20);
        let mut corrupted = bytes.to_vec();
        // Smash the first message header (right after the 3-byte leading
        // sync record) into the invalid type nibble 0xF.
        corrupted[3] = 0x0F;
        let (recovered, report) = StreamDecoder::new(corrupted).collect_resilient();
        assert!(report.gaps >= 1, "at least one gap: {report:?}");
        assert!(!report.tail_lost);
        assert!(report.bytes_skipped > 0);
        // Everything from the second sync record (message 20) onwards is
        // byte-exact, absolute timestamps included.
        let tail = &msgs[20..];
        assert!(
            recovered.len() >= tail.len(),
            "recovered {} < tail {}",
            recovered.len(),
            tail.len()
        );
        assert_eq!(&recovered[recovered.len() - tail.len()..], tail);
    }

    #[test]
    fn resync_restores_absolute_timestamps() {
        let msgs = flow_stream(40);
        let bytes = encode_synced(&msgs, 10);
        let mut corrupted = bytes.to_vec();
        corrupted[3] = 0x0F;
        let (recovered, _) = StreamDecoder::new(corrupted).collect_resilient();
        let last = recovered.last().expect("something recovered");
        assert_eq!(
            last.timestamp,
            msgs.last().unwrap().timestamp,
            "sync record carries absolute time"
        );
    }

    #[test]
    fn stream_without_sync_records_loses_the_tail() {
        let msgs = flow_stream(30);
        let bytes = encode_all(&msgs); // no sync records
        let mut corrupted = bytes.to_vec();
        let mid = corrupted.len() / 2;
        corrupted[mid] = 0x0F;
        let (recovered, report) = StreamDecoder::new(corrupted).collect_resilient();
        if recovered.len() < msgs.len() {
            assert!(report.tail_lost, "no sync record to re-join at");
        }
    }

    #[test]
    fn truncated_sync_record_is_an_error_not_a_panic() {
        // Magic with the varint cut off.
        let mut dec = StreamDecoder::new(vec![0xFF, 0xA5]);
        assert!(matches!(
            dec.next_message(),
            Err(DecodeStreamError::Truncated)
        ));
        // Lone 0xFF at end of stream.
        let mut dec = StreamDecoder::new(vec![0xFF]);
        assert!(matches!(
            dec.next_message(),
            Err(DecodeStreamError::Truncated)
        ));
    }

    #[test]
    fn collect_resilient_on_clean_stream_reports_no_gaps() {
        let msgs = flow_stream(50);
        let bytes = encode_synced(&msgs, 10);
        let (recovered, report) = StreamDecoder::new(bytes).collect_resilient();
        assert_eq!(recovered, msgs);
        assert_eq!(report, ResyncReport::default());
    }
}
