//! Determinism and save/restore round-trip properties of the replay layer.
//!
//! The whole crate rests on one claim: the device model is a deterministic
//! function of (initial state, input log). These properties attack that
//! claim from randomized angles — randomized stimulus, trigger pins,
//! overlay configurations and trigger-unit programs — asserting *byte*
//! identity of serialized state, not just hash equality.

use mcds::{
    CoreTraceConfig, CounterConfig, CounterMode, CrossTrigger, McdsConfig, ProgramComparator,
    SignalRef, StateMachineConfig, TraceQualifier, Transition, TriggerAction,
};
use mcds_psi::device::{Device, DeviceBuilder, DeviceVariant};
use mcds_replay::{device_state_hash, InputEvent, InputLog, Replayer, SocSnapshot};
use mcds_soc::bus::AddrRange;
use mcds_soc::cpu::CoreConfig;
use mcds_soc::event::CoreId;
use mcds_soc::overlay::{CalPage, OverlayRange};
use mcds_workloads::gearbox;
use proptest::prelude::*;

/// An MCDS configuration that keeps every trigger resource busy: a program
/// comparator over the gearbox loop feeding a repeat counter, a state
/// machine walked by the counter and the external trigger pin, and a
/// cross-trigger line emitting watchpoint messages.
fn trigger_config() -> McdsConfig {
    McdsConfig {
        cores: vec![CoreTraceConfig {
            program_comparators: vec![ProgramComparator::in_range(AddrRange::new(
                0x8001_0000,
                0x100,
            ))],
            program_trace: TraceQualifier::Always,
            ..Default::default()
        }],
        counters: vec![CounterConfig {
            increment_on: SignalRef::ProgComp {
                core: CoreId(0),
                idx: 0,
            },
            threshold: 64,
            reset_on: None,
            mode: CounterMode::Repeat,
        }],
        state_machines: vec![StateMachineConfig {
            transitions: vec![
                Transition {
                    from: 0,
                    on: SignalRef::Counter(0),
                    to: 1,
                },
                Transition {
                    from: 1,
                    on: SignalRef::ExternalPin(0),
                    to: 2,
                },
                Transition {
                    from: 2,
                    on: SignalRef::Counter(0),
                    to: 0,
                },
            ],
            trigger_state: 2,
        }],
        cross_triggers: vec![CrossTrigger::on_any(
            vec![SignalRef::StateMachine(0)],
            TriggerAction::Watchpoint { id: 3 },
        )],
        fifo_depth: 4096,
        sink_bandwidth: 8,
        ..Default::default()
    }
}

fn gearbox_device() -> Device {
    let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
        .core(CoreConfig {
            reset_pc: 0x8001_0000,
            clock_div: 1,
            ..Default::default()
        })
        .mcds(trigger_config())
        .build();
    dev.soc_mut().load_program(&gearbox::program(None));
    dev
}

/// Serialized device state — the byte-identity yardstick.
fn state_json(dev: &Device) -> String {
    serde_json::to_string(&dev.save_state()).expect("device state serializes")
}

/// Runs a fresh gearbox device under `log`, snapshotting every
/// `every` cycles up to `total`.
fn checkpointed_run(log: &InputLog, every: u64, total: u64) -> Vec<SocSnapshot> {
    let mut dev = gearbox_device();
    let mut rep = Replayer::new(log);
    let mut snaps = Vec::new();
    while dev.soc().cycle() < total {
        if dev.soc().cycle().is_multiple_of(every) {
            snaps.push(SocSnapshot::capture(&dev));
        }
        rep.apply_due(&mut dev);
        if dev.soc().cycle() >= total {
            break;
        }
        dev.step();
    }
    snaps.push(SocSnapshot::capture(&dev));
    snaps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Two runs from the same stimulus are byte-identical at every
    /// checkpoint — not merely hash-equal.
    #[test]
    fn runs_bit_identical_at_every_checkpoint(
        from in 0u32..40,
        to in 40u32..120,
        steps in 1u32..12,
        pin_period in 200u64..900,
    ) {
        const TOTAL: u64 = 3_000;
        let mut log = InputLog::new();
        // Interleave a speed ramp with external trigger-pin pulses so the
        // stimulus exercises ports *and* the trigger matrix.
        let mut cycle = 0;
        let mut level = 0u32;
        let mut value = from;
        let step = (to - from) / steps.max(1);
        while cycle < TOTAL {
            log.record(InputEvent::Stimulus {
                cycle,
                port: gearbox::SPEED_PORT,
                value,
            });
            value = (value + step).min(to);
            cycle += pin_period / 2;
            level ^= 1;
            log.record(InputEvent::TriggerIn { cycle, level });
            cycle += pin_period - pin_period / 2;
        }

        let a = checkpointed_run(&log, 500, TOTAL);
        let b = checkpointed_run(&log, 500, TOTAL);
        prop_assert_eq!(a.len(), b.len());
        for (sa, sb) in a.iter().zip(&b) {
            prop_assert_eq!(sa.cycle(), sb.cycle());
            prop_assert_eq!(sa.state_hash(), sb.state_hash());
            let ja = serde_json::to_string(sa).expect("snapshot serializes");
            let jb = serde_json::to_string(sb).expect("snapshot serializes");
            prop_assert_eq!(ja, jb);
        }
    }

    /// Overlay-mapper state (ranges, enables, active page, swap counter and
    /// the emulation-RAM contents behind it) survives a snapshot round-trip
    /// exactly, and the restored device *behaves* identically afterwards.
    #[test]
    fn overlay_state_survives_roundtrip(
        size_log2 in 10u32..15,
        flash_block in 8u32..32,
        page1 in 0u8..2,
        enable in 0u8..2,
        run_cycles in 300u64..1_200,
    ) {
        let size = 1u32 << size_log2;
        let mut dev = gearbox_device();
        let range = OverlayRange {
            // Block well above the program, aligned to the window size.
            flash_addr: 0x8000_0000 + flash_block * 0x8000 / size * size,
            size,
            offset_page0: 0,
            offset_page1: size,
        };
        dev.soc_mut()
            .mapper_mut()
            .configure_range(0, range)
            .expect("valid overlay range");
        dev.soc_mut().mapper_mut().set_range_enabled(0, enable == 1);
        let page = if page1 == 1 { CalPage::Page1 } else { CalPage::Page0 };
        dev.soc_mut().mapper_mut().set_active_page(page);
        // Dirty the emulation RAM behind the window so the round-trip has
        // real calibration bytes to preserve.
        if let Some(emem) = dev.soc_mut().mapper_mut().emem_mut() {
            emem.bytes_mut()[..4].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        }
        let log = InputLog::new();
        let mut rep = Replayer::new(&log);
        mcds_replay::run_with_events(&mut dev, &mut rep, run_cycles);

        let snap = SocSnapshot::capture(&dev);
        let mut twin = gearbox_device();
        snap.restore_into(&mut twin);
        prop_assert_eq!(state_json(&dev), state_json(&twin));
        prop_assert_eq!(
            twin.soc().mapper().active_page(),
            dev.soc().mapper().active_page()
        );
        prop_assert_eq!(
            twin.soc().mapper().range_enabled(0),
            dev.soc().mapper().range_enabled(0)
        );

        // Same future: both devices keep agreeing after more execution.
        let mut ra = Replayer::resume_at(&log, run_cycles);
        let mut rb = Replayer::resume_at(&log, run_cycles);
        mcds_replay::run_with_events(&mut dev, &mut ra, run_cycles + 400);
        mcds_replay::run_with_events(&mut twin, &mut rb, run_cycles + 400);
        prop_assert_eq!(device_state_hash(&dev), device_state_hash(&twin));
        prop_assert_eq!(state_json(&dev), state_json(&twin));
    }

    /// Trigger-unit runtime state (counter counts, state-machine states,
    /// cross-trigger occurrence counters, FIFO contents) survives a
    /// snapshot round-trip mid-sequence: restoring at an arbitrary cycle
    /// and continuing produces the same machine as never having stopped.
    #[test]
    fn trigger_units_survive_roundtrip(split in 401u64..2_400) {
        const TOTAL: u64 = 2_800;
        let mut log = InputLog::new();
        for k in 0..10u64 {
            log.record(InputEvent::Stimulus {
                cycle: k * 250,
                port: gearbox::SPEED_PORT,
                value: (10 + 11 * k) as u32,
            });
            log.record(InputEvent::TriggerIn {
                cycle: k * 250 + 125,
                level: (k % 2) as u32,
            });
        }

        let mut dev = gearbox_device();
        let mut rep = Replayer::new(&log);
        mcds_replay::run_with_events(&mut dev, &mut rep, split);
        let snap = SocSnapshot::capture(&dev);

        let mut twin = gearbox_device();
        snap.restore_into(&mut twin);
        prop_assert_eq!(state_json(&dev), state_json(&twin));

        mcds_replay::run_with_events(&mut dev, &mut rep, TOTAL);
        let mut rt = Replayer::resume_at(&log, split);
        mcds_replay::run_with_events(&mut twin, &mut rt, TOTAL);
        prop_assert_eq!(device_state_hash(&dev), device_state_hash(&twin));
        prop_assert_eq!(state_json(&dev), state_json(&twin));
    }
}
