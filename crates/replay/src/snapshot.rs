//! Versioned device snapshots with per-component content hashes and
//! delta compression against a parent snapshot.
//!
//! A [`SocSnapshot`] is a named set of [`Component`]s:
//!
//! * `device/state` — the serialized [`mcds_psi::DeviceState`]: CPU
//!   registers and pipelines, bus arbiter and in-flight transactions, DMA,
//!   overlay mapper, peripherals, MCDS trigger/trace units, cross-trigger
//!   matrix, FIFOs, trace sink, link statistics, service core and fault
//!   injectors;
//! * `soc/flash`, `soc/sram`, `soc/emem` — raw memory images, kept separate
//!   from the structured state so the megabyte-class memories can be
//!   delta-compressed against a parent snapshot (they change slowly, while
//!   the structured state churns every cycle).
//!
//! Every component carries an FNV-1a hash of its raw contents, computed at
//! capture time and re-checked when a delta chain is materialized.

use crate::hash::fnv1a64;
use mcds_psi::{Device, DeviceState};
use mcds_soc::soc::MemoryId;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Snapshot format version; bump on any incompatible change to the
/// component set or encodings.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Merge two difference runs into one [`DeltaOp`] when the gap of equal
/// bytes between them is at most this long — one op's framing overhead
/// outweighs re-sending a few unchanged bytes.
const DELTA_MERGE_GAP: usize = 16;

/// A typed error from persisting or loading a snapshot, or from an
/// integrity check over its contents.
///
/// Suspend-to-disk consumers (the debug farm's session eviction) must not
/// crash the service on a bad file — they surface these and keep serving.
#[derive(Debug)]
pub enum SnapshotIoError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The snapshot failed to (de)serialize.
    Json {
        /// The path involved (empty for in-memory round trips).
        path: PathBuf,
        /// The underlying serialization error.
        source: serde_json::Error,
    },
    /// The snapshot was written by an incompatible format version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// A component's contents no longer match its recorded hash — the file
    /// was corrupted (or tampered with) between save and load.
    Corrupt {
        /// Name of the failing component.
        component: String,
        /// Hash recorded at capture time.
        expected: u64,
        /// Hash recomputed from the loaded contents.
        found: u64,
    },
}

impl fmt::Display for SnapshotIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotIoError::Io { path, source } => {
                write!(f, "snapshot I/O failed at {}: {source}", path.display())
            }
            SnapshotIoError::Json { path, source } => {
                write!(f, "snapshot JSON failed at {}: {source}", path.display())
            }
            SnapshotIoError::Version { found, expected } => {
                write!(f, "snapshot version {found} incompatible with {expected}")
            }
            SnapshotIoError::Corrupt {
                component,
                expected,
                found,
            } => write!(
                f,
                "snapshot component {component} corrupt: recorded hash {expected:#018x}, \
                 recomputed {found:#018x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotIoError::Io { source, .. } => Some(source),
            SnapshotIoError::Json { source, .. } => Some(source),
            SnapshotIoError::Version { .. } | SnapshotIoError::Corrupt { .. } => None,
        }
    }
}

/// A contiguous byte-range replacement within a component image.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct DeltaOp {
    /// Byte offset into the image.
    pub offset: u64,
    /// Replacement bytes.
    pub bytes: Vec<u8>,
}

/// How a component's contents are stored in a snapshot.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// The full contents.
    Raw(Vec<u8>),
    /// Byte-range replacements against the same-named component of the
    /// parent snapshot (which must have identical length).
    Delta {
        /// Total image length (must match the parent's).
        len: u64,
        /// Replacements, sorted by offset, non-overlapping.
        ops: Vec<DeltaOp>,
    },
    /// Bit-identical to the parent's component (hashes matched).
    Same,
}

impl Payload {
    /// The bytes this payload actually stores (content bytes plus 12 bytes
    /// of framing per delta op) — the size metric the T9 experiment reports
    /// for raw-versus-delta comparisons without paying for full JSON
    /// serialization.
    pub fn stored_bytes(&self) -> usize {
        match self {
            Payload::Raw(b) => b.len(),
            Payload::Delta { ops, .. } => ops.iter().map(|op| op.bytes.len() + 12).sum(),
            Payload::Same => 0,
        }
    }
}

/// One named, hashed piece of device state.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct Component {
    name: String,
    hash: u64,
    payload: Payload,
}

impl Component {
    /// The component's name (e.g. `soc/sram`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// FNV-1a hash of the component's full (materialized) contents.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// How the contents are stored.
    pub fn payload(&self) -> &Payload {
        &self.payload
    }
}

/// A versioned snapshot of a whole [`Device`] at one cycle.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct SocSnapshot {
    version: u32,
    cycle: u64,
    components: Vec<Component>,
}

impl SocSnapshot {
    /// Captures a full (all-raw) snapshot of the device.
    pub fn capture(dev: &Device) -> SocSnapshot {
        let span_t0 = dev.telemetry().map(|_| std::time::Instant::now());
        let mut components = Vec::with_capacity(4);
        let state =
            serde_json::to_string(&dev.save_state()).expect("device state serializes infallibly");
        components.push(raw_component("device/state", state.into_bytes()));
        for (name, id) in [
            ("soc/flash", MemoryId::Flash),
            ("soc/sram", MemoryId::Sram),
            ("soc/emem", MemoryId::Emem),
        ] {
            if let Some(image) = dev.soc().memory_image(id) {
                components.push(raw_component(name, image));
            }
        }
        let cycle = dev.soc().cycle();
        if let (Some(t0), Some(tel)) = (span_t0, dev.telemetry()) {
            tel.spans().record(
                mcds_telemetry::Subsystem::Snapshot,
                cycle,
                cycle,
                t0.elapsed().as_nanos() as u64,
            );
        }
        SocSnapshot {
            version: SNAPSHOT_VERSION,
            cycle,
            components,
        }
    }

    /// Format version of this snapshot.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The device cycle at which the snapshot was captured.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The snapshot's components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Looks up a component by name.
    pub fn component(&self, name: &str) -> Option<&Component> {
        self.components.iter().find(|c| c.name == name)
    }

    /// True when every component stores its full contents (no parent
    /// needed to restore).
    pub fn is_raw(&self) -> bool {
        self.components
            .iter()
            .all(|c| matches!(c.payload, Payload::Raw(_)))
    }

    /// Re-encodes this (raw) snapshot as a delta against `parent` (also
    /// raw): components whose hashes match the parent become [`Payload::Same`],
    /// equal-length components become byte-run [`Payload::Delta`]s, and
    /// anything without a usable parent counterpart stays raw. Hashes and
    /// cycle are preserved, so [`SocSnapshot::state_hash`] is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not raw (delta chains deeper than one level are
    /// not supported; materialize first).
    pub fn delta_from(&self, parent: &SocSnapshot) -> SocSnapshot {
        let components = self
            .components
            .iter()
            .map(|c| {
                let Payload::Raw(bytes) = &c.payload else {
                    panic!("delta_from requires a raw snapshot (component {})", c.name);
                };
                let payload = match parent.component(&c.name) {
                    Some(p) if p.hash == c.hash => Payload::Same,
                    Some(Component {
                        payload: Payload::Raw(parent_bytes),
                        ..
                    }) if parent_bytes.len() == bytes.len() => Payload::Delta {
                        len: bytes.len() as u64,
                        ops: diff_runs(parent_bytes, bytes),
                    },
                    _ => Payload::Raw(bytes.clone()),
                };
                Component {
                    name: c.name.clone(),
                    hash: c.hash,
                    payload,
                }
            })
            .collect();
        SocSnapshot {
            version: self.version,
            cycle: self.cycle,
            components,
        }
    }

    /// Resolves `Same`/`Delta` payloads against `parent` and returns a raw
    /// snapshot. Raw snapshots pass through unchanged (parent unused).
    ///
    /// # Panics
    ///
    /// Panics if a non-raw component has no raw parent counterpart, or if a
    /// reconstructed component fails its recorded content hash.
    pub fn materialize(&self, parent: Option<&SocSnapshot>) -> SocSnapshot {
        let components = self
            .components
            .iter()
            .map(|c| {
                let bytes = match &c.payload {
                    Payload::Raw(b) => b.clone(),
                    Payload::Same => parent_raw(parent, &c.name).to_vec(),
                    Payload::Delta { len, ops } => {
                        let mut bytes = parent_raw(parent, &c.name).to_vec();
                        assert_eq!(
                            bytes.len() as u64,
                            *len,
                            "delta length mismatch for component {}",
                            c.name
                        );
                        for op in ops {
                            let start = op.offset as usize;
                            bytes[start..start + op.bytes.len()].copy_from_slice(&op.bytes);
                        }
                        bytes
                    }
                };
                assert_eq!(
                    fnv1a64(&bytes),
                    c.hash,
                    "content hash mismatch materializing component {}",
                    c.name
                );
                Component {
                    name: c.name.clone(),
                    hash: c.hash,
                    payload: Payload::Raw(bytes),
                }
            })
            .collect();
        SocSnapshot {
            version: self.version,
            cycle: self.cycle,
            components,
        }
    }

    /// Restores this (raw) snapshot onto a device built with the identical
    /// configuration: memory images first, then the structured runtime
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot is not raw, the format version is unknown,
    /// or the device's configuration does not structurally match (wrong
    /// core count, memory sizes, fitted options).
    pub fn restore_into(&self, dev: &mut Device) {
        assert_eq!(
            self.version, SNAPSHOT_VERSION,
            "unsupported snapshot version"
        );
        // Telemetry lives outside DeviceState, so the attachment (and this
        // span) survives the restore itself.
        let span_t0 = dev.telemetry().map(|_| std::time::Instant::now());
        for (name, id) in [
            ("soc/flash", MemoryId::Flash),
            ("soc/sram", MemoryId::Sram),
            ("soc/emem", MemoryId::Emem),
        ] {
            if let Some(c) = self.component(name) {
                let Payload::Raw(image) = &c.payload else {
                    panic!("restore_into requires a raw snapshot (component {name})");
                };
                dev.soc_mut().restore_memory_image(id, image);
            }
        }
        let c = self
            .component("device/state")
            .expect("snapshot has a device/state component");
        let Payload::Raw(bytes) = &c.payload else {
            panic!("restore_into requires a raw snapshot (component device/state)");
        };
        let json = std::str::from_utf8(bytes).expect("device state is UTF-8 JSON");
        let state: DeviceState = serde_json::from_str(json).expect("device state deserializes");
        dev.restore_state(&state);
        if let (Some(t0), Some(tel)) = (span_t0, dev.telemetry()) {
            tel.spans().record(
                mcds_telemetry::Subsystem::Restore,
                self.cycle,
                self.cycle,
                t0.elapsed().as_nanos() as u64,
            );
        }
    }

    /// A single hash summarizing the whole snapshot: the capture cycle plus
    /// every component's name and content hash, in capture order. Stable
    /// across delta encoding and materialization.
    pub fn state_hash(&self) -> u64 {
        let mut h = crate::hash::extend_fnv1a64(0xcbf2_9ce4_8422_2325, &self.cycle.to_le_bytes());
        for c in &self.components {
            h = crate::hash::extend_fnv1a64(h, c.name.as_bytes());
            h = crate::hash::extend_fnv1a64(h, &c.hash.to_le_bytes());
        }
        h
    }

    /// Total content bytes stored across all components (see
    /// [`Payload::stored_bytes`]) — the cheap size metric used when
    /// comparing raw against delta snapshots.
    pub fn stored_bytes(&self) -> usize {
        self.components
            .iter()
            .map(|c| c.payload.stored_bytes())
            .sum()
    }

    /// The exact size of the snapshot serialized to JSON. Exercises the
    /// full persistence path and is accordingly much more expensive than
    /// [`SocSnapshot::stored_bytes`].
    pub fn serialized_size(&self) -> usize {
        serde_json::to_string(self)
            .expect("snapshot serializes infallibly")
            .len()
    }

    /// An accounting size for the snapshot held in memory: content bytes
    /// plus per-component framing (name and hash). This is what memory
    /// budgets (the farm's eviction policy) charge per resident snapshot.
    pub fn size_bytes(&self) -> usize {
        self.components
            .iter()
            .map(|c| c.name.len() + 8 + c.payload.stored_bytes())
            .sum()
    }

    /// Recomputes every raw component's content hash and checks it against
    /// the hash recorded at capture time. `Delta`/`Same` payloads are
    /// skipped (their hashes are checked when materialized against a
    /// parent).
    ///
    /// # Errors
    ///
    /// [`SnapshotIoError::Corrupt`] naming the first failing component.
    pub fn verify_integrity(&self) -> Result<(), SnapshotIoError> {
        for c in &self.components {
            if let Payload::Raw(bytes) = &c.payload {
                let found = fnv1a64(bytes);
                if found != c.hash {
                    return Err(SnapshotIoError::Corrupt {
                        component: c.name.clone(),
                        expected: c.hash,
                        found,
                    });
                }
            }
        }
        Ok(())
    }

    /// Writes the snapshot as JSON to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// [`SnapshotIoError::Json`] or [`SnapshotIoError::Io`].
    pub fn save(&self, path: &Path) -> Result<(), SnapshotIoError> {
        let json = serde_json::to_string(self).map_err(|source| SnapshotIoError::Json {
            path: path.to_path_buf(),
            source,
        })?;
        let io_err = |source| SnapshotIoError::Io {
            path: path.to_path_buf(),
            source,
        };
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(io_err)?;
        }
        std::fs::write(path, json).map_err(io_err)
    }

    /// Reads a snapshot back from `path`, checking the format version and
    /// every component's content hash — a snapshot that survives `load` is
    /// guaranteed restorable exactly as captured.
    ///
    /// # Errors
    ///
    /// [`SnapshotIoError::Io`] / [`SnapshotIoError::Json`] on unreadable or
    /// malformed files, [`SnapshotIoError::Version`] on an incompatible
    /// format, [`SnapshotIoError::Corrupt`] when contents fail their
    /// recorded hash.
    pub fn load(path: &Path) -> Result<SocSnapshot, SnapshotIoError> {
        let json = std::fs::read_to_string(path).map_err(|source| SnapshotIoError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let snap: SocSnapshot =
            serde_json::from_str(&json).map_err(|source| SnapshotIoError::Json {
                path: path.to_path_buf(),
                source,
            })?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(SnapshotIoError::Version {
                found: snap.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        snap.verify_integrity()?;
        Ok(snap)
    }
}

fn raw_component(name: &str, bytes: Vec<u8>) -> Component {
    Component {
        name: name.to_string(),
        hash: fnv1a64(&bytes),
        payload: Payload::Raw(bytes),
    }
}

fn parent_raw<'a>(parent: Option<&'a SocSnapshot>, name: &str) -> &'a [u8] {
    let parent = parent.unwrap_or_else(|| panic!("component {name} needs a parent snapshot"));
    match parent.component(name) {
        Some(Component {
            payload: Payload::Raw(bytes),
            ..
        }) => bytes,
        Some(_) => panic!("parent component {name} is not raw; materialize the parent first"),
        None => panic!("parent snapshot lacks component {name}"),
    }
}

/// Computes byte-run replacements turning `parent` into `child` (equal
/// lengths). Runs separated by short equal gaps are merged.
fn diff_runs(parent: &[u8], child: &[u8]) -> Vec<DeltaOp> {
    debug_assert_eq!(parent.len(), child.len());
    let mut ops: Vec<DeltaOp> = Vec::new();
    let mut i = 0;
    while i < child.len() {
        if parent[i] == child[i] {
            i += 1;
            continue;
        }
        let start = i;
        let mut end = i + 1;
        // Extend the run across difference bytes, absorbing equal gaps of
        // at most DELTA_MERGE_GAP bytes.
        let mut j = end;
        while j < child.len() {
            if parent[j] != child[j] {
                j += 1;
                end = j;
            } else {
                let gap_start = j;
                while j < child.len() && parent[j] == child[j] && j - gap_start < DELTA_MERGE_GAP {
                    j += 1;
                }
                if j < child.len() && parent[j] != child[j] {
                    continue; // gap was short; keep extending the same op
                }
                break;
            }
        }
        ops.push(DeltaOp {
            offset: start as u64,
            bytes: child[start..end].to_vec(),
        });
        i = end;
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(parent: &[u8], ops: &[DeltaOp]) -> Vec<u8> {
        let mut out = parent.to_vec();
        for op in ops {
            let s = op.offset as usize;
            out[s..s + op.bytes.len()].copy_from_slice(&op.bytes);
        }
        out
    }

    #[test]
    fn diff_roundtrips_arbitrary_changes() {
        let parent: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let mut child = parent.clone();
        child[0] = 0xFF;
        child[100..104].copy_from_slice(&[1, 2, 3, 4]);
        child[110] ^= 0x80; // within merge gap of the previous run
        child[4095] = 0xAA;
        let ops = diff_runs(&parent, &child);
        assert_eq!(apply(&parent, &ops), child);
        // The 100..104 and 110 changes merge into one op (gap of 6 < 16).
        assert_eq!(ops.len(), 3, "{ops:?}");
    }

    #[test]
    fn diff_of_identical_images_is_empty() {
        let img = vec![7u8; 1000];
        assert!(diff_runs(&img, &img).is_empty());
    }

    #[test]
    fn diff_handles_trailing_difference() {
        let parent = vec![0u8; 64];
        let mut child = parent.clone();
        for b in child[60..].iter_mut() {
            *b = 9;
        }
        let ops = diff_runs(&parent, &child);
        assert_eq!(apply(&parent, &ops), child);
    }

    fn synthetic_snapshot() -> SocSnapshot {
        SocSnapshot {
            version: SNAPSHOT_VERSION,
            cycle: 1234,
            components: vec![
                raw_component("device/state", b"{\"fake\":true}".to_vec()),
                raw_component("soc/sram", (0..512u32).map(|i| (i % 7) as u8).collect()),
            ],
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mcds-snapshot-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn save_load_round_trips_and_preserves_state_hash() {
        let snap = synthetic_snapshot();
        let path = temp_path("roundtrip.json");
        snap.save(&path).expect("save");
        let loaded = SocSnapshot::load(&path).expect("load");
        assert_eq!(loaded, snap);
        assert_eq!(loaded.state_hash(), snap.state_hash());
        assert!(snap.size_bytes() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_corrupted_contents() {
        let mut snap = synthetic_snapshot();
        // Flip a content byte without updating the recorded hash — exactly
        // what on-disk corruption between save and load looks like.
        let Payload::Raw(bytes) = &mut snap.components[1].payload else {
            unreachable!()
        };
        bytes[17] ^= 0x40;
        let path = temp_path("corrupt.json");
        snap.save(&path).expect("save");
        match SocSnapshot::load(&path) {
            Err(SnapshotIoError::Corrupt { component, .. }) => assert_eq!(component, "soc/sram"),
            other => panic!("expected Corrupt error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_future_version() {
        let mut snap = synthetic_snapshot();
        snap.version = SNAPSHOT_VERSION + 1;
        let path = temp_path("version.json");
        snap.save(&path).expect("save");
        match SocSnapshot::load(&path) {
            Err(SnapshotIoError::Version { found, expected }) => {
                assert_eq!(found, SNAPSHOT_VERSION + 1);
                assert_eq!(expected, SNAPSHOT_VERSION);
            }
            other => panic!("expected Version error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
