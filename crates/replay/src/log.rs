//! The record-replay input log: every nondeterministic input a device run
//! consumes, stamped with the cycle at which it was applied.
//!
//! The device model itself is fully deterministic — the only sources of
//! divergence between two runs are the inputs fed in from outside the
//! package: sensor stimulus on the peripheral ports, the external
//! trigger-in pins, fault plans installed on the debug links, and debug
//! commands issued by the host. Recording those four in an [`InputLog`]
//! and re-applying them with the same convention makes
//! `replay(snapshot, log)` bit-identical to the original run.
//!
//! The apply convention is fixed: at the top of each driver iteration,
//! every event with `cycle <= now` is applied (in log order) *before* the
//! device steps. Checkpoints are captured before that cycle's events are
//! applied, so resuming from a checkpoint at cycle `C` replays events with
//! `cycle >= C` and skips the rest.

use mcds_psi::{DebugOp, Device, FaultPlan, InterfaceKind};
use mcds_soc::sink::{CycleSink, NullSink};
use mcds_workloads::stimulus::Profile;

/// One recorded nondeterministic input.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone)]
pub enum InputEvent {
    /// A sensor-port stimulus write (`Soc::periph_mut().set_input`).
    Stimulus {
        /// Cycle at which the value was applied.
        cycle: u64,
        /// Peripheral input port index.
        port: usize,
        /// The raw sensor value.
        value: u32,
    },
    /// An external trigger-in pin level change.
    TriggerIn {
        /// Cycle at which the level was driven.
        cycle: u64,
        /// New trigger-in level bitmask.
        level: u32,
    },
    /// A fault plan installed on a debug link.
    Fault {
        /// Cycle at which the plan was installed.
        cycle: u64,
        /// The link.
        iface: InterfaceKind,
        /// The (deterministic, seeded) plan.
        plan: FaultPlan,
    },
    /// A fault plan removed from a debug link.
    ClearFault {
        /// Cycle at which the plan was cleared.
        cycle: u64,
        /// The link.
        iface: InterfaceKind,
    },
    /// A host debug command issued over a link. Replaying it advances
    /// simulated time exactly as the original did (link latency, transfer,
    /// driver overhead), so subsequent event timestamps still line up.
    Debug {
        /// Cycle at which the host issued the command.
        cycle: u64,
        /// The link it was issued over.
        iface: InterfaceKind,
        /// The command.
        op: DebugOp,
    },
}

impl InputEvent {
    /// The cycle at which this input was applied in the original run.
    pub fn cycle(&self) -> u64 {
        match self {
            InputEvent::Stimulus { cycle, .. }
            | InputEvent::TriggerIn { cycle, .. }
            | InputEvent::Fault { cycle, .. }
            | InputEvent::ClearFault { cycle, .. }
            | InputEvent::Debug { cycle, .. } => *cycle,
        }
    }

    /// Applies this input to the device. Debug commands advance simulated
    /// time; their result is discarded (any error they produced originally
    /// — e.g. a fault-injected link timeout — reproduces identically).
    pub fn apply(&self, dev: &mut Device) {
        match self {
            InputEvent::Stimulus { port, value, .. } => {
                dev.soc_mut().periph_mut().set_input(*port, *value);
            }
            InputEvent::TriggerIn { level, .. } => {
                dev.soc_mut().periph_mut().set_trigger_in(*level);
            }
            InputEvent::Fault { iface, plan, .. } => {
                dev.set_fault_plan(*iface, plan.clone());
            }
            InputEvent::ClearFault { iface, .. } => {
                dev.clear_fault_plan(*iface);
            }
            InputEvent::Debug { iface, op, .. } => {
                let _ = dev.execute(*iface, op.clone());
            }
        }
    }
}

/// A cycle-ordered log of every nondeterministic input to a run.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Default)]
pub struct InputLog {
    events: Vec<InputEvent>,
}

impl InputLog {
    /// An empty log.
    pub fn new() -> InputLog {
        InputLog::default()
    }

    /// Builds a log from a stimulus profile: one [`InputEvent::Stimulus`]
    /// per sample, in sample order.
    pub fn from_profile(profile: &Profile) -> InputLog {
        let mut log = InputLog::new();
        for s in profile.samples() {
            log.record(InputEvent::Stimulus {
                cycle: s.cycle,
                port: s.port,
                value: s.value,
            });
        }
        log
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics if the event's cycle precedes the last recorded one — the
    /// log must stay sorted for the replay cursor to be correct.
    pub fn record(&mut self, event: InputEvent) {
        if let Some(last) = self.events.last() {
            assert!(
                event.cycle() >= last.cycle(),
                "input log must be recorded in cycle order ({} after {})",
                event.cycle(),
                last.cycle()
            );
        }
        self.events.push(event);
    }

    /// The recorded events, in cycle order.
    pub fn events(&self) -> &[InputEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A replay cursor over an [`InputLog`].
pub struct Replayer<'a> {
    events: &'a [InputEvent],
    next: usize,
}

impl<'a> Replayer<'a> {
    /// A cursor positioned at the start of the log (replay from reset).
    pub fn new(log: &'a InputLog) -> Replayer<'a> {
        Replayer {
            events: log.events(),
            next: 0,
        }
    }

    /// A cursor for resuming from a snapshot captured at `cycle`: events
    /// before the snapshot are already reflected in the restored state and
    /// are skipped; events at or after it are still pending (checkpoints
    /// are captured before their own cycle's events are applied).
    pub fn resume_at(log: &'a InputLog, cycle: u64) -> Replayer<'a> {
        let next = log.events().partition_point(|e| e.cycle() < cycle);
        Replayer {
            events: log.events(),
            next,
        }
    }

    /// Applies every pending event whose cycle is at or before the
    /// device's current cycle; returns how many were applied. Debug-command
    /// events may advance the device, which can make further events due —
    /// those are applied too, exactly as a live host driver would.
    pub fn apply_due(&mut self, dev: &mut Device) -> usize {
        let mut applied = 0;
        while self.next < self.events.len() && self.events[self.next].cycle() <= dev.soc().cycle() {
            let ev = &self.events[self.next];
            self.next += 1;
            ev.apply(dev);
            applied += 1;
        }
        applied
    }

    /// True when every event has been applied.
    pub fn is_finished(&self) -> bool {
        self.next >= self.events.len()
    }

    /// Index of the next pending event.
    pub fn position(&self) -> usize {
        self.next
    }
}

/// Steps `dev` forward to `until` cycles, applying due log events before
/// each step (the canonical record/replay driver loop). Stops early if a
/// replayed debug command overshoots `until`. Streams nothing — a
/// replayed run is fully determined by the log, so observation is
/// optional; use [`run_with_events_into`] to watch it live.
pub fn run_with_events(dev: &mut Device, replayer: &mut Replayer<'_>, until: u64) {
    run_with_events_into(dev, replayer, until, &mut NullSink);
}

/// Like [`run_with_events`], but pushes each stepped cycle's events into
/// `sink`, so a replayed run can be observed live (analyzers, timelines)
/// without materialising records. Cycles advanced inside replayed debug
/// commands are internal to the device and are not streamed — the sink
/// sees exactly the cycles this driver loop steps.
pub fn run_with_events_into<S: CycleSink + ?Sized>(
    dev: &mut Device,
    replayer: &mut Replayer<'_>,
    until: u64,
    sink: &mut S,
) {
    while dev.soc().cycle() < until {
        replayer.apply_due(dev);
        if dev.soc().cycle() >= until {
            break;
        }
        dev.step_into(sink);
    }
}
