//! Content hashing for snapshots and replay verification.
//!
//! FNV-1a is used throughout: it is tiny, dependency-free and fully
//! deterministic across platforms, which is all a replay checker needs —
//! these hashes detect divergence, they are not cryptographic.

use mcds_psi::Device;
use mcds_soc::soc::MemoryId;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes a byte slice with 64-bit FNV-1a.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    extend_fnv1a64(FNV_OFFSET, bytes)
}

/// Folds more bytes into a running FNV-1a hash.
pub fn extend_fnv1a64(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Hashes a device's complete architectural state: the serialized runtime
/// state (CPU registers and pipeline, bus, MCDS, sink, links, service core)
/// plus every fitted memory image.
///
/// Two devices with equal hashes are observably indistinguishable; replay
/// verification compares this hash between the original and re-executed run.
pub fn device_state_hash(dev: &Device) -> u64 {
    let state =
        serde_json::to_string(&dev.save_state()).expect("device state serializes infallibly");
    let mut hash = fnv1a64(state.as_bytes());
    for id in [MemoryId::Flash, MemoryId::Sram, MemoryId::Emem] {
        if let Some(image) = dev.soc().memory_image(id) {
            hash = extend_fnv1a64(hash, &image);
        }
    }
    hash
}

/// The raw encoded trace bytes currently stored in the device's trace sink,
/// or `None` when the variant has no emulation RAM. Replay verification
/// decodes and compares this stream between runs.
pub fn trace_bytes(dev: &Device) -> Option<Vec<u8>> {
    dev.soc()
        .mapper()
        .emem()
        .map(|emem| dev.sink().read_back(emem))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn extend_is_equivalent_to_concatenation() {
        let h1 = fnv1a64(b"hello world");
        let h2 = extend_fnv1a64(fnv1a64(b"hello "), b"world");
        assert_eq!(h1, h2);
    }
}
