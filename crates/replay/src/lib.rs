#![warn(missing_docs)]

//! # mcds-replay — deterministic snapshot, record-replay and time-travel
//!
//! The device model in this workspace is cycle-accurate and fully
//! deterministic: given the same program, the same external inputs and the
//! same debug traffic, two runs are bit-identical. This crate turns that
//! property into debugging leverage, the way an emulator-based calibration
//! flow would:
//!
//! * [`snapshot`] — versioned, content-hashed snapshots of the whole
//!   device ([`SocSnapshot`]): structured runtime state plus raw memory
//!   images, with byte-run delta compression against a parent snapshot;
//! * [`log`] — the record-replay input log ([`InputLog`]): every
//!   nondeterministic input (sensor stimulus, trigger pins, link fault
//!   plans, host debug commands) stamped with its apply cycle, so
//!   `replay(snapshot, log)` reproduces a run exactly;
//! * [`checkpoint`] — a bounded checkpoint ring ([`CheckpointRing`])
//!   enabling time travel: seeking to an arbitrary cycle or stepping a
//!   core *backwards* by restoring the nearest checkpoint and
//!   re-executing forward;
//! * [`hash`] — FNV-1a content hashing and the canonical
//!   [`device_state_hash`] used to verify that a replayed run converged
//!   on the original, bit for bit;
//! * [`repro`] — self-contained failure repro artifacts
//!   ([`ReproArtifact`]): a shrunk scenario, its input log and expected
//!   final state hash serialized to one JSON file that `cargo test` can
//!   replay bit-identically.
//!
//! ```
//! use mcds_psi::device::{DeviceBuilder, DeviceVariant};
//! use mcds_replay::{device_state_hash, InputLog, Replayer, SocSnapshot};
//! use mcds_soc::asm::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let build = || {
//!     let mut d = DeviceBuilder::new(DeviceVariant::EdSideBooster).cores(1).build();
//!     d.soc_mut().load_program(
//!         &assemble(".org 0x80000000\nloop: addi r1, r1, 1\nj loop").unwrap());
//!     d
//! };
//! let mut dev = build();
//! let log = InputLog::new();
//! let mut rec = Replayer::new(&log);
//! mcds_replay::run_with_events(&mut dev, &mut rec, 500);
//! let snap = SocSnapshot::capture(&dev);
//! mcds_replay::run_with_events(&mut dev, &mut rec, 1_000);
//! let final_hash = device_state_hash(&dev);
//!
//! // Replay the second half from the snapshot on a fresh device.
//! let mut twin = build();
//! snap.restore_into(&mut twin);
//! let mut rep = Replayer::resume_at(&log, snap.cycle());
//! mcds_replay::run_with_events(&mut twin, &mut rep, 1_000);
//! assert_eq!(device_state_hash(&twin), final_hash);
//! # Ok(())
//! # }
//! ```

pub mod checkpoint;
pub mod fleet;
pub mod hash;
pub mod log;
pub mod repro;
pub mod snapshot;

pub use checkpoint::{Checkpoint, CheckpointRing};
pub use fleet::{FleetSnapshot, FLEET_SNAPSHOT_VERSION};
pub use hash::{device_state_hash, extend_fnv1a64, fnv1a64, trace_bytes};
pub use log::{run_with_events, run_with_events_into, InputEvent, InputLog, Replayer};
pub use repro::{ReproArtifact, ReproError, REPRO_VERSION};
pub use snapshot::{Component, DeltaOp, Payload, SnapshotIoError, SocSnapshot, SNAPSHOT_VERSION};
