//! Minimal deterministic repro artifacts: a failing run, shrunk and
//! serialized so `cargo test` can replay it forever after.
//!
//! A fault campaign that catches a panic, an invariant violation or a
//! record/replay divergence distils the failing scenario into a
//! [`ReproArtifact`]: the scenario description (opaque JSON, owned by the
//! campaign layer), the compiled [`InputLog`] of every nondeterministic
//! input, the cycle budget, the expected final state hash, and optionally
//! the end-state [`SocSnapshot`] for forensics. The artifact is a single
//! JSON file; loading it back and replaying the log must reproduce the
//! failure bit-identically.
//!
//! Everything here returns typed [`ReproError`]s instead of panicking: a
//! repro that fails to serialize must degrade the campaign gracefully
//! (one lost artifact), not abort a multi-hour run.

use crate::log::InputLog;
use crate::snapshot::SocSnapshot;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Artifact format version; bumped on incompatible layout changes.
pub const REPRO_VERSION: u32 = 2;

/// A serializable, replayable description of one failing run.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone)]
pub struct ReproArtifact {
    /// Artifact format version ([`REPRO_VERSION`] at capture time).
    pub version: u32,
    /// Failure class (`"panic"`, `"invariant"`, `"divergence"`).
    pub kind: String,
    /// Human-readable failure detail (panic message, violated invariant).
    pub detail: String,
    /// The scenario seed the campaign generated the failing run from.
    pub seed: u64,
    /// Cycle budget of the (shrunk) failing run.
    pub cycles: u64,
    /// Final [`crate::device_state_hash`] the replay must converge on.
    pub expected_state_hash: u64,
    /// The campaign-level scenario, serialized as JSON. Opaque to this
    /// crate: the campaign layer knows how to rebuild a device from it.
    pub scenario_json: String,
    /// The compiled input log — every nondeterministic input of the run.
    pub log: InputLog,
    /// End-state snapshot of the failing run, for post-mortem inspection
    /// without re-execution.
    pub snapshot: Option<SocSnapshot>,
    /// Flight-recorder dump: the last obs-journal events leading up to
    /// the failure, as a JSON array (opaque to this crate; empty string
    /// when no journal was attached). Version 2 of the format added this.
    pub flight_recorder: String,
}

/// A typed error from saving or loading a repro artifact.
#[derive(Debug)]
pub enum ReproError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The artifact failed to (de)serialize.
    Json {
        /// The path involved (empty for in-memory round trips).
        path: PathBuf,
        /// The underlying serialization error.
        source: serde_json::Error,
    },
    /// The artifact was written by an incompatible format version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
}

impl fmt::Display for ReproError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReproError::Io { path, source } => {
                write!(f, "repro I/O failed at {}: {source}", path.display())
            }
            ReproError::Json { path, source } => {
                write!(f, "repro JSON failed at {}: {source}", path.display())
            }
            ReproError::Version { found, expected } => {
                write!(f, "repro version {found} incompatible with {expected}")
            }
        }
    }
}

impl std::error::Error for ReproError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReproError::Io { source, .. } => Some(source),
            ReproError::Json { source, .. } => Some(source),
            ReproError::Version { .. } => None,
        }
    }
}

impl ReproArtifact {
    /// Builds an artifact at the current [`REPRO_VERSION`], without a
    /// snapshot (attach one with [`ReproArtifact::with_snapshot`]).
    pub fn new(
        kind: impl Into<String>,
        detail: impl Into<String>,
        seed: u64,
        cycles: u64,
        expected_state_hash: u64,
        scenario_json: String,
        log: InputLog,
    ) -> ReproArtifact {
        ReproArtifact {
            version: REPRO_VERSION,
            kind: kind.into(),
            detail: detail.into(),
            seed,
            cycles,
            expected_state_hash,
            scenario_json,
            log,
            snapshot: None,
            flight_recorder: String::new(),
        }
    }

    /// Attaches the failing run's end-state snapshot.
    #[must_use]
    pub fn with_snapshot(mut self, snapshot: SocSnapshot) -> ReproArtifact {
        self.snapshot = Some(snapshot);
        self
    }

    /// Attaches a flight-recorder dump (a JSON array of obs-journal
    /// records, opaque to this crate).
    #[must_use]
    pub fn with_flight_recorder(mut self, json: String) -> ReproArtifact {
        self.flight_recorder = json;
        self
    }

    /// Serializes the artifact to a JSON string.
    ///
    /// # Errors
    ///
    /// [`ReproError::Json`] if serialization fails.
    pub fn to_json(&self) -> Result<String, ReproError> {
        serde_json::to_string(self).map_err(|source| ReproError::Json {
            path: PathBuf::new(),
            source,
        })
    }

    /// Parses an artifact from a JSON string and checks its version.
    ///
    /// # Errors
    ///
    /// [`ReproError::Json`] on malformed input, [`ReproError::Version`] on
    /// an incompatible format version.
    pub fn from_json(json: &str) -> Result<ReproArtifact, ReproError> {
        let artifact: ReproArtifact =
            serde_json::from_str(json).map_err(|source| ReproError::Json {
                path: PathBuf::new(),
                source,
            })?;
        if artifact.version != REPRO_VERSION {
            return Err(ReproError::Version {
                found: artifact.version,
                expected: REPRO_VERSION,
            });
        }
        Ok(artifact)
    }

    /// Writes the artifact as JSON to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// [`ReproError::Io`] or [`ReproError::Json`]; never panics.
    pub fn save(&self, path: &Path) -> Result<(), ReproError> {
        let json = self.to_json().map_err(|e| match e {
            ReproError::Json { source, .. } => ReproError::Json {
                path: path.to_path_buf(),
                source,
            },
            other => other,
        })?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|source| ReproError::Io {
                    path: parent.to_path_buf(),
                    source,
                })?;
            }
        }
        std::fs::write(path, json).map_err(|source| ReproError::Io {
            path: path.to_path_buf(),
            source,
        })
    }

    /// Reads an artifact back from `path`.
    ///
    /// # Errors
    ///
    /// [`ReproError::Io`], [`ReproError::Json`] or [`ReproError::Version`].
    pub fn load(path: &Path) -> Result<ReproArtifact, ReproError> {
        let json = std::fs::read_to_string(path).map_err(|source| ReproError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        ReproArtifact::from_json(&json).map_err(|e| match e {
            ReproError::Json { source, .. } => ReproError::Json {
                path: path.to_path_buf(),
                source,
            },
            other => other,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::InputEvent;
    use mcds_psi::faults::FaultPlan;
    use mcds_psi::interface::InterfaceKind;

    fn sample_artifact() -> ReproArtifact {
        let mut log = InputLog::new();
        log.record(InputEvent::Fault {
            cycle: 100,
            iface: InterfaceKind::Jtag,
            plan: FaultPlan::lossy(7, 50),
        });
        log.record(InputEvent::Stimulus {
            cycle: 200,
            port: 2,
            value: 42,
        });
        ReproArtifact::new(
            "invariant",
            "shared counter 361 != expected 400",
            0xBAD,
            60_000,
            0xDEAD_BEEF,
            "{\"workload\":\"RaceBuggy\"}".to_string(),
            log,
        )
        .with_flight_recorder("[{\"seq\":0}]".to_string())
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let a = sample_artifact();
        let back = ReproArtifact::from_json(&a.to_json().unwrap()).unwrap();
        assert_eq!(back.version, REPRO_VERSION);
        assert_eq!(back.kind, a.kind);
        assert_eq!(back.detail, a.detail);
        assert_eq!(back.seed, a.seed);
        assert_eq!(back.cycles, a.cycles);
        assert_eq!(back.expected_state_hash, a.expected_state_hash);
        assert_eq!(back.scenario_json, a.scenario_json);
        assert_eq!(back.log.len(), a.log.len());
        assert_eq!(back.flight_recorder, a.flight_recorder);
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let dir = std::path::Path::new("target/test-repro-artifacts");
        let path = dir.join("nested/deeper/repro.json");
        let a = sample_artifact();
        a.save(&path).unwrap();
        let back = ReproArtifact::load(&path).unwrap();
        assert_eq!(back.expected_state_hash, a.expected_state_hash);
        assert_eq!(back.log.len(), a.log.len());
    }

    #[test]
    fn load_errors_are_typed_not_panics() {
        let missing = ReproArtifact::load(Path::new("target/does/not/exist.json"));
        assert!(matches!(missing, Err(ReproError::Io { .. })));
        let garbage = ReproArtifact::from_json("not json at all");
        assert!(matches!(garbage, Err(ReproError::Json { .. })));
        let mut stale = sample_artifact();
        stale.version = REPRO_VERSION + 9;
        let json = serde_json::to_string(&stale).unwrap();
        assert!(matches!(
            ReproArtifact::from_json(&json),
            Err(ReproError::Version { found, expected })
                if found == REPRO_VERSION + 9 && expected == REPRO_VERSION
        ));
    }
}
