//! Periodic checkpoints for time-travel: a bounded ring of full snapshots
//! plus per-core retired-instruction counts, so `seek` and `reverse_step`
//! can restore the nearest checkpoint and re-execute forward instead of
//! replaying from reset.

use crate::snapshot::SocSnapshot;
use mcds_psi::Device;
use std::collections::VecDeque;

/// One checkpoint: a raw snapshot plus the per-core retired-instruction
/// counts at capture time (used by `reverse_step` to pick the checkpoint
/// that precedes a target instruction).
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone)]
pub struct Checkpoint {
    cycle: u64,
    retired: Vec<u64>,
    snapshot: SocSnapshot,
}

impl Checkpoint {
    /// Captures a checkpoint of the device right now.
    pub fn capture(dev: &Device) -> Checkpoint {
        let retired = (0..dev.soc().core_count())
            .map(|i| dev.soc().core(mcds_soc::event::CoreId(i as u8)).retired())
            .collect();
        Checkpoint {
            cycle: dev.soc().cycle(),
            retired,
            snapshot: SocSnapshot::capture(dev),
        }
    }

    /// The cycle at which the checkpoint was captured.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Retired-instruction count per core at capture time.
    pub fn retired(&self) -> &[u64] {
        &self.retired
    }

    /// The underlying snapshot.
    pub fn snapshot(&self) -> &SocSnapshot {
        &self.snapshot
    }

    /// Restores the checkpoint onto a structurally identical device.
    pub fn restore_into(&self, dev: &mut Device) {
        self.snapshot.restore_into(dev);
    }
}

/// A bounded ring of periodic checkpoints. When full, the oldest entry is
/// evicted — time-travel range is bounded by `every * capacity` cycles
/// behind the live device, plus whatever base snapshot the caller keeps.
#[derive(Debug, Clone)]
pub struct CheckpointRing {
    every: u64,
    capacity: usize,
    entries: VecDeque<Checkpoint>,
}

impl CheckpointRing {
    /// A ring capturing roughly every `every` cycles, keeping at most
    /// `capacity` checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero or `capacity` is zero.
    pub fn new(every: u64, capacity: usize) -> CheckpointRing {
        assert!(every > 0, "checkpoint interval must be positive");
        assert!(capacity > 0, "checkpoint ring needs capacity");
        CheckpointRing {
            every,
            capacity,
            entries: VecDeque::with_capacity(capacity),
        }
    }

    /// The configured checkpoint interval in cycles.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// True when a checkpoint is due at `cycle` (at least `every` cycles
    /// since the newest entry, or the ring is empty).
    pub fn due(&self, cycle: u64) -> bool {
        match self.entries.back() {
            Some(cp) => cycle >= cp.cycle() + self.every,
            None => true,
        }
    }

    /// The earliest cycle at or after `now` at which a checkpoint will be
    /// due — the batching boundary for drivers that fast-forward between
    /// checkpoints instead of polling [`CheckpointRing::due`] per cycle.
    pub fn next_due_at(&self, now: u64) -> u64 {
        match self.entries.back() {
            Some(cp) => (cp.cycle() + self.every).max(now),
            None => now,
        }
    }

    /// Captures a checkpoint if one is due at the device's current cycle;
    /// returns whether one was taken. Call at the top of the driver loop,
    /// before applying that cycle's input events.
    pub fn observe(&mut self, dev: &Device) -> bool {
        if !self.due(dev.soc().cycle()) {
            return false;
        }
        let cp = Checkpoint::capture(dev);
        if let Some(tel) = dev.telemetry() {
            let bytes = cp.snapshot().stored_bytes() as u64;
            let reg = tel.registry();
            reg.counter(
                "replay_checkpoints_total",
                "time-travel checkpoints captured",
            )
            .inc();
            reg.counter(
                "replay_checkpoint_bytes_total",
                "cumulative stored bytes across captured checkpoints",
            )
            .add(bytes);
            reg.gauge(
                "replay_checkpoint_bytes",
                "stored size of the most recent checkpoint",
            )
            .set(bytes as f64);
        }
        self.push(cp);
        true
    }

    /// Inserts a checkpoint, evicting the oldest when full.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint is older than the newest entry.
    pub fn push(&mut self, cp: Checkpoint) {
        if let Some(last) = self.entries.back() {
            assert!(
                cp.cycle() >= last.cycle(),
                "checkpoints must be pushed in cycle order"
            );
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(cp);
    }

    /// Number of checkpoints currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no checkpoint has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the checkpoints oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Checkpoint> {
        self.entries.iter()
    }

    /// The newest checkpoint captured at or before `cycle`.
    pub fn nearest_at_or_before(&self, cycle: u64) -> Option<&Checkpoint> {
        self.entries.iter().rev().find(|cp| cp.cycle() <= cycle)
    }

    /// The newest checkpoint where core `core`'s retired count is at most
    /// `target` — the restore point for stepping back to just before
    /// instruction `target + 1`.
    pub fn nearest_with_retired_at_most(&self, core: usize, target: u64) -> Option<&Checkpoint> {
        self.entries
            .iter()
            .rev()
            .find(|cp| cp.retired().get(core).is_some_and(|&r| r <= target))
    }

    /// Drops every checkpoint newer than `cycle` (after a backward seek,
    /// stale future checkpoints must not satisfy later lookups).
    pub fn truncate_after(&mut self, cycle: u64) {
        while self.entries.back().is_some_and(|cp| cp.cycle() > cycle) {
            self.entries.pop_back();
        }
    }
}

#[cfg(test)]
mod telemetry_tests {
    use super::*;
    use mcds_psi::device::{DeviceBuilder, DeviceVariant};
    use mcds_telemetry::{MetricValue, Subsystem, Telemetry};

    #[test]
    fn observe_publishes_checkpoint_metrics_and_spans() {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        dev.attach_telemetry(Telemetry::new());
        let mut ring = CheckpointRing::new(100, 4);
        assert!(ring.observe(&dev));
        dev.run_cycles(150);
        assert!(ring.observe(&dev));
        let cp_bytes = ring.iter().last().unwrap().snapshot().stored_bytes() as u64;

        let snap = dev.telemetry().unwrap().snapshot();
        let metric = |name: &str| {
            snap.metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("metric {name} published"))
                .value
                .clone()
        };
        assert_eq!(metric("replay_checkpoints_total"), MetricValue::Counter(2));
        let MetricValue::Counter(total) = metric("replay_checkpoint_bytes_total") else {
            panic!("counter expected");
        };
        assert!(total >= cp_bytes);
        assert_eq!(
            metric("replay_checkpoint_bytes"),
            MetricValue::Gauge(cp_bytes as f64)
        );
        // Each capture recorded a Snapshot span.
        let snap_spans = snap
            .subsystems
            .iter()
            .find(|s| s.subsystem == Subsystem::Snapshot.name())
            .expect("snapshot span summary present");
        assert_eq!(snap_spans.count, 2);
    }

    #[test]
    fn restore_records_a_restore_span() {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        dev.run_cycles(50);
        let cp = Checkpoint::capture(&dev);
        dev.run_cycles(50);
        dev.attach_telemetry(Telemetry::new());
        cp.restore_into(&mut dev);
        // The attachment survived the restore and saw the span.
        let snap = dev
            .telemetry()
            .expect("telemetry survives restore")
            .snapshot();
        let restore = snap
            .subsystems
            .iter()
            .find(|s| s.subsystem == Subsystem::Restore.name())
            .expect("restore span summary present");
        assert_eq!(restore.count, 1);
    }
}
