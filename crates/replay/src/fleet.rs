//! Fleet snapshots: one artifact holding several named device snapshots
//! plus an opaque fabric-state blob.
//!
//! A virtual vehicle is more than its ECUs — the CAN fabric between them
//! (arbitration state, in-flight frames, gateway queues, fault injectors)
//! is part of the deterministic state and must restore together with the
//! devices or a replay diverges at the first bus access. A
//! [`FleetSnapshot`] therefore bundles:
//!
//! * one [`SocSnapshot`] per member, keyed by the member's name (ECU id);
//! * a `fabric` JSON string the owning fabric serializes and restores
//!   itself — this crate treats it as opaque bytes with a content hash.
//!
//! The same save/load/verify discipline as [`SocSnapshot`] applies: every
//! part is FNV-hashed at capture, re-checked at load, and folded into one
//! [`FleetSnapshot::state_hash`] suitable for bit-identical replay proofs.

use crate::hash::{extend_fnv1a64, fnv1a64};
use crate::snapshot::{SnapshotIoError, SocSnapshot};
use std::path::Path;

/// Fleet snapshot format version; bump on incompatible layout changes.
pub const FLEET_SNAPSHOT_VERSION: u32 = 1;

/// A versioned snapshot of a set of named devices plus their connecting
/// fabric, captured at one fleet cycle.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct FleetSnapshot {
    version: u32,
    cycle: u64,
    members: Vec<(String, SocSnapshot)>,
    fabric_json: String,
    fabric_hash: u64,
}

impl FleetSnapshot {
    /// Assembles a fleet snapshot from per-member snapshots (in fleet
    /// order) and the fabric's serialized state. `cycle` is the fleet
    /// scheduler's own step counter, not any one device's cycle.
    pub fn new(cycle: u64, members: Vec<(String, SocSnapshot)>, fabric_json: String) -> Self {
        let fabric_hash = fnv1a64(fabric_json.as_bytes());
        FleetSnapshot {
            version: FLEET_SNAPSHOT_VERSION,
            cycle,
            members,
            fabric_json,
            fabric_hash,
        }
    }

    /// Format version of this snapshot.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The fleet-scheduler cycle at which the snapshot was captured.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The member snapshots, in fleet order.
    pub fn members(&self) -> &[(String, SocSnapshot)] {
        &self.members
    }

    /// Looks up a member's snapshot by name.
    pub fn member(&self, name: &str) -> Option<&SocSnapshot> {
        self.members.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// The fabric's serialized state, exactly as captured.
    pub fn fabric_json(&self) -> &str {
        &self.fabric_json
    }

    /// One hash over the whole fleet: the capture cycle, then every
    /// member's name and [`SocSnapshot::state_hash`] in order, then the
    /// fabric blob's content hash. Two fleets with this hash equal are in
    /// bit-identical snapshot-visible state.
    pub fn state_hash(&self) -> u64 {
        let mut h = extend_fnv1a64(0xcbf2_9ce4_8422_2325, &self.cycle.to_le_bytes());
        for (name, snap) in &self.members {
            h = extend_fnv1a64(h, name.as_bytes());
            h = extend_fnv1a64(h, &snap.state_hash().to_le_bytes());
        }
        extend_fnv1a64(h, &self.fabric_hash.to_le_bytes())
    }

    /// Accounting size: the sum of member snapshot sizes plus the fabric
    /// blob — what a farm-style memory budget charges per resident vehicle.
    pub fn size_bytes(&self) -> usize {
        self.members
            .iter()
            .map(|(n, s)| n.len() + s.size_bytes())
            .sum::<usize>()
            + self.fabric_json.len()
    }

    /// Checks every member snapshot's component hashes and the fabric
    /// blob's recorded hash.
    ///
    /// # Errors
    ///
    /// [`SnapshotIoError::Corrupt`] naming the first failing part (the
    /// fabric reports as component `fleet/fabric`).
    pub fn verify_integrity(&self) -> Result<(), SnapshotIoError> {
        for (_, snap) in &self.members {
            snap.verify_integrity()?;
        }
        let found = fnv1a64(self.fabric_json.as_bytes());
        if found != self.fabric_hash {
            return Err(SnapshotIoError::Corrupt {
                component: "fleet/fabric".to_string(),
                expected: self.fabric_hash,
                found,
            });
        }
        Ok(())
    }

    /// Writes the fleet snapshot as JSON to `path`, creating parents.
    ///
    /// # Errors
    ///
    /// [`SnapshotIoError::Json`] or [`SnapshotIoError::Io`].
    pub fn save(&self, path: &Path) -> Result<(), SnapshotIoError> {
        let json = serde_json::to_string(self).map_err(|source| SnapshotIoError::Json {
            path: path.to_path_buf(),
            source,
        })?;
        let io_err = |source| SnapshotIoError::Io {
            path: path.to_path_buf(),
            source,
        };
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(io_err)?;
        }
        std::fs::write(path, json).map_err(io_err)
    }

    /// Reads a fleet snapshot back, checking the format version and every
    /// recorded hash.
    ///
    /// # Errors
    ///
    /// [`SnapshotIoError::Io`] / [`SnapshotIoError::Json`] on unreadable
    /// or malformed files, [`SnapshotIoError::Version`] on an incompatible
    /// format, [`SnapshotIoError::Corrupt`] on hash mismatches.
    pub fn load(path: &Path) -> Result<FleetSnapshot, SnapshotIoError> {
        let json = std::fs::read_to_string(path).map_err(|source| SnapshotIoError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let snap: FleetSnapshot =
            serde_json::from_str(&json).map_err(|source| SnapshotIoError::Json {
                path: path.to_path_buf(),
                source,
            })?;
        if snap.version != FLEET_SNAPSHOT_VERSION {
            return Err(SnapshotIoError::Version {
                found: snap.version,
                expected: FLEET_SNAPSHOT_VERSION,
            });
        }
        snap.verify_integrity()?;
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_psi::device::{DeviceBuilder, DeviceVariant};
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mcds-fleet-test-{}-{name}", std::process::id()))
    }

    fn two_member_fleet() -> FleetSnapshot {
        let dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        let a = SocSnapshot::capture(&dev);
        let b = SocSnapshot::capture(&dev);
        FleetSnapshot::new(
            42,
            vec![("engine".to_string(), a), ("gearbox".to_string(), b)],
            r#"{"frames":7}"#.to_string(),
        )
    }

    #[test]
    fn save_load_round_trips_and_preserves_state_hash() {
        let fleet = two_member_fleet();
        let path = temp_path("roundtrip.json");
        fleet.save(&path).expect("save");
        let loaded = FleetSnapshot::load(&path).expect("load");
        assert_eq!(loaded, fleet);
        assert_eq!(loaded.state_hash(), fleet.state_hash());
        assert!(fleet.member("engine").is_some());
        assert!(fleet.member("brakes").is_none());
        assert!(fleet.size_bytes() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fabric_state_is_hashed_into_the_fleet_hash() {
        let a = two_member_fleet();
        let dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        let b = FleetSnapshot::new(
            42,
            vec![
                ("engine".to_string(), SocSnapshot::capture(&dev)),
                ("gearbox".to_string(), SocSnapshot::capture(&dev)),
            ],
            r#"{"frames":8}"#.to_string(),
        );
        assert_ne!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn corrupted_fabric_blob_is_rejected_at_load() {
        let mut fleet = two_member_fleet();
        fleet.fabric_json.push(' ');
        let path = temp_path("corrupt.json");
        fleet.save(&path).expect("save");
        match FleetSnapshot::load(&path) {
            Err(SnapshotIoError::Corrupt { component, .. }) => {
                assert_eq!(component, "fleet/fabric");
            }
            other => panic!("expected Corrupt error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
