//! The message sorter: temporal merge of all per-source FIFOs.
//!
//! Figure 1's "Message sorter". Each trace source feeds its own FIFO; the
//! sorter drains them into a single stream ordered by (quantized) timestamp,
//! tie-broken by source index so the order is deterministic. The sink
//! bandwidth — messages per cycle the trace memory can absorb — is the
//! resource trace qualification protects: burst rates above it back up the
//! FIFOs and eventually overflow them (measured in experiment T4).
//!
//! The drain is temporally safe because all producers run cycle-synchronous:
//! when the sorter pops at cycle *T*, every message with a timestamp ≤ *T*
//! is already enqueued, so the global minimum is the true next message.

use crate::fifo::{FifoState, MessageFifo};
use mcds_trace::{TimedMessage, TraceSource};

/// How the sorter picks the next message when several FIFOs hold one.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergePolicy {
    /// Merge by timestamp (ties by source index) — the paper's design:
    /// temporal order is guaranteed.
    #[default]
    Timestamp,
    /// Drain the lowest-index non-empty FIFO first — the naive multiplexer
    /// a design without on-chip time stamping would use (ablation 1 of
    /// DESIGN.md). Cross-source order is whatever the mux happens to see.
    SourcePriority,
}

/// Point-in-time metrics for one per-source FIFO, the unit telemetry
/// publishes per trace source. Purely observational — reading these never
/// changes FIFO state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoMetrics {
    /// The trace source this FIFO serves.
    pub source: TraceSource,
    /// Configured capacity in entries.
    pub depth: usize,
    /// Current occupancy.
    pub len: usize,
    /// Maximum occupancy observed.
    pub high_water: usize,
    /// Messages accepted since creation.
    pub total_pushed: u64,
    /// Messages dropped to overflow since creation.
    pub total_lost: u64,
    /// Overflow markers inserted into the stream since creation.
    pub markers_inserted: u64,
    /// Drops not yet announced by a marker.
    pub pending_lost: u32,
}

/// Serializable runtime state of a [`MessageSorter`]: every per-source FIFO
/// (in registration order) plus the emitted counter. Sources, depth,
/// bandwidth and merge policy are configuration and are *not* included.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct SorterState {
    fifos: Vec<FifoState>,
    emitted: u64,
}

/// The message sorter and its per-source FIFOs.
#[derive(Debug)]
pub struct MessageSorter {
    fifos: Vec<MessageFifo>,
    bandwidth: usize,
    emitted: u64,
    policy: MergePolicy,
}

impl MessageSorter {
    /// Creates a sorter over the given sources, each with a FIFO of
    /// `depth`, draining up to `bandwidth` messages per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is zero or `sources` is empty.
    pub fn new(sources: &[TraceSource], depth: usize, bandwidth: usize) -> MessageSorter {
        MessageSorter::with_policy(sources, depth, bandwidth, MergePolicy::Timestamp)
    }

    /// Creates a sorter with an explicit [`MergePolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is zero or `sources` is empty.
    pub fn with_policy(
        sources: &[TraceSource],
        depth: usize,
        bandwidth: usize,
        policy: MergePolicy,
    ) -> MessageSorter {
        assert!(bandwidth > 0, "sink bandwidth must be non-zero");
        assert!(!sources.is_empty(), "sorter needs at least one source");
        MessageSorter {
            fifos: sources
                .iter()
                .map(|&s| MessageFifo::new(s, depth))
                .collect(),
            bandwidth,
            emitted: 0,
            policy,
        }
    }

    /// The active merge policy.
    pub fn policy(&self) -> MergePolicy {
        self.policy
    }

    /// Number of sources.
    pub fn source_count(&self) -> usize {
        self.fifos.len()
    }

    /// Total messages emitted in sorted order.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Total messages lost to FIFO overflow, across sources.
    pub fn total_lost(&self) -> u64 {
        self.fifos.iter().map(|f| f.total_lost()).sum()
    }

    /// Per-source FIFO statistics as `(source, pushed, lost, high_water)`.
    pub fn fifo_stats(&self) -> Vec<(TraceSource, u64, u64, usize)> {
        self.fifos
            .iter()
            .map(|f| (f.source(), f.total_pushed(), f.total_lost(), f.high_water()))
            .collect()
    }

    /// Per-source FIFO metrics, one [`FifoMetrics`] per registered source —
    /// the richer form telemetry publishes (includes marker and fill data
    /// that the tuple-based [`MessageSorter::fifo_stats`] predates).
    pub fn fifo_metrics(&self) -> Vec<FifoMetrics> {
        self.fifos
            .iter()
            .map(|f| FifoMetrics {
                source: f.source(),
                depth: f.depth(),
                len: f.len(),
                high_water: f.high_water(),
                total_pushed: f.total_pushed(),
                total_lost: f.total_lost(),
                markers_inserted: f.markers_inserted(),
                pending_lost: f.pending_lost(),
            })
            .collect()
    }

    fn fifo_index(&self, source: TraceSource) -> Option<usize> {
        self.fifos.iter().position(|f| f.source() == source)
    }

    /// Offers a message to its source FIFO. Returns `false` if it was
    /// dropped (overflow).
    ///
    /// # Panics
    ///
    /// Panics if the message's source was not registered.
    pub fn push(&mut self, message: TimedMessage) -> bool {
        let idx = self
            .fifo_index(message.source)
            .expect("message source registered with sorter");
        self.fifos[idx].push(message)
    }

    fn pop_min(&mut self) -> Option<TimedMessage> {
        let idx = match self.policy {
            MergePolicy::Timestamp => {
                let mut best: Option<(usize, u64)> = None;
                for (i, f) in self.fifos.iter().enumerate() {
                    if let Some(front) = f.front() {
                        match best {
                            None => best = Some((i, front.timestamp)),
                            Some((_, ts)) if front.timestamp < ts => {
                                best = Some((i, front.timestamp))
                            }
                            _ => {}
                        }
                    }
                }
                best?.0
            }
            MergePolicy::SourcePriority => self.fifos.iter().position(|f| !f.is_empty())?,
        };
        self.emitted += 1;
        self.fifos[idx].pop()
    }

    /// Drains up to the configured bandwidth into `out` in timestamp order.
    /// Returns the number of messages emitted.
    pub fn drain_cycle(&mut self, out: &mut Vec<TimedMessage>) -> usize {
        let mut n = 0;
        while n < self.bandwidth {
            match self.pop_min() {
                Some(m) => {
                    out.push(m);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Drains everything (end of session / explicit flush), ignoring the
    /// per-cycle bandwidth.
    pub fn drain_all(&mut self, out: &mut Vec<TimedMessage>) -> usize {
        let mut n = 0;
        while let Some(m) = self.pop_min() {
            out.push(m);
            n += 1;
        }
        n
    }

    /// Messages currently waiting across all FIFOs.
    #[inline]
    pub fn backlog(&self) -> usize {
        self.fifos.iter().map(|f| f.len()).sum()
    }

    /// Captures the sorter's runtime state (see [`SorterState`]).
    pub fn save_state(&self) -> SorterState {
        SorterState {
            fifos: self.fifos.iter().map(MessageFifo::save_state).collect(),
            emitted: self.emitted,
        }
    }

    /// Restores state captured by [`MessageSorter::save_state`] onto a
    /// sorter with the same source set.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO count differs.
    pub fn restore_state(&mut self, state: &SorterState) {
        assert_eq!(
            self.fifos.len(),
            state.fifos.len(),
            "sorter source count mismatch on restore"
        );
        for (fifo, s) in self.fifos.iter_mut().zip(&state.fifos) {
            fifo.restore_state(s);
        }
        self.emitted = state.emitted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_soc::event::CoreId;
    use mcds_trace::TraceMessage;

    fn sources() -> Vec<TraceSource> {
        vec![
            TraceSource::Core(CoreId(0)),
            TraceSource::Core(CoreId(1)),
            TraceSource::Bus,
        ]
    }

    fn m(src: TraceSource, ts: u64) -> TimedMessage {
        TimedMessage {
            timestamp: ts,
            source: src,
            message: TraceMessage::Watchpoint { id: 0 },
        }
    }

    #[test]
    fn drains_in_timestamp_order_across_sources() {
        let mut s = MessageSorter::new(&sources(), 16, 100);
        s.push(m(TraceSource::Core(CoreId(0)), 5));
        s.push(m(TraceSource::Core(CoreId(0)), 9));
        s.push(m(TraceSource::Core(CoreId(1)), 3));
        s.push(m(TraceSource::Bus, 7));
        let mut out = Vec::new();
        s.drain_all(&mut out);
        let ts: Vec<u64> = out.iter().map(|x| x.timestamp).collect();
        assert_eq!(ts, vec![3, 5, 7, 9]);
    }

    #[test]
    fn ties_break_by_source_index_deterministically() {
        let mut s = MessageSorter::new(&sources(), 16, 100);
        s.push(m(TraceSource::Bus, 5));
        s.push(m(TraceSource::Core(CoreId(1)), 5));
        s.push(m(TraceSource::Core(CoreId(0)), 5));
        let mut out = Vec::new();
        s.drain_all(&mut out);
        assert_eq!(out[0].source, TraceSource::Core(CoreId(0)));
        assert_eq!(out[1].source, TraceSource::Core(CoreId(1)));
        assert_eq!(out[2].source, TraceSource::Bus);
    }

    #[test]
    fn bandwidth_limits_per_cycle_drain() {
        let mut s = MessageSorter::new(&sources(), 16, 2);
        for ts in 0..6 {
            s.push(m(TraceSource::Core(CoreId(0)), ts));
        }
        let mut out = Vec::new();
        assert_eq!(s.drain_cycle(&mut out), 2);
        assert_eq!(s.backlog(), 4);
        assert_eq!(s.drain_cycle(&mut out), 2);
        assert_eq!(s.drain_cycle(&mut out), 2);
        assert_eq!(s.drain_cycle(&mut out), 0);
        assert_eq!(s.emitted(), 6);
    }

    #[test]
    fn overflow_statistics_surface() {
        let mut s = MessageSorter::new(&sources(), 2, 1);
        for ts in 0..5 {
            s.push(m(TraceSource::Core(CoreId(0)), ts));
        }
        assert_eq!(s.total_lost(), 3);
        let stats = s.fifo_stats();
        assert_eq!(stats[0].2, 3, "core0 lost 3");
        assert_eq!(stats[1].2, 0);
    }

    #[test]
    fn source_priority_policy_ignores_timestamps() {
        let mut s = MessageSorter::with_policy(&sources(), 16, 100, MergePolicy::SourcePriority);
        s.push(m(TraceSource::Core(CoreId(1)), 1)); // earlier, higher index
        s.push(m(TraceSource::Core(CoreId(0)), 9)); // later, lower index
        let mut out = Vec::new();
        s.drain_all(&mut out);
        // The naive mux emits core0 first despite its later timestamp.
        assert_eq!(out[0].source, TraceSource::Core(CoreId(0)));
        assert_eq!(out[0].timestamp, 9);
        assert_eq!(out[1].timestamp, 1);
    }

    #[test]
    fn same_source_order_is_preserved() {
        let mut s = MessageSorter::new(&sources(), 16, 100);
        // Same timestamp from the same source: FIFO order must hold.
        for id in 0..5u8 {
            s.push(TimedMessage {
                timestamp: 10,
                source: TraceSource::Core(CoreId(0)),
                message: TraceMessage::Watchpoint { id },
            });
        }
        let mut out = Vec::new();
        s.drain_all(&mut out);
        let ids: Vec<u8> = out
            .iter()
            .map(|x| match x.message {
                TraceMessage::Watchpoint { id } => id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
