//! Trigger extraction: program and data comparators.
//!
//! Section 4: *"The trigger resources are implemented for the program and
//! data accesses and are further enhanced using state-machines based on
//! counters. They are compact but effective."*
//!
//! Each core's adaptation logic carries a small bank of program comparators
//! (matching the retired PC) and data comparators (matching access address,
//! direction and optionally a masked value). Comparator match outputs, the
//! external trigger pins, counter outputs and state-machine outputs form the
//! *signal* space ([`SignalRef`]) consumed by the cross-trigger matrix and
//! the trace qualifiers.

use mcds_soc::bus::AddrRange;
use mcds_soc::event::{CoreId, MemAccessInfo, RetireEvent};
use std::collections::HashSet;

/// Maximum program comparators per core ("compact but effective").
pub const PROG_COMPARATORS_PER_CORE: usize = 4;

/// Maximum data comparators per core.
pub const DATA_COMPARATORS_PER_CORE: usize = 4;

/// Which access directions a data comparator matches.
#[derive(
    serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Hash, Default,
)]
pub enum AccessKind {
    /// Reads only.
    Read,
    /// Writes only.
    Write,
    /// Reads and writes.
    #[default]
    Any,
}

impl AccessKind {
    /// True if an access with `is_write` matches.
    pub fn matches(self, is_write: bool) -> bool {
        match self {
            AccessKind::Read => !is_write,
            AccessKind::Write => is_write,
            AccessKind::Any => true,
        }
    }
}

/// A program-address comparator: matches when a retired instruction's PC
/// falls inside the range.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramComparator {
    /// The matched address range.
    pub range: AddrRange,
}

impl ProgramComparator {
    /// A comparator matching one exact instruction address.
    pub fn at(pc: u32) -> ProgramComparator {
        ProgramComparator {
            range: AddrRange::new(pc, 4),
        }
    }

    /// A comparator matching an address range.
    pub fn in_range(range: AddrRange) -> ProgramComparator {
        ProgramComparator { range }
    }

    /// True if the retired instruction matches.
    pub fn matches(&self, retire: &RetireEvent) -> bool {
        self.range.contains(retire.pc)
    }
}

/// A data-access comparator (watchpoint): matches address range, direction
/// and optionally a masked data value.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataComparator {
    /// The matched address range.
    pub range: AddrRange,
    /// Matched access direction.
    pub access: AccessKind,
    /// Optional `(value, mask)` condition: matches when
    /// `data & mask == value & mask`.
    pub value_match: Option<(u32, u32)>,
}

impl DataComparator {
    /// A comparator on an address range for the given direction, no value
    /// condition.
    pub fn on(range: AddrRange, access: AccessKind) -> DataComparator {
        DataComparator {
            range,
            access,
            value_match: None,
        }
    }

    /// Adds a masked value condition.
    pub fn with_value(mut self, value: u32, mask: u32) -> DataComparator {
        self.value_match = Some((value, mask));
        self
    }

    /// True if the access matches.
    pub fn matches(&self, access: &MemAccessInfo) -> bool {
        if !self.range.contains(access.addr) || !self.access.matches(access.is_write) {
            return false;
        }
        match self.value_match {
            None => true,
            Some((v, m)) => access.value & m == v & m,
        }
    }
}

/// A named trigger signal: the wire connecting trigger extraction, counters,
/// state machines and the cross-trigger matrix.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalRef {
    /// Program comparator `idx` of `core` matched this cycle.
    ProgComp {
        /// Owning core.
        core: CoreId,
        /// Comparator index.
        idx: usize,
    },
    /// Data comparator `idx` of `core` matched this cycle.
    DataComp {
        /// Owning core.
        core: CoreId,
        /// Comparator index.
        idx: usize,
    },
    /// External trigger-in pin went (or is) high this cycle.
    ExternalPin(u8),
    /// Counter `idx` reached its threshold.
    Counter(usize),
    /// State machine `idx` is in its trigger state.
    StateMachine(usize),
    /// Core `core` stopped (halt, breakpoint, fault) this cycle.
    CoreStopped(CoreId),
    /// Core `core` took an interrupt this cycle.
    IrqEntry(CoreId),
}

/// The set of signals asserted in one cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SignalSet {
    asserted: HashSet<SignalRef>,
}

impl SignalSet {
    /// An empty set.
    pub fn new() -> SignalSet {
        SignalSet::default()
    }

    /// Asserts a signal.
    pub fn assert_signal(&mut self, s: SignalRef) {
        self.asserted.insert(s);
    }

    /// True if `s` is asserted.
    pub fn is_asserted(&self, s: SignalRef) -> bool {
        self.asserted.contains(&s)
    }

    /// True if any of `signals` is asserted (the OR stage of Figure 2).
    pub fn any_asserted<'a>(&self, signals: impl IntoIterator<Item = &'a SignalRef>) -> bool {
        signals.into_iter().any(|s| self.is_asserted(*s))
    }

    /// Number of asserted signals.
    pub fn len(&self) -> usize {
        self.asserted.len()
    }

    /// True if no signal is asserted.
    pub fn is_empty(&self) -> bool {
        self.asserted.is_empty()
    }

    /// Iterates over asserted signals.
    pub fn iter(&self) -> impl Iterator<Item = &SignalRef> {
        self.asserted.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_soc::isa::{Instr, MemWidth};

    fn retire(pc: u32) -> RetireEvent {
        RetireEvent {
            core: CoreId(0),
            pc,
            instr: Instr::Nop,
            next_pc: pc + 4,
            taken: None,
            mem: None,
        }
    }

    fn access(addr: u32, is_write: bool, value: u32) -> MemAccessInfo {
        MemAccessInfo {
            addr,
            width: MemWidth::Word,
            is_write,
            value,
        }
    }

    #[test]
    fn program_comparator_exact_and_range() {
        let c = ProgramComparator::at(0x8000_0010);
        assert!(c.matches(&retire(0x8000_0010)));
        assert!(!c.matches(&retire(0x8000_0014)));
        let r = ProgramComparator::in_range(AddrRange::new(0x8000_0000, 0x100));
        assert!(r.matches(&retire(0x8000_00FC)));
        assert!(!r.matches(&retire(0x8000_0100)));
    }

    #[test]
    fn data_comparator_direction() {
        let w = DataComparator::on(AddrRange::new(0x1000, 0x10), AccessKind::Write);
        assert!(w.matches(&access(0x1004, true, 0)));
        assert!(!w.matches(&access(0x1004, false, 0)));
        let r = DataComparator::on(AddrRange::new(0x1000, 0x10), AccessKind::Read);
        assert!(r.matches(&access(0x1004, false, 0)));
        assert!(!r.matches(&access(0x1004, true, 0)));
        let a = DataComparator::on(AddrRange::new(0x1000, 0x10), AccessKind::Any);
        assert!(a.matches(&access(0x1004, true, 0)));
        assert!(a.matches(&access(0x1004, false, 0)));
    }

    #[test]
    fn data_comparator_masked_value() {
        let c = DataComparator::on(AddrRange::new(0x1000, 0x10), AccessKind::Write)
            .with_value(0xAB00, 0xFF00);
        assert!(
            c.matches(&access(0x1000, true, 0xAB42)),
            "mask ignores low byte"
        );
        assert!(!c.matches(&access(0x1000, true, 0xAC42)));
        assert!(!c.matches(&access(0x2000, true, 0xAB00)), "outside range");
    }

    #[test]
    fn signal_set_or_semantics() {
        let mut s = SignalSet::new();
        let a = SignalRef::ProgComp {
            core: CoreId(0),
            idx: 0,
        };
        let b = SignalRef::ExternalPin(2);
        let c = SignalRef::Counter(1);
        s.assert_signal(a);
        s.assert_signal(b);
        assert!(s.is_asserted(a));
        assert!(!s.is_asserted(c));
        assert!(s.any_asserted(&[c, b]));
        assert!(!s.any_asserted(&[c]));
        assert_eq!(s.len(), 2);
    }
}
