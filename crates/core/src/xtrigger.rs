//! The multiple-core cross-trigger unit and break & suspend switch.
//!
//! Figure 2 of the paper: per output line, an **OR** over selected source
//! signals, **AND**ed with an enable, optionally gated by a counter. The
//! resulting trigger drives an action through the **break & suspend
//! switch**: *"should a trigger stop one or multiple cores? The best
//! solution is to let the developer decide by providing a reconfigurable
//! break and suspend switch. … it halts synchronized cores without
//! excessive slippage. The switch manages the response to both on-chip and
//! external trigger inputs."*
//!
//! Actions fire in the same MCDS evaluation cycle the trigger occurs, so
//! breaking N cores together has constant, minimal slippage — the F2
//! experiment measures this against a host-mediated halt over the debug
//! interface.

use crate::trigger::{SignalRef, SignalSet};
use mcds_soc::event::CoreId;

/// What a fired cross-trigger line does.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub enum TriggerAction {
    /// Request a debug break (halt at the next instruction boundary) on the
    /// listed cores — one, several or all, as the developer configured the
    /// break & suspend switch.
    BreakCores(Vec<CoreId>),
    /// Assert the suspend clock-gate on the listed cores.
    SuspendCores(Vec<CoreId>),
    /// Release the suspend clock-gate on the listed cores.
    ResumeCores(Vec<CoreId>),
    /// Emit a watchpoint trace message with this id.
    Watchpoint {
        /// Watchpoint id carried in the message.
        id: u8,
    },
    /// Pulse an external trigger-out pin (for bench equipment or a second
    /// SoC).
    TriggerOutPin(u8),
}

/// One line of the cross-trigger matrix.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct CrossTrigger {
    /// Source signals (OR stage).
    pub sources: Vec<SignalRef>,
    /// Enable (AND stage).
    pub enabled: bool,
    /// Optional occurrence counter: the action fires on the `count`-th OR
    /// assertion (Figure 2's counter block).
    pub count: Option<u64>,
    /// The action routed through the break & suspend switch.
    pub action: TriggerAction,
}

impl CrossTrigger {
    /// A line firing `action` whenever any of `sources` asserts.
    pub fn on_any(sources: Vec<SignalRef>, action: TriggerAction) -> CrossTrigger {
        CrossTrigger {
            sources,
            enabled: true,
            count: None,
            action,
        }
    }

    /// Adds an occurrence counter.
    pub fn with_count(mut self, count: u64) -> CrossTrigger {
        self.count = Some(count);
        self
    }

    /// Disables the line (configuration kept).
    pub fn disabled(mut self) -> CrossTrigger {
        self.enabled = false;
        self
    }
}

/// The evaluated outputs of one MCDS cycle, ready for the device to apply.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Default, PartialEq, Eq)]
pub struct TriggerOutputs {
    /// Cores to break (deduplicated).
    pub break_cores: Vec<CoreId>,
    /// Cores to suspend.
    pub suspend_cores: Vec<CoreId>,
    /// Cores to release from suspend.
    pub resume_cores: Vec<CoreId>,
    /// Watchpoint ids to emit as trace messages.
    pub watchpoints: Vec<u8>,
    /// External trigger-out pins to pulse.
    pub trigger_out_pins: Vec<u8>,
}

impl TriggerOutputs {
    /// True if nothing fired.
    pub fn is_empty(&self) -> bool {
        self.break_cores.is_empty()
            && self.suspend_cores.is_empty()
            && self.resume_cores.is_empty()
            && self.watchpoints.is_empty()
            && self.trigger_out_pins.is_empty()
    }

    fn add_unique(list: &mut Vec<CoreId>, cores: &[CoreId]) {
        for &c in cores {
            if !list.contains(&c) {
                list.push(c);
            }
        }
    }
}

/// Serializable runtime state of a [`CrossTriggerUnit`]: per-line enables
/// (mutable at runtime via [`CrossTriggerUnit::set_enabled`]) and occurrence
/// counters. The line configurations themselves are *not* included.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct XtriggerState {
    enables: Vec<bool>,
    occurrence_counts: Vec<u64>,
}

/// The cross-trigger matrix: evaluates every line against the cycle's
/// signal set.
#[derive(Debug, Clone, Default)]
pub struct CrossTriggerUnit {
    lines: Vec<CrossTrigger>,
    occurrence_counts: Vec<u64>,
}

impl CrossTriggerUnit {
    /// Creates the unit from its configured lines.
    pub fn new(lines: Vec<CrossTrigger>) -> CrossTriggerUnit {
        let n = lines.len();
        CrossTriggerUnit {
            lines,
            occurrence_counts: vec![0; n],
        }
    }

    /// Number of configured lines.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// The configured lines.
    pub fn lines(&self) -> &[CrossTrigger] {
        &self.lines
    }

    /// Occurrence count accumulated on line `idx` (for counted lines).
    pub fn occurrences(&self, idx: usize) -> u64 {
        self.occurrence_counts[idx]
    }

    /// Enables or disables line `idx` at runtime.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_enabled(&mut self, idx: usize, enabled: bool) {
        self.lines[idx].enabled = enabled;
    }

    /// Evaluates all lines against `signals`, accumulating fired actions.
    pub fn evaluate(&mut self, signals: &SignalSet) -> TriggerOutputs {
        let mut out = TriggerOutputs::default();
        for (i, line) in self.lines.iter().enumerate() {
            if !line.enabled || !signals.any_asserted(&line.sources) {
                continue;
            }
            if let Some(threshold) = line.count {
                self.occurrence_counts[i] += 1;
                if self.occurrence_counts[i] != threshold {
                    continue;
                }
            }
            match &line.action {
                TriggerAction::BreakCores(cores) => {
                    TriggerOutputs::add_unique(&mut out.break_cores, cores)
                }
                TriggerAction::SuspendCores(cores) => {
                    TriggerOutputs::add_unique(&mut out.suspend_cores, cores)
                }
                TriggerAction::ResumeCores(cores) => {
                    TriggerOutputs::add_unique(&mut out.resume_cores, cores)
                }
                TriggerAction::Watchpoint { id } => out.watchpoints.push(*id),
                TriggerAction::TriggerOutPin(pin) => out.trigger_out_pins.push(*pin),
            }
        }
        out
    }

    /// Clears all occurrence counters.
    pub fn reset(&mut self) {
        for c in &mut self.occurrence_counts {
            *c = 0;
        }
    }

    /// Captures the unit's runtime state (see [`XtriggerState`]).
    pub fn save_state(&self) -> XtriggerState {
        XtriggerState {
            enables: self.lines.iter().map(|l| l.enabled).collect(),
            occurrence_counts: self.occurrence_counts.clone(),
        }
    }

    /// Restores state captured by [`CrossTriggerUnit::save_state`] onto a
    /// unit with the same line configuration.
    ///
    /// # Panics
    ///
    /// Panics if the line count differs.
    pub fn restore_state(&mut self, state: &XtriggerState) {
        assert_eq!(
            self.lines.len(),
            state.enables.len(),
            "cross-trigger line count mismatch on restore"
        );
        for (line, &en) in self.lines.iter_mut().zip(&state.enables) {
            line.enabled = en;
        }
        self.occurrence_counts = state.occurrence_counts.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIG_A: SignalRef = SignalRef::ProgComp {
        core: CoreId(0),
        idx: 0,
    };
    const SIG_B: SignalRef = SignalRef::DataComp {
        core: CoreId(1),
        idx: 0,
    };
    const SIG_X: SignalRef = SignalRef::ExternalPin(3);

    fn set(signals: &[SignalRef]) -> SignalSet {
        let mut s = SignalSet::new();
        for &x in signals {
            s.assert_signal(x);
        }
        s
    }

    #[test]
    fn or_stage_fires_on_any_source() {
        let mut u = CrossTriggerUnit::new(vec![CrossTrigger::on_any(
            vec![SIG_A, SIG_B],
            TriggerAction::BreakCores(vec![CoreId(0), CoreId(1)]),
        )]);
        assert!(u.evaluate(&set(&[])).is_empty());
        let out = u.evaluate(&set(&[SIG_B]));
        assert_eq!(out.break_cores, vec![CoreId(0), CoreId(1)]);
        let out = u.evaluate(&set(&[SIG_A]));
        assert_eq!(out.break_cores.len(), 2);
    }

    #[test]
    fn enable_gates_the_line() {
        let mut u = CrossTriggerUnit::new(vec![CrossTrigger::on_any(
            vec![SIG_A],
            TriggerAction::TriggerOutPin(1),
        )
        .disabled()]);
        assert!(u.evaluate(&set(&[SIG_A])).is_empty());
        u.set_enabled(0, true);
        assert_eq!(u.evaluate(&set(&[SIG_A])).trigger_out_pins, vec![1]);
    }

    #[test]
    fn counter_delays_firing_to_nth_occurrence() {
        let mut u = CrossTriggerUnit::new(vec![CrossTrigger::on_any(
            vec![SIG_A],
            TriggerAction::Watchpoint { id: 7 },
        )
        .with_count(3)]);
        assert!(u.evaluate(&set(&[SIG_A])).is_empty());
        assert!(u.evaluate(&set(&[SIG_A])).is_empty());
        assert_eq!(u.evaluate(&set(&[SIG_A])).watchpoints, vec![7]);
        // Fires exactly on the Nth, not after.
        assert!(u.evaluate(&set(&[SIG_A])).is_empty());
        assert_eq!(u.occurrences(0), 4);
    }

    #[test]
    fn cross_core_trigger_one_cores_event_breaks_the_other() {
        // The canonical MCDS scenario: a data comparator on core 1 breaks
        // core 0 (and only core 0).
        let mut u = CrossTriggerUnit::new(vec![CrossTrigger::on_any(
            vec![SIG_B],
            TriggerAction::BreakCores(vec![CoreId(0)]),
        )]);
        let out = u.evaluate(&set(&[SIG_B]));
        assert_eq!(out.break_cores, vec![CoreId(0)]);
        assert!(out.suspend_cores.is_empty());
    }

    #[test]
    fn external_pin_drives_suspend_and_resume() {
        let mut u = CrossTriggerUnit::new(vec![
            CrossTrigger::on_any(vec![SIG_X], TriggerAction::SuspendCores(vec![CoreId(1)])),
            CrossTrigger::on_any(vec![SIG_A], TriggerAction::ResumeCores(vec![CoreId(1)])),
        ]);
        let out = u.evaluate(&set(&[SIG_X]));
        assert_eq!(out.suspend_cores, vec![CoreId(1)]);
        let out = u.evaluate(&set(&[SIG_A]));
        assert_eq!(out.resume_cores, vec![CoreId(1)]);
    }

    #[test]
    fn multiple_lines_accumulate_without_duplicates() {
        let mut u = CrossTriggerUnit::new(vec![
            CrossTrigger::on_any(vec![SIG_A], TriggerAction::BreakCores(vec![CoreId(0)])),
            CrossTrigger::on_any(
                vec![SIG_B],
                TriggerAction::BreakCores(vec![CoreId(0), CoreId(1)]),
            ),
        ]);
        let out = u.evaluate(&set(&[SIG_A, SIG_B]));
        assert_eq!(out.break_cores, vec![CoreId(0), CoreId(1)], "deduplicated");
    }
}
