//! Per-core adaptation logic: message generation and trace qualification.
//!
//! Figure 1's per-core column — "Program reconstruction / Message
//! generation / Trigger extraction" — watches the core's retirement stream
//! and turns it into compressed trace messages. Qualification ("complex
//! triggers qualify or 'filter' the trace down to only the required
//! messages", Section 3) is expressed as a [`TraceQualifier`] per trace
//! kind: always-on, off, or a window opened and closed by trigger signals.
//!
//! Only the adaptation logic differs between heterogeneous cores (Section
//! 4); in the model every core shares this observer parameterised by its
//! [`CoreTraceConfig`].

use crate::trigger::{DataComparator, ProgramComparator, SignalRef, SignalSet};
use mcds_soc::event::{CoreId, RetireEvent};
use mcds_soc::isa::Instr;
use mcds_trace::{BranchBits, TimedMessage, TraceMessage, TraceSource};

/// When a trace kind is active.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceQualifier {
    /// Never trace.
    #[default]
    Off,
    /// Trace continuously.
    Always,
    /// Trace inside a window: opened when `start` asserts, closed when
    /// `stop` asserts.
    Window {
        /// Window-opening signal.
        start: SignalRef,
        /// Window-closing signal.
        stop: SignalRef,
    },
}

/// Data-trace configuration: a qualifier plus an optional address/value
/// filter so only the interesting accesses cost bandwidth.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq, Default)]
pub struct DataTraceConfig {
    /// When data trace is active.
    pub qualifier: TraceQualifier,
    /// Optional filter; only matching accesses are traced.
    pub filter: Option<DataComparator>,
}

/// Trace/trigger configuration of one core.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq, Default)]
pub struct CoreTraceConfig {
    /// Program comparators (trigger extraction), up to
    /// [`crate::trigger::PROG_COMPARATORS_PER_CORE`].
    pub program_comparators: Vec<ProgramComparator>,
    /// Data comparators (watchpoint extraction), up to
    /// [`crate::trigger::DATA_COMPARATORS_PER_CORE`].
    pub data_comparators: Vec<DataComparator>,
    /// Program-flow trace qualifier.
    pub program_trace: TraceQualifier,
    /// Data trace configuration.
    pub data_trace: DataTraceConfig,
}

/// Longest instruction run in one program message before a forced flush.
const MAX_I_CNT: u32 = 4096;

/// Serializable runtime state of a [`CoreObserver`]: qualification windows,
/// sync tracking and the pending instruction run. Configuration (core id,
/// comparators, history mode, sync period) is *not* included, and the
/// per-cycle output buffer is always drained at cycle boundaries so it is
/// restored empty.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct ObserverState {
    prog_window: bool,
    data_window: bool,
    synced: bool,
    i_cnt: u32,
    history: BranchBits,
    msgs_since_sync: u32,
    generated: u64,
}

/// The per-core adaptation logic.
#[derive(Debug)]
pub struct CoreObserver {
    core: CoreId,
    config: CoreTraceConfig,
    history_mode: bool,
    sync_period: u32,
    prog_window: bool,
    data_window: bool,
    synced: bool,
    i_cnt: u32,
    history: BranchBits,
    msgs_since_sync: u32,
    out: Vec<TimedMessage>,
    generated: u64,
}

impl CoreObserver {
    /// Creates the observer for `core`.
    ///
    /// `history_mode` selects branch-history compression (vs per-branch
    /// messages); `sync_period` is the number of program messages between
    /// periodic re-syncs.
    pub fn new(
        core: CoreId,
        config: CoreTraceConfig,
        history_mode: bool,
        sync_period: u32,
    ) -> CoreObserver {
        CoreObserver {
            core,
            config,
            history_mode,
            sync_period: sync_period.max(1),
            prog_window: false,
            data_window: false,
            synced: false,
            i_cnt: 0,
            history: BranchBits::new(),
            msgs_since_sync: 0,
            out: Vec::new(),
            generated: 0,
        }
    }

    /// The observed core.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The configuration.
    pub fn config(&self) -> &CoreTraceConfig {
        &self.config
    }

    /// Total messages generated since creation.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Evaluates this core's comparators on a retire event, asserting the
    /// matching signals.
    pub fn extract_triggers(&self, retire: &RetireEvent, signals: &mut SignalSet) {
        for (idx, c) in self.config.program_comparators.iter().enumerate() {
            if c.matches(retire) {
                signals.assert_signal(SignalRef::ProgComp {
                    core: self.core,
                    idx,
                });
            }
        }
        if let Some(mem) = &retire.mem {
            for (idx, c) in self.config.data_comparators.iter().enumerate() {
                if c.matches(mem) {
                    signals.assert_signal(SignalRef::DataComp {
                        core: self.core,
                        idx,
                    });
                }
            }
        }
    }

    fn qualifier_active(q: &TraceQualifier, window: bool) -> bool {
        match q {
            TraceQualifier::Off => false,
            TraceQualifier::Always => true,
            TraceQualifier::Window { .. } => window,
        }
    }

    /// Updates qualification windows from this cycle's signals. Must run
    /// before the cycle's retire events are observed. `ts` stamps any flush
    /// emitted by a closing window.
    pub fn begin_cycle(&mut self, signals: &SignalSet, ts: u64) {
        if let TraceQualifier::Window { start, stop } = self.config.program_trace {
            // Start wins over stop in the same cycle, so a window can be
            // re-armed by the event that also closes it (e.g. "trace one
            // loop pass in every N": stop on the loop head, start on a
            // counter that fires on the same head every N-th pass).
            if signals.is_asserted(stop) {
                if self.prog_window {
                    self.flush(ts);
                    self.synced = false;
                }
                self.prog_window = false;
            }
            if signals.is_asserted(start) {
                self.prog_window = true;
            }
        }
        if let TraceQualifier::Window { start, stop } = self.config.data_trace.qualifier {
            if signals.is_asserted(stop) {
                self.data_window = false;
            }
            if signals.is_asserted(start) {
                self.data_window = true;
            }
        }
    }

    fn emit(&mut self, ts: u64, message: TraceMessage) {
        self.generated += 1;
        self.out.push(TimedMessage {
            timestamp: ts,
            source: TraceSource::Core(self.core),
            message,
        });
    }

    fn emit_program(&mut self, ts: u64, message: TraceMessage, resync_pc: u32) {
        self.emit(ts, message);
        self.i_cnt = 0;
        self.history = BranchBits::new();
        self.msgs_since_sync += 1;
        if self.msgs_since_sync >= self.sync_period {
            self.emit(ts, TraceMessage::ProgSync { pc: resync_pc });
            self.msgs_since_sync = 0;
        }
    }

    /// Observes one retired instruction.
    pub fn observe_retire(&mut self, retire: &RetireEvent, ts: u64) {
        debug_assert_eq!(retire.core, self.core);
        if Self::qualifier_active(&self.config.program_trace, self.prog_window) {
            if !self.synced {
                self.emit(ts, TraceMessage::ProgSync { pc: retire.pc });
                self.synced = true;
                self.msgs_since_sync = 0;
            }
            self.i_cnt += 1;
            match retire.instr {
                Instr::Branch { .. } => {
                    let taken = retire.taken.unwrap_or(false);
                    if self.history_mode {
                        self.history.push(taken);
                        if self.history.is_full() {
                            let (i_cnt, history) = (self.i_cnt, self.history);
                            self.emit_program(
                                ts,
                                TraceMessage::BranchHistory { i_cnt, history },
                                retire.next_pc,
                            );
                        }
                    } else if taken {
                        let i_cnt = self.i_cnt;
                        self.emit_program(ts, TraceMessage::DirectBranch { i_cnt }, retire.next_pc);
                    }
                }
                Instr::Jalr { .. } | Instr::Eret => {
                    let (i_cnt, history) = (self.i_cnt, self.history);
                    self.emit_program(
                        ts,
                        TraceMessage::IndirectBranch {
                            i_cnt,
                            history,
                            target: retire.next_pc,
                        },
                        retire.next_pc,
                    );
                }
                _ => {
                    if self.i_cnt >= MAX_I_CNT {
                        let (i_cnt, history) = (self.i_cnt, self.history);
                        self.emit_program(
                            ts,
                            TraceMessage::FlowFlush { i_cnt, history },
                            retire.next_pc,
                        );
                    }
                }
            }
        }
        if Self::qualifier_active(&self.config.data_trace.qualifier, self.data_window) {
            if let Some(mem) = &retire.mem {
                let pass = self
                    .config
                    .data_trace
                    .filter
                    .map(|f| f.matches(mem))
                    .unwrap_or(true);
                if pass {
                    let message = if mem.is_write {
                        TraceMessage::DataWrite {
                            addr: mem.addr,
                            value: mem.value,
                            width: mem.width,
                        }
                    } else {
                        TraceMessage::DataRead {
                            addr: mem.addr,
                            value: mem.value,
                            width: mem.width,
                        }
                    };
                    self.emit(ts, message);
                }
            }
        }
    }

    /// Flushes the pending instruction run (window close, core stop, trace
    /// stop).
    pub fn flush(&mut self, ts: u64) {
        if self.i_cnt > 0 || !self.history.is_empty() {
            let (i_cnt, history) = (self.i_cnt, self.history);
            self.emit(ts, TraceMessage::FlowFlush { i_cnt, history });
            self.i_cnt = 0;
            self.history = BranchBits::new();
            self.msgs_since_sync += 1;
        }
    }

    /// Marks the flow broken (a program message was dropped on FIFO
    /// overflow); the next qualified retire re-syncs.
    pub fn desync(&mut self) {
        self.synced = false;
        self.i_cnt = 0;
        self.history = BranchBits::new();
    }

    /// Called when the observed core takes an interrupt: the pending run
    /// ends at the interrupted boundary and the next retire (the first ISR
    /// instruction) re-syncs at the vector.
    pub fn observe_irq(&mut self, ts: u64) {
        if Self::qualifier_active(&self.config.program_trace, self.prog_window) {
            self.flush(ts);
            self.synced = false;
        }
    }

    /// Called when the observed core stops: flushes pending state.
    pub fn observe_stop(&mut self, ts: u64) {
        if Self::qualifier_active(&self.config.program_trace, self.prog_window) {
            self.flush(ts);
        }
        self.synced = false;
    }

    /// Drains the messages generated this cycle.
    pub fn take_output(&mut self) -> Vec<TimedMessage> {
        std::mem::take(&mut self.out)
    }

    /// True if program trace is currently active.
    pub fn program_trace_active(&self) -> bool {
        Self::qualifier_active(&self.config.program_trace, self.prog_window)
    }

    /// True if data trace is currently active.
    pub fn data_trace_active(&self) -> bool {
        Self::qualifier_active(&self.config.data_trace.qualifier, self.data_window)
    }

    /// Captures the observer's runtime state (see [`ObserverState`]).
    ///
    /// # Panics
    ///
    /// Panics if called mid-cycle with undrained output; snapshots are taken
    /// at cycle boundaries where [`CoreObserver::take_output`] has run.
    pub fn save_state(&self) -> ObserverState {
        assert!(
            self.out.is_empty(),
            "observer output not drained at snapshot point"
        );
        ObserverState {
            prog_window: self.prog_window,
            data_window: self.data_window,
            synced: self.synced,
            i_cnt: self.i_cnt,
            history: self.history,
            msgs_since_sync: self.msgs_since_sync,
            generated: self.generated,
        }
    }

    /// Restores state captured by [`CoreObserver::save_state`].
    pub fn restore_state(&mut self, state: &ObserverState) {
        self.prog_window = state.prog_window;
        self.data_window = state.data_window;
        self.synced = state.synced;
        self.i_cnt = state.i_cnt;
        self.history = state.history;
        self.msgs_since_sync = state.msgs_since_sync;
        self.generated = state.generated;
        self.out.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_soc::bus::AddrRange;
    use mcds_soc::event::MemAccessInfo;
    use mcds_soc::isa::{AluOp, BranchCond, MemWidth, Reg};
    use mcds_soc::Instr;

    fn retire_at(pc: u32, instr: Instr, taken: Option<bool>, next_pc: u32) -> RetireEvent {
        RetireEvent {
            core: CoreId(0),
            pc,
            instr,
            next_pc,
            taken,
            mem: None,
        }
    }

    fn nop_retire(pc: u32) -> RetireEvent {
        retire_at(pc, Instr::Nop, None, pc + 4)
    }

    fn store_retire(pc: u32, addr: u32, value: u32) -> RetireEvent {
        RetireEvent {
            core: CoreId(0),
            pc,
            instr: Instr::Store {
                width: MemWidth::Word,
                rs2: Reg::new(1),
                rs1: Reg::new(2),
                imm: 0,
            },
            next_pc: pc + 4,
            taken: None,
            mem: Some(MemAccessInfo {
                addr,
                width: MemWidth::Word,
                is_write: true,
                value,
            }),
        }
    }

    fn branch_retire(pc: u32, taken: bool, target: u32) -> RetireEvent {
        retire_at(
            pc,
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::new(1),
                rs2: Reg::ZERO,
                imm: -2,
            },
            Some(taken),
            if taken { target } else { pc + 4 },
        )
    }

    fn prog_always() -> CoreTraceConfig {
        CoreTraceConfig {
            program_trace: TraceQualifier::Always,
            ..Default::default()
        }
    }

    #[test]
    fn first_retire_emits_sync() {
        let mut o = CoreObserver::new(CoreId(0), prog_always(), false, 1000);
        o.observe_retire(&nop_retire(0x100), 5);
        let msgs = o.take_output();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].message, TraceMessage::ProgSync { pc: 0x100 });
        assert_eq!(msgs[0].timestamp, 5);
    }

    #[test]
    fn direct_branch_message_mode() {
        let mut o = CoreObserver::new(CoreId(0), prog_always(), false, 1000);
        o.observe_retire(&nop_retire(0x100), 1);
        o.observe_retire(&nop_retire(0x104), 2);
        o.observe_retire(&branch_retire(0x108, true, 0x100), 3);
        let msgs = o.take_output();
        // sync + direct branch
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[1].message, TraceMessage::DirectBranch { i_cnt: 3 });
        // Not-taken branches emit nothing.
        o.observe_retire(&branch_retire(0x100, false, 0), 4);
        assert!(o.take_output().is_empty());
        o.flush(5);
        let msgs = o.take_output();
        assert_eq!(
            msgs[0].message,
            TraceMessage::FlowFlush {
                i_cnt: 1,
                history: BranchBits::new()
            }
        );
    }

    #[test]
    fn branch_history_mode_accumulates_32_outcomes() {
        let mut o = CoreObserver::new(CoreId(0), prog_always(), true, 1000);
        o.observe_retire(&nop_retire(0x100), 0);
        for k in 0..32 {
            o.observe_retire(&branch_retire(0x104, k % 2 == 0, 0x104), k as u64);
        }
        let msgs = o.take_output();
        assert_eq!(msgs.len(), 2, "sync + one history message for 32 branches");
        match msgs[1].message {
            TraceMessage::BranchHistory { i_cnt, history } => {
                assert_eq!(i_cnt, 33);
                assert_eq!(history.count, 32);
                assert!(history.get(0));
                assert!(!history.get(1));
            }
            other => panic!("expected history message, got {other:?}"),
        }
    }

    #[test]
    fn indirect_branch_carries_target_and_history() {
        let mut o = CoreObserver::new(CoreId(0), prog_always(), true, 1000);
        o.observe_retire(&nop_retire(0x100), 0);
        o.observe_retire(&branch_retire(0x104, true, 0x108), 1);
        let jalr = retire_at(
            0x108,
            Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::LR,
                imm: 0,
            },
            Some(true),
            0x2000,
        );
        o.observe_retire(&jalr, 2);
        let msgs = o.take_output();
        assert_eq!(msgs.len(), 2);
        match msgs[1].message {
            TraceMessage::IndirectBranch {
                i_cnt,
                history,
                target,
            } => {
                assert_eq!(i_cnt, 3);
                assert_eq!(history.count, 1);
                assert!(history.get(0));
                assert_eq!(target, 0x2000);
            }
            other => panic!("expected indirect branch, got {other:?}"),
        }
    }

    #[test]
    fn window_qualifier_opens_and_closes() {
        let start = SignalRef::ProgComp {
            core: CoreId(0),
            idx: 0,
        };
        let stop = SignalRef::ProgComp {
            core: CoreId(0),
            idx: 1,
        };
        let cfg = CoreTraceConfig {
            program_trace: TraceQualifier::Window { start, stop },
            ..Default::default()
        };
        let mut o = CoreObserver::new(CoreId(0), cfg, false, 1000);
        // Before the window: nothing.
        o.begin_cycle(&SignalSet::new(), 0);
        o.observe_retire(&nop_retire(0x100), 0);
        assert!(o.take_output().is_empty());
        // Open.
        let mut s = SignalSet::new();
        s.assert_signal(start);
        o.begin_cycle(&s, 1);
        o.observe_retire(&nop_retire(0x104), 1);
        let msgs = o.take_output();
        assert_eq!(msgs[0].message, TraceMessage::ProgSync { pc: 0x104 });
        assert!(o.program_trace_active());
        // Close: pending run flushes.
        let mut s = SignalSet::new();
        s.assert_signal(stop);
        o.begin_cycle(&s, 2);
        let msgs = o.take_output();
        assert_eq!(
            msgs[0].message,
            TraceMessage::FlowFlush {
                i_cnt: 1,
                history: BranchBits::new()
            }
        );
        assert!(!o.program_trace_active());
        // After close: silent again.
        o.observe_retire(&nop_retire(0x108), 3);
        assert!(o.take_output().is_empty());
    }

    #[test]
    fn data_trace_filter_reduces_messages() {
        let cfg = CoreTraceConfig {
            data_trace: DataTraceConfig {
                qualifier: TraceQualifier::Always,
                filter: Some(DataComparator::on(
                    AddrRange::new(0xD000_0000, 0x100),
                    crate::trigger::AccessKind::Write,
                )),
            },
            ..Default::default()
        };
        let mut o = CoreObserver::new(CoreId(0), cfg, false, 1000);
        o.observe_retire(&store_retire(0x100, 0xD000_0010, 7), 0);
        o.observe_retire(&store_retire(0x104, 0xAAAA_0000, 8), 1); // filtered out
        let msgs = o.take_output();
        assert_eq!(msgs.len(), 1);
        assert_eq!(
            msgs[0].message,
            TraceMessage::DataWrite {
                addr: 0xD000_0010,
                value: 7,
                width: MemWidth::Word
            }
        );
    }

    #[test]
    fn periodic_resync_inserts_sync_messages() {
        let mut o = CoreObserver::new(CoreId(0), prog_always(), false, 2);
        o.observe_retire(&nop_retire(0x100), 0);
        for k in 0..6u32 {
            o.observe_retire(
                &branch_retire(0x104 + k * 8, true, 0x104 + k * 8 + 8),
                k as u64,
            );
        }
        let msgs = o.take_output();
        let syncs = msgs
            .iter()
            .filter(|m| matches!(m.message, TraceMessage::ProgSync { .. }))
            .count();
        assert_eq!(syncs, 1 + 3, "initial sync + every 2 program messages");
    }

    #[test]
    fn desync_resyncs_on_next_retire() {
        let mut o = CoreObserver::new(CoreId(0), prog_always(), false, 1000);
        o.observe_retire(&nop_retire(0x100), 0);
        o.take_output();
        o.desync();
        o.observe_retire(&nop_retire(0x104), 1);
        let msgs = o.take_output();
        assert_eq!(msgs[0].message, TraceMessage::ProgSync { pc: 0x104 });
    }

    #[test]
    fn extract_triggers_asserts_comparator_signals() {
        let cfg = CoreTraceConfig {
            program_comparators: vec![ProgramComparator::at(0x100)],
            data_comparators: vec![DataComparator::on(
                AddrRange::new(0xD000_0000, 0x100),
                crate::trigger::AccessKind::Any,
            )],
            ..Default::default()
        };
        let o = CoreObserver::new(CoreId(0), cfg, false, 1000);
        let mut s = SignalSet::new();
        o.extract_triggers(&nop_retire(0x100), &mut s);
        assert!(s.is_asserted(SignalRef::ProgComp {
            core: CoreId(0),
            idx: 0
        }));
        let mut s = SignalSet::new();
        o.extract_triggers(&store_retire(0x200, 0xD000_0004, 1), &mut s);
        assert!(s.is_asserted(SignalRef::DataComp {
            core: CoreId(0),
            idx: 0
        }));
        assert!(!s.is_asserted(SignalRef::ProgComp {
            core: CoreId(0),
            idx: 0
        }));
    }

    #[test]
    fn long_runs_force_flow_flush() {
        let mut o = CoreObserver::new(CoreId(0), prog_always(), false, 100_000);
        for k in 0..(MAX_I_CNT + 10) {
            o.observe_retire(&nop_retire(0x100 + k * 4), k as u64);
        }
        let msgs = o.take_output();
        assert!(msgs.iter().any(
            |m| matches!(m.message, TraceMessage::FlowFlush { i_cnt, .. } if i_cnt == MAX_I_CNT)
        ));
    }

    // The AluOp import is exercised indirectly; keep the compiler honest.
    #[allow(dead_code)]
    fn _unused(op: AluOp) -> AluOp {
        op
    }
}
