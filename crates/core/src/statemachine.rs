//! Counter- and state-machine-based complex triggers.
//!
//! Simple comparators only answer "did X happen this cycle". The paper's
//! trigger resources are "further enhanced using state-machines based on
//! counters" (Section 4) so developers can express *sequences* ("break on
//! the 100th iteration", "trace only after A then B happened").
//!
//! * [`TriggerCounter`] counts occurrences of a signal and asserts its
//!   output when the threshold is reached — the counter in the cross-trigger
//!   unit of Figure 2.
//! * [`TriggerStateMachine`] is a small (≤ 4 state) machine whose
//!   transitions fire on signals; it asserts its output while in its
//!   trigger state.

use crate::trigger::{SignalRef, SignalSet};

/// When a counter reasserts after firing.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CounterMode {
    /// Fire once, stay silent until reset.
    #[default]
    OneShot,
    /// Fire every `threshold` occurrences.
    Repeat,
}

/// Configuration of a trigger counter.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct CounterConfig {
    /// Signal whose assertions are counted.
    pub increment_on: SignalRef,
    /// Occurrences needed to fire.
    pub threshold: u64,
    /// Optional signal that clears the count.
    pub reset_on: Option<SignalRef>,
    /// Firing mode.
    pub mode: CounterMode,
}

/// Serializable runtime state of a [`TriggerCounter`] (count + fired latch;
/// the configuration is not included).
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterState {
    count: u64,
    fired: bool,
}

/// A running trigger counter.
#[derive(Debug, Clone)]
pub struct TriggerCounter {
    config: CounterConfig,
    count: u64,
    fired: bool,
}

impl TriggerCounter {
    /// Creates a counter from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(config: CounterConfig) -> TriggerCounter {
        assert!(config.threshold > 0, "counter threshold must be non-zero");
        TriggerCounter {
            config,
            count: 0,
            fired: false,
        }
    }

    /// The current count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Advances one cycle with the asserted `signals`; returns `true` if the
    /// counter output is asserted this cycle.
    pub fn step(&mut self, signals: &SignalSet) -> bool {
        if let Some(r) = self.config.reset_on {
            if signals.is_asserted(r) {
                self.count = 0;
                self.fired = false;
            }
        }
        if self.config.mode == CounterMode::OneShot && self.fired {
            return false;
        }
        if signals.is_asserted(self.config.increment_on) {
            self.count += 1;
            if self.count >= self.config.threshold {
                self.fired = true;
                if self.config.mode == CounterMode::Repeat {
                    self.count = 0;
                }
                return true;
            }
        }
        false
    }

    /// Clears the counter (debugger reset).
    pub fn reset(&mut self) {
        self.count = 0;
        self.fired = false;
    }

    /// Captures the counter's runtime state.
    pub fn save_state(&self) -> CounterState {
        CounterState {
            count: self.count,
            fired: self.fired,
        }
    }

    /// Restores state captured by [`TriggerCounter::save_state`].
    pub fn restore_state(&mut self, state: &CounterState) {
        self.count = state.count;
        self.fired = state.fired;
    }
}

/// Number of states in a trigger state machine.
pub const STATE_COUNT: usize = 4;

/// One transition: in `from`, when `on` is asserted, go to `to`.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Source state (0–3).
    pub from: u8,
    /// Triggering signal.
    pub on: SignalRef,
    /// Destination state (0–3).
    pub to: u8,
}

/// Configuration of a trigger state machine.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct StateMachineConfig {
    /// The transition table. The first transition matching the current
    /// state and an asserted signal is taken (at most one per cycle).
    pub transitions: Vec<Transition>,
    /// The state whose occupancy asserts the machine's output signal.
    pub trigger_state: u8,
}

/// A running trigger state machine.
#[derive(Debug, Clone)]
pub struct TriggerStateMachine {
    config: StateMachineConfig,
    state: u8,
}

impl TriggerStateMachine {
    /// Creates a machine in state 0.
    ///
    /// # Panics
    ///
    /// Panics if any state index is ≥ [`STATE_COUNT`].
    pub fn new(config: StateMachineConfig) -> TriggerStateMachine {
        assert!((config.trigger_state as usize) < STATE_COUNT);
        for t in &config.transitions {
            assert!((t.from as usize) < STATE_COUNT && (t.to as usize) < STATE_COUNT);
        }
        TriggerStateMachine { config, state: 0 }
    }

    /// The current state.
    pub fn state(&self) -> u8 {
        self.state
    }

    /// Advances one cycle; returns `true` while in the trigger state (after
    /// this cycle's transition).
    pub fn step(&mut self, signals: &SignalSet) -> bool {
        for t in &self.config.transitions {
            if t.from == self.state && signals.is_asserted(t.on) {
                self.state = t.to;
                break;
            }
        }
        self.state == self.config.trigger_state
    }

    /// Returns to state 0 (debugger reset).
    pub fn reset(&mut self) {
        self.state = 0;
    }

    /// Captures the machine's current state index.
    pub fn save_state(&self) -> u8 {
        self.state
    }

    /// Restores a state index captured by
    /// [`TriggerStateMachine::save_state`].
    ///
    /// # Panics
    ///
    /// Panics if `state` is ≥ [`STATE_COUNT`].
    pub fn restore_state(&mut self, state: u8) {
        assert!((state as usize) < STATE_COUNT);
        self.state = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_soc::event::CoreId;

    const SIG_A: SignalRef = SignalRef::ProgComp {
        core: CoreId(0),
        idx: 0,
    };
    const SIG_B: SignalRef = SignalRef::DataComp {
        core: CoreId(0),
        idx: 0,
    };
    const SIG_R: SignalRef = SignalRef::ExternalPin(0);

    fn set(signals: &[SignalRef]) -> SignalSet {
        let mut s = SignalSet::new();
        for &x in signals {
            s.assert_signal(x);
        }
        s
    }

    #[test]
    fn one_shot_counter_fires_once() {
        let mut c = TriggerCounter::new(CounterConfig {
            increment_on: SIG_A,
            threshold: 3,
            reset_on: None,
            mode: CounterMode::OneShot,
        });
        assert!(!c.step(&set(&[SIG_A])));
        assert!(!c.step(&set(&[SIG_A])));
        assert!(c.step(&set(&[SIG_A])), "third occurrence fires");
        assert!(!c.step(&set(&[SIG_A])), "one-shot stays silent");
    }

    #[test]
    fn repeat_counter_fires_periodically() {
        let mut c = TriggerCounter::new(CounterConfig {
            increment_on: SIG_A,
            threshold: 2,
            reset_on: None,
            mode: CounterMode::Repeat,
        });
        let mut fires = 0;
        for _ in 0..10 {
            if c.step(&set(&[SIG_A])) {
                fires += 1;
            }
        }
        assert_eq!(fires, 5);
    }

    #[test]
    fn counter_reset_signal_clears() {
        let mut c = TriggerCounter::new(CounterConfig {
            increment_on: SIG_A,
            threshold: 2,
            reset_on: Some(SIG_R),
            mode: CounterMode::OneShot,
        });
        c.step(&set(&[SIG_A]));
        c.step(&set(&[SIG_R]));
        assert_eq!(c.count(), 0);
        assert!(!c.step(&set(&[SIG_A])));
        assert!(c.step(&set(&[SIG_A])), "needs the full threshold again");
    }

    #[test]
    fn counter_ignores_cycles_without_signal() {
        let mut c = TriggerCounter::new(CounterConfig {
            increment_on: SIG_A,
            threshold: 1,
            reset_on: None,
            mode: CounterMode::OneShot,
        });
        assert!(!c.step(&set(&[])));
        assert!(!c.step(&set(&[SIG_B])));
        assert!(c.step(&set(&[SIG_A])));
    }

    #[test]
    fn state_machine_sequence_a_then_b() {
        // Trigger only when A happens and then B: 0 --A--> 1 --B--> 2.
        let mut m = TriggerStateMachine::new(StateMachineConfig {
            transitions: vec![
                Transition {
                    from: 0,
                    on: SIG_A,
                    to: 1,
                },
                Transition {
                    from: 1,
                    on: SIG_B,
                    to: 2,
                },
            ],
            trigger_state: 2,
        });
        assert!(!m.step(&set(&[SIG_B])), "B before A does nothing");
        assert!(!m.step(&set(&[SIG_A])));
        assert!(m.step(&set(&[SIG_B])), "A then B triggers");
        assert!(m.step(&set(&[])), "output level-holds in trigger state");
        m.reset();
        assert_eq!(m.state(), 0);
    }

    #[test]
    fn state_machine_one_transition_per_cycle() {
        let mut m = TriggerStateMachine::new(StateMachineConfig {
            transitions: vec![
                Transition {
                    from: 0,
                    on: SIG_A,
                    to: 1,
                },
                Transition {
                    from: 1,
                    on: SIG_A,
                    to: 2,
                },
            ],
            trigger_state: 2,
        });
        assert!(!m.step(&set(&[SIG_A])), "only one hop per cycle");
        assert_eq!(m.state(), 1);
        assert!(m.step(&set(&[SIG_A])));
    }
}
