//! Per-source message FIFOs with overflow accounting.
//!
//! Each trace source (core adaptation logic, bus tap) feeds a bounded FIFO
//! (Figure 1: "Message FIFO"). When trace bursts exceed the sink's drain
//! bandwidth the FIFO fills and messages are dropped; the FIFO records the
//! loss and injects an [`TraceMessage::Overflow`] marker as soon as space
//! frees up, so the host knows the flow is unreliable until the next sync.
//!
//! [`TraceMessage::Overflow`]: mcds_trace::TraceMessage::Overflow

use mcds_trace::{TimedMessage, TraceMessage, TraceSource};
use std::collections::VecDeque;

/// Serializable runtime state of a [`MessageFifo`]: queued messages and
/// overflow accounting. The source identity and depth are configuration and
/// are *not* included.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct FifoState {
    queue: Vec<TimedMessage>,
    pending_lost: u32,
    total_lost: u64,
    total_pushed: u64,
    markers_inserted: u64,
    high_water: u64,
}

/// A bounded trace-message FIFO for one source.
#[derive(Debug)]
pub struct MessageFifo {
    source: TraceSource,
    queue: VecDeque<TimedMessage>,
    depth: usize,
    pending_lost: u32,
    total_lost: u64,
    total_pushed: u64,
    markers_inserted: u64,
    high_water: usize,
}

impl MessageFifo {
    /// Creates a FIFO of `depth` entries for `source`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(source: TraceSource, depth: usize) -> MessageFifo {
        assert!(depth > 0, "FIFO depth must be non-zero");
        MessageFifo {
            source,
            queue: VecDeque::with_capacity(depth),
            depth,
            pending_lost: 0,
            total_lost: 0,
            total_pushed: 0,
            markers_inserted: 0,
            high_water: 0,
        }
    }

    /// The source this FIFO serves.
    pub fn source(&self) -> TraceSource {
        self.source
    }

    /// Offers a message. Returns `true` if accepted, `false` if dropped due
    /// to overflow.
    ///
    /// If messages were lost earlier, an overflow marker is inserted (taking
    /// one slot) before the new message.
    pub fn push(&mut self, message: TimedMessage) -> bool {
        if self.pending_lost > 0 && self.queue.len() < self.depth {
            self.queue.push_back(TimedMessage {
                timestamp: message.timestamp,
                source: self.source,
                message: TraceMessage::Overflow {
                    lost: self.pending_lost,
                },
            });
            self.pending_lost = 0;
            self.markers_inserted += 1;
            self.high_water = self.high_water.max(self.queue.len());
        }
        if self.queue.len() >= self.depth {
            self.pending_lost = self.pending_lost.saturating_add(1);
            self.total_lost += 1;
            return false;
        }
        self.queue.push_back(message);
        self.total_pushed += 1;
        self.high_water = self.high_water.max(self.queue.len());
        true
    }

    /// Peeks at the oldest entry.
    pub fn front(&self) -> Option<&TimedMessage> {
        self.queue.front()
    }

    /// Pops the oldest entry.
    pub fn pop(&mut self) -> Option<TimedMessage> {
        self.queue.pop_front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total messages dropped since creation.
    pub fn total_lost(&self) -> u64 {
        self.total_lost
    }

    /// Total messages accepted since creation.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Maximum occupancy observed (payloads and overflow markers alike).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Overflow markers inserted into the stream since creation.
    pub fn markers_inserted(&self) -> u64 {
        self.markers_inserted
    }

    /// Drops recorded since the last overflow marker was inserted — losses
    /// the stream does not yet announce.
    pub fn pending_lost(&self) -> u32 {
        self.pending_lost
    }

    /// Configured capacity in entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Captures the FIFO's runtime state (see [`FifoState`]).
    pub fn save_state(&self) -> FifoState {
        FifoState {
            queue: self.queue.iter().cloned().collect(),
            pending_lost: self.pending_lost,
            total_lost: self.total_lost,
            total_pushed: self.total_pushed,
            markers_inserted: self.markers_inserted,
            high_water: self.high_water as u64,
        }
    }

    /// Restores state captured by [`MessageFifo::save_state`].
    ///
    /// # Panics
    ///
    /// Panics if the saved queue does not fit this FIFO's depth.
    pub fn restore_state(&mut self, state: &FifoState) {
        assert!(
            state.queue.len() <= self.depth,
            "saved FIFO occupancy exceeds depth"
        );
        self.queue = state.queue.iter().cloned().collect();
        self.pending_lost = state.pending_lost;
        self.total_lost = state.total_lost;
        self.total_pushed = state.total_pushed;
        self.markers_inserted = state.markers_inserted;
        self.high_water = state.high_water as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_soc::event::CoreId;

    fn m(ts: u64) -> TimedMessage {
        TimedMessage {
            timestamp: ts,
            source: TraceSource::Core(CoreId(0)),
            message: TraceMessage::DirectBranch { i_cnt: 1 },
        }
    }

    #[test]
    fn fifo_preserves_order() {
        let mut f = MessageFifo::new(TraceSource::Core(CoreId(0)), 4);
        for ts in 0..4 {
            assert!(f.push(m(ts)));
        }
        for ts in 0..4 {
            assert_eq!(f.pop().unwrap().timestamp, ts);
        }
        assert!(f.is_empty());
    }

    #[test]
    fn overflow_drops_and_marks() {
        let mut f = MessageFifo::new(TraceSource::Core(CoreId(0)), 2);
        assert!(f.push(m(0)));
        assert!(f.push(m(1)));
        assert!(!f.push(m(2)), "full");
        assert!(!f.push(m(3)));
        assert_eq!(f.total_lost(), 2);
        f.pop();
        f.pop();
        // Next push first inserts the overflow marker.
        assert!(f.push(m(10)));
        let marker = f.pop().unwrap();
        assert_eq!(marker.message, TraceMessage::Overflow { lost: 2 });
        assert_eq!(marker.timestamp, 10);
        assert_eq!(f.pop().unwrap().timestamp, 10);
    }

    #[test]
    fn overflow_marker_consumes_a_slot() {
        let mut f = MessageFifo::new(TraceSource::Core(CoreId(0)), 2);
        f.push(m(0));
        f.push(m(1));
        f.push(m(2)); // dropped
        f.pop();
        // One free slot: the marker takes it, the payload is dropped again.
        assert!(!f.push(m(3)));
        assert_eq!(f.len(), 2);
        assert_eq!(f.total_lost(), 2);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut f = MessageFifo::new(TraceSource::Core(CoreId(0)), 8);
        for ts in 0..5 {
            f.push(m(ts));
        }
        f.pop();
        f.pop();
        assert_eq!(f.high_water(), 5);
        assert_eq!(f.len(), 3);
    }
}
