#![warn(missing_docs)]

//! # mcds — the Multi-Core Debug Solution
//!
//! A behavioural model of the MCDS trigger-and-trace block of Mayer,
//! Siebert and McDonald-Maier, *"Debug Support, Calibration and Emulation
//! for Multiple Processor and Powertrain Control SoCs"* (DATE 2005):
//!
//! * **Trigger extraction** ([`trigger`]) — program/data comparators per
//!   core, plus counters and state machines ([`statemachine`]) for complex
//!   conditions;
//! * **Cross-trigger unit and break & suspend switch** ([`xtrigger`]) —
//!   Figure 2's OR/AND/counter matrix routing triggers from any core (or an
//!   external pin) to break/suspend actions on any set of cores, with
//!   minimal slippage;
//! * **Message generation and qualification** ([`observer`]) — Figure 1's
//!   per-core adaptation logic producing compressed Nexus-class messages,
//!   gated by always/window qualifiers and data filters;
//! * **Time stamping and temporal ordering** ([`sorter`], [`fifo`]) —
//!   per-source FIFOs merged by cycle-level timestamps so "all messages are
//!   stored in correct temporal order".
//!
//! The block consumes the SoC's per-cycle observation stream
//! ([`mcds_soc::CycleRecord`]) and produces trigger outputs for the device
//! to apply plus a sorted trace-message stream for the PSI trace memory:
//!
//! ```
//! use mcds::{Mcds, McdsConfig};
//! use mcds::observer::{CoreTraceConfig, TraceQualifier};
//! use mcds_soc::soc::SocBuilder;
//! use mcds_soc::asm::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut soc = SocBuilder::new().cores(1).build();
//! soc.load_program(&assemble(".org 0x80000000\nli r1, 1\nhalt")?);
//! let mut mcds = Mcds::new(McdsConfig {
//!     cores: vec![CoreTraceConfig {
//!         program_trace: TraceQualifier::Always,
//!         ..Default::default()
//!     }],
//!     ..Default::default()
//! });
//! for _ in 0..100 {
//!     let (cycle, events) = soc.step_events();
//!     let outputs = mcds.on_cycle(cycle, events);
//!     assert!(outputs.break_cores.is_empty());
//! }
//! mcds.flush(soc.cycle());
//! assert!(!mcds.take_messages().is_empty());
//! # Ok(())
//! # }
//! ```

pub mod fifo;
pub mod observer;
pub mod sorter;
pub mod statemachine;
pub mod trigger;
pub mod xtrigger;

pub use observer::{CoreObserver, CoreTraceConfig, DataTraceConfig, ObserverState, TraceQualifier};
pub use sorter::{FifoMetrics, MergePolicy};
pub use statemachine::{
    CounterConfig, CounterMode, StateMachineConfig, Transition, TriggerCounter, TriggerStateMachine,
};
pub use trigger::{
    AccessKind, DataComparator, ProgramComparator, SignalRef, SignalSet, DATA_COMPARATORS_PER_CORE,
    PROG_COMPARATORS_PER_CORE,
};
pub use xtrigger::{CrossTrigger, CrossTriggerUnit, TriggerAction, TriggerOutputs};

use mcds_soc::bus::{AddrRange, MasterId, XferKind};
use mcds_soc::event::{CoreId, SocEvent};
use mcds_trace::{TimedMessage, TraceMessage, TraceSource};
use sorter::MessageSorter;

/// Configuration of the bus (system-centric) trace tap.
///
/// Section 4: "The system centric approach supports tracing of on-chip
/// multi-master buses and general system states, independently from the
/// processor cores."
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct BusTraceConfig {
    /// Only transactions inside this range are traced (`None` = all).
    pub range: Option<AddrRange>,
    /// Only transactions from these masters are traced (`None` = all).
    pub masters: Option<Vec<MasterId>>,
    /// Trace reads (and fetches).
    pub reads: bool,
    /// Trace writes (and atomics).
    pub writes: bool,
}

impl Default for BusTraceConfig {
    fn default() -> BusTraceConfig {
        BusTraceConfig {
            range: None,
            masters: None,
            reads: false,
            writes: true,
        }
    }
}

impl BusTraceConfig {
    fn matches(&self, x: &mcds_soc::bus::BusXact) -> bool {
        if let Some(r) = self.range {
            if !r.contains(x.addr) {
                return false;
            }
        }
        if let Some(masters) = &self.masters {
            if !masters.contains(&x.master) {
                return false;
            }
        }
        if x.kind.is_write() {
            self.writes
        } else {
            self.reads
        }
    }
}

/// Full MCDS configuration.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone)]
pub struct McdsConfig {
    /// Per-core trace/trigger configuration (index = core id). Length
    /// defines how many cores the block observes.
    pub cores: Vec<CoreTraceConfig>,
    /// Trigger counters.
    pub counters: Vec<CounterConfig>,
    /// Trigger state machines.
    pub state_machines: Vec<StateMachineConfig>,
    /// Cross-trigger matrix lines.
    pub cross_triggers: Vec<CrossTrigger>,
    /// Timestamp granularity in cycles (1 = cycle level, the paper's
    /// guarantee; larger values are the T5 ablation).
    pub timestamp_resolution: u64,
    /// Per-source FIFO depth in messages.
    pub fifo_depth: usize,
    /// Sink bandwidth: messages per drain the trace memory absorbs.
    pub sink_bandwidth: usize,
    /// Drain period in cycles: the sink accepts `sink_bandwidth` messages
    /// every `sink_drain_period` cycles. Values > 1 model the "growing
    /// mismatch between circuit frequency and device pin frequency"
    /// (Section 3) for externally-drained trace.
    pub sink_drain_period: u64,
    /// Program messages between periodic re-syncs.
    pub sync_period: u32,
    /// Branch-history compression (vs per-branch messages).
    pub history_mode: bool,
    /// How the sorter merges the per-source FIFOs (ablation knob; the
    /// paper's design is timestamp merge).
    pub merge_policy: sorter::MergePolicy,
    /// Optional multi-master bus trace tap.
    pub bus_trace: Option<BusTraceConfig>,
}

impl Default for McdsConfig {
    fn default() -> McdsConfig {
        McdsConfig {
            cores: Vec::new(),
            counters: Vec::new(),
            state_machines: Vec::new(),
            cross_triggers: Vec::new(),
            timestamp_resolution: 1,
            fifo_depth: 32,
            sink_bandwidth: 1,
            sync_period: 256,
            sink_drain_period: 1,
            history_mode: true,
            merge_policy: sorter::MergePolicy::default(),
            bus_trace: None,
        }
    }
}

/// Aggregate statistics of an MCDS session.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McdsStats {
    /// Messages generated by all observers (before FIFOs).
    pub generated: u64,
    /// Messages emitted by the sorter in temporal order.
    pub emitted: u64,
    /// Messages dropped on FIFO overflow.
    pub lost: u64,
    /// Messages still queued in FIFOs.
    pub backlog: usize,
}

/// Serializable runtime state of an [`Mcds`] block: observer windows and
/// pending runs, counter/state-machine positions, cross-trigger enables and
/// occurrence counts, FIFO contents and the drained-but-untaken sink. The
/// configuration is *not* included — [`Mcds::restore_state`] requires an
/// identically configured block. The per-cycle scratch buffer is always
/// empty at cycle boundaries and is restored empty.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
pub struct McdsState {
    observers: Vec<ObserverState>,
    counters: Vec<statemachine::CounterState>,
    machines: Vec<u8>,
    xunit: xtrigger::XtriggerState,
    sorter: sorter::SorterState,
    sink: Vec<TimedMessage>,
    generated: u64,
}

/// The MCDS block.
///
/// Drive it with one cycle's events per SoC cycle ([`Mcds::on_cycle`],
/// fed straight from `Soc::step_events`); apply the returned
/// [`TriggerOutputs`] to the cores (the PSI device model does this); read
/// the sorted message stream with [`Mcds::take_messages`].
#[derive(Debug)]
pub struct Mcds {
    config: McdsConfig,
    observers: Vec<CoreObserver>,
    counters: Vec<TriggerCounter>,
    machines: Vec<TriggerStateMachine>,
    xunit: CrossTriggerUnit,
    sorter: MessageSorter,
    sink: Vec<TimedMessage>,
    scratch: Vec<TimedMessage>,
    generated: u64,
    /// True when the configuration makes every cycle a provable no-op:
    /// no comparators, qualifiers, counters, state machines, cross-trigger
    /// lines or bus trace. Fixed until [`Mcds::reconfigure`] (runtime
    /// mutation only toggles enables on already-configured lines, which
    /// an empty matrix does not have); the sorter backlog is still checked
    /// dynamically before the fast path is taken.
    idle_config: bool,
}

impl Mcds {
    /// Creates the block from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if a core config exceeds the comparator limits, or FIFO
    /// depth / bandwidth / resolution is zero.
    pub fn new(config: McdsConfig) -> Mcds {
        assert!(
            config.timestamp_resolution > 0,
            "resolution must be non-zero"
        );
        assert!(
            config.sink_drain_period > 0,
            "drain period must be non-zero"
        );
        for (i, c) in config.cores.iter().enumerate() {
            assert!(
                c.program_comparators.len() <= PROG_COMPARATORS_PER_CORE,
                "core {i}: too many program comparators"
            );
            assert!(
                c.data_comparators.len() <= DATA_COMPARATORS_PER_CORE,
                "core {i}: too many data comparators"
            );
        }
        let observers: Vec<CoreObserver> = config
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| {
                CoreObserver::new(
                    CoreId(i as u8),
                    c.clone(),
                    config.history_mode,
                    config.sync_period,
                )
            })
            .collect();
        let mut sources: Vec<TraceSource> = observers
            .iter()
            .map(|o| TraceSource::Core(o.core()))
            .collect();
        sources.push(TraceSource::Bus);
        let counters = config
            .counters
            .iter()
            .cloned()
            .map(TriggerCounter::new)
            .collect();
        let machines = config
            .state_machines
            .iter()
            .cloned()
            .map(TriggerStateMachine::new)
            .collect();
        let xunit = CrossTriggerUnit::new(config.cross_triggers.clone());
        let sorter = MessageSorter::with_policy(
            &sources,
            config.fifo_depth,
            config.sink_bandwidth,
            config.merge_policy,
        );
        let idle_config = config.bus_trace.is_none()
            && config.counters.is_empty()
            && config.state_machines.is_empty()
            && config.cross_triggers.is_empty()
            && config.cores.iter().all(|c| {
                c.program_trace == TraceQualifier::Off
                    && c.data_trace.qualifier == TraceQualifier::Off
                    && c.program_comparators.is_empty()
                    && c.data_comparators.is_empty()
            });
        Mcds {
            config,
            observers,
            counters,
            machines,
            xunit,
            sorter,
            sink: Vec::new(),
            scratch: Vec::new(),
            generated: 0,
            idle_config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &McdsConfig {
        &self.config
    }

    /// Replaces the configuration, resetting all trigger and trace state
    /// (what a host-side reconfiguration does).
    pub fn reconfigure(&mut self, config: McdsConfig) {
        *self = Mcds::new(config);
    }

    /// The cross-trigger unit (e.g. to enable/disable lines at runtime).
    pub fn cross_trigger_unit_mut(&mut self) -> &mut CrossTriggerUnit {
        &mut self.xunit
    }

    /// Session statistics.
    pub fn stats(&self) -> McdsStats {
        McdsStats {
            generated: self.generated,
            emitted: self.sorter.emitted(),
            lost: self.sorter.total_lost(),
            backlog: self.sorter.backlog(),
        }
    }

    /// Per-source FIFO statistics as `(source, pushed, lost, high_water)`.
    pub fn fifo_stats(&self) -> Vec<(TraceSource, u64, u64, usize)> {
        self.sorter.fifo_stats()
    }

    /// Per-source FIFO metrics (occupancy, high-water, overflow-marker
    /// accounting) — the richer form telemetry publishes.
    pub fn fifo_metrics(&self) -> Vec<sorter::FifoMetrics> {
        self.sorter.fifo_metrics()
    }

    fn quantize(&self, cycle: u64) -> u64 {
        cycle / self.config.timestamp_resolution * self.config.timestamp_resolution
    }

    /// True when every cycle is provably a no-op for this block: nothing
    /// is configured to trigger or trace (no comparators, qualifiers,
    /// counters, state machines, cross-trigger lines or bus trace) and no
    /// messages are queued or awaiting collection. While this holds,
    /// [`Mcds::on_cycle`] returns empty outputs without touching any
    /// state — callers fast-forwarding a device may skip the call
    /// entirely. The flag can only change via [`Mcds::reconfigure`] or
    /// [`Mcds::restore_state`], never inside a stepping loop.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.idle_config && self.sink.is_empty() && self.sorter.backlog() == 0
    }

    /// Processes one SoC cycle: trigger extraction, complex triggers, the
    /// cross-trigger matrix, message generation, FIFO/sorter movement.
    /// Returns the trigger outputs for the device to apply.
    ///
    /// `events` is borrowed (typically from the SoC stepper's scratch
    /// buffer); nothing is retained past the call, so the streaming hot
    /// path feeds this with zero per-cycle allocation.
    #[inline]
    pub fn on_cycle(&mut self, cycle: u64, events: &[SocEvent]) -> TriggerOutputs {
        // Fast path: an idle MCDS (nothing configured to trigger or trace)
        // observes the stream for free — the common case when a device is
        // fast-forwarded without tracing. A restored sorter backlog still
        // takes the full path so it keeps draining. Kept small and
        // `#[inline]` so callers in other crates pay only the check.
        if self.is_idle() {
            return TriggerOutputs::default();
        }
        self.on_cycle_full(cycle, events)
    }

    fn on_cycle_full(&mut self, cycle: u64, events: &[SocEvent]) -> TriggerOutputs {
        let ts = self.quantize(cycle);

        // 1. Trigger extraction into the cycle's signal set.
        let mut signals = SignalSet::new();
        for event in events {
            match event {
                SocEvent::Retire(r) => {
                    if let Some(o) = self.observers.get(r.core.0 as usize) {
                        o.extract_triggers(r, &mut signals);
                    }
                }
                SocEvent::TriggerIn { line, level: true } => {
                    signals.assert_signal(SignalRef::ExternalPin(*line));
                }
                SocEvent::CoreStopped { core, .. } => {
                    signals.assert_signal(SignalRef::CoreStopped(*core));
                }
                SocEvent::IrqEntry { core, .. } => {
                    signals.assert_signal(SignalRef::IrqEntry(*core));
                }
                _ => {}
            }
        }

        // 2. Counters and state machines extend the signal set.
        let mut derived = Vec::new();
        for (i, c) in self.counters.iter_mut().enumerate() {
            if c.step(&signals) {
                derived.push(SignalRef::Counter(i));
            }
        }
        for (i, m) in self.machines.iter_mut().enumerate() {
            if m.step(&signals) {
                derived.push(SignalRef::StateMachine(i));
            }
        }
        for s in derived {
            signals.assert_signal(s);
        }

        // 3. Cross-trigger matrix.
        let outputs = self.xunit.evaluate(&signals);

        // 4. Message generation.
        for o in &mut self.observers {
            o.begin_cycle(&signals, ts);
        }
        for event in events {
            match event {
                SocEvent::Retire(r) => {
                    if let Some(o) = self.observers.get_mut(r.core.0 as usize) {
                        o.observe_retire(r, ts);
                    }
                }
                SocEvent::CoreStopped { core, .. } => {
                    if let Some(o) = self.observers.get_mut(core.0 as usize) {
                        o.observe_stop(ts);
                    }
                }
                SocEvent::IrqEntry { core, .. } => {
                    if let Some(o) = self.observers.get_mut(core.0 as usize) {
                        o.observe_irq(ts);
                    }
                }
                SocEvent::Bus(x) => {
                    if let Some(cfg) = &self.config.bus_trace {
                        if cfg.matches(x) {
                            let message = if x.kind.is_write() && x.kind != XferKind::Atomic {
                                TraceMessage::DataWrite {
                                    addr: x.addr,
                                    value: x.data,
                                    width: x.width,
                                }
                            } else {
                                TraceMessage::DataRead {
                                    addr: x.addr,
                                    value: x.data,
                                    width: x.width,
                                }
                            };
                            self.scratch.push(TimedMessage {
                                timestamp: ts,
                                source: TraceSource::Bus,
                                message,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        for id in &outputs.watchpoints {
            self.scratch.push(TimedMessage {
                timestamp: ts,
                source: TraceSource::Bus,
                message: TraceMessage::Watchpoint { id: *id },
            });
        }

        // 5. Move observer output through the FIFOs.
        for i in 0..self.observers.len() {
            let msgs = self.observers[i].take_output();
            self.generated += msgs.len() as u64;
            for m in msgs {
                let accepted = self.sorter.push(m);
                if !accepted && m.message.is_program() {
                    self.observers[i].desync();
                }
            }
        }
        let bus_msgs = std::mem::take(&mut self.scratch);
        self.generated += bus_msgs.len() as u64;
        for m in bus_msgs {
            self.sorter.push(m);
        }

        // 6. Drain the sink at its bandwidth. (Period 1 — every cycle —
        // short-circuits the u64 division out of the hot path.)
        if self.config.sink_drain_period == 1 || cycle.is_multiple_of(self.config.sink_drain_period)
        {
            self.sorter.drain_cycle(&mut self.sink);
        }
        outputs
    }

    /// Flushes pending observer runs and drains all FIFOs (end of session).
    /// `now` stamps the flush messages.
    pub fn flush(&mut self, now: u64) {
        let ts = self.quantize(now);
        for i in 0..self.observers.len() {
            self.observers[i].flush(ts);
            let msgs = self.observers[i].take_output();
            self.generated += msgs.len() as u64;
            for m in msgs {
                self.sorter.push(m);
            }
        }
        self.sorter.drain_all(&mut self.sink);
    }

    /// Takes the sorted messages drained so far.
    #[inline]
    pub fn take_messages(&mut self) -> Vec<TimedMessage> {
        std::mem::take(&mut self.sink)
    }

    /// Captures the block's complete runtime state (see [`McdsState`]).
    /// Must be called at a cycle boundary (outside [`Mcds::on_cycle`]).
    pub fn save_state(&self) -> McdsState {
        debug_assert!(self.scratch.is_empty(), "scratch drained every cycle");
        McdsState {
            observers: self
                .observers
                .iter()
                .map(CoreObserver::save_state)
                .collect(),
            counters: self
                .counters
                .iter()
                .map(TriggerCounter::save_state)
                .collect(),
            machines: self
                .machines
                .iter()
                .map(TriggerStateMachine::save_state)
                .collect(),
            xunit: self.xunit.save_state(),
            sorter: self.sorter.save_state(),
            sink: self.sink.clone(),
            generated: self.generated,
        }
    }

    /// Restores state captured by [`Mcds::save_state`] onto an identically
    /// configured block.
    ///
    /// # Panics
    ///
    /// Panics if the observer/counter/state-machine counts differ.
    pub fn restore_state(&mut self, state: &McdsState) {
        assert_eq!(
            self.observers.len(),
            state.observers.len(),
            "observer count mismatch on restore"
        );
        assert_eq!(
            self.counters.len(),
            state.counters.len(),
            "counter count mismatch on restore"
        );
        assert_eq!(
            self.machines.len(),
            state.machines.len(),
            "state-machine count mismatch on restore"
        );
        for (o, s) in self.observers.iter_mut().zip(&state.observers) {
            o.restore_state(s);
        }
        for (c, s) in self.counters.iter_mut().zip(&state.counters) {
            c.restore_state(s);
        }
        for (m, &s) in self.machines.iter_mut().zip(&state.machines) {
            m.restore_state(s);
        }
        self.xunit.restore_state(&state.xunit);
        self.sorter.restore_state(&state.sorter);
        self.sink = state.sink.clone();
        self.scratch.clear();
        self.generated = state.generated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_soc::asm::assemble;
    use mcds_soc::soc::{memmap, SocBuilder};
    use mcds_soc::Soc;

    fn run_with_mcds(soc: &mut Soc, mcds: &mut Mcds, max_cycles: u64) {
        for _ in 0..max_cycles {
            let (cycle, events) = soc.step_events();
            let out = mcds.on_cycle(cycle, events);
            for c in out.break_cores {
                soc.core_mut(c).request_break();
            }
            for c in out.suspend_cores {
                soc.core_mut(c).set_suspended(true);
            }
            for c in out.resume_cores {
                soc.core_mut(c).set_suspended(false);
            }
            if soc.cores().all(|c| c.is_halted()) {
                break;
            }
        }
    }

    fn counting_program() -> mcds_soc::asm::Program {
        assemble(
            "
            .org 0x80000000
            start:
                li r1, 20
            loop:
                addi r2, r2, 1
                addi r1, r1, -1
                bne r1, r0, loop
                halt
            ",
        )
        .unwrap()
    }

    fn always_cfg(cores: usize) -> McdsConfig {
        McdsConfig {
            cores: (0..cores)
                .map(|_| CoreTraceConfig {
                    program_trace: TraceQualifier::Always,
                    ..Default::default()
                })
                .collect(),
            fifo_depth: 1024,
            sink_bandwidth: 4,
            ..Default::default()
        }
    }

    #[test]
    fn end_to_end_trace_reconstructs_program_flow() {
        let program = counting_program();
        let mut soc = SocBuilder::new().cores(1).build();
        soc.load_program(&program);
        let mut mcds = Mcds::new(always_cfg(1));
        run_with_mcds(&mut soc, &mut mcds, 10_000);
        mcds.flush(soc.cycle());
        let msgs = mcds.take_messages();
        assert!(mcds.stats().lost == 0, "no overflow expected");

        let image = mcds_trace::ProgramImage::from(&program);
        let flow = mcds_trace::reconstruct_flow(&image, &msgs).expect("flow reconstructs");
        // li + 20 iterations of 3 instructions (the halt does not retire).
        assert_eq!(flow.len(), 1 + 20 * 3);
        assert_eq!(flow[0].pc, 0x8000_0000);
        assert_eq!(flow.last().unwrap().pc, 0x8000_000C);
    }

    #[test]
    fn cross_trigger_breaks_both_cores() {
        let program = counting_program();
        let mut soc = SocBuilder::new().cores(2).build();
        soc.load_program(&program);
        let mut config = always_cfg(2);
        // Break both cores on the 5th time core 1 passes the loop head.
        config.cores[1].program_comparators = vec![ProgramComparator::at(0x8000_0008)];
        config.cross_triggers = vec![CrossTrigger::on_any(
            vec![SignalRef::ProgComp {
                core: CoreId(1),
                idx: 0,
            }],
            TriggerAction::BreakCores(vec![CoreId(0), CoreId(1)]),
        )
        .with_count(5)];
        let mut mcds = Mcds::new(config);
        run_with_mcds(&mut soc, &mut mcds, 2_000);
        assert!(
            soc.core(CoreId(0)).is_halted(),
            "core 0 broken by cross trigger"
        );
        assert!(soc.core(CoreId(1)).is_halted());
        // Broke well before natural completion (20 iterations).
        assert!(soc.core(CoreId(1)).retired() < 1 + 20 * 3);
    }

    #[test]
    fn timestamps_are_monotonic_and_cycle_accurate() {
        let program = counting_program();
        let mut soc = SocBuilder::new().cores(2).build();
        soc.load_program(&program);
        let mut mcds = Mcds::new(always_cfg(2));
        run_with_mcds(&mut soc, &mut mcds, 10_000);
        mcds.flush(soc.cycle());
        let msgs = mcds.take_messages();
        assert!(!msgs.is_empty());
        for pair in msgs.windows(2) {
            assert!(pair[0].timestamp <= pair[1].timestamp, "sorted output");
        }
    }

    #[test]
    fn quantized_timestamps_coarsen() {
        let program = counting_program();
        let run = |resolution: u64| {
            let mut soc = SocBuilder::new().cores(1).build();
            soc.load_program(&program);
            let mut cfg = always_cfg(1);
            cfg.timestamp_resolution = resolution;
            cfg.history_mode = false; // one message per taken branch
            let mut mcds = Mcds::new(cfg);
            run_with_mcds(&mut soc, &mut mcds, 10_000);
            mcds.flush(soc.cycle());
            mcds.take_messages()
        };
        let fine = run(1);
        let coarse = run(64);
        let distinct = |msgs: &[TimedMessage]| {
            let mut t: Vec<u64> = msgs.iter().map(|m| m.timestamp).collect();
            t.dedup();
            t.len()
        };
        assert!(distinct(&fine) > distinct(&coarse));
        for m in &coarse {
            assert_eq!(m.timestamp % 64, 0);
        }
    }

    #[test]
    fn fifo_overflow_reported_and_flow_resyncs() {
        let long_program = assemble(
            "
            .org 0x80000000
            start:
                li r1, 200
                li r3, 0xD0000000
            loop:
                sw r1, 0(r3)
                addi r1, r1, -1
                bne r1, r0, loop
                halt
            ",
        )
        .unwrap();
        let mut soc = SocBuilder::new().cores(1).build();
        soc.load_program(&long_program);
        let mut cfg = always_cfg(1);
        cfg.cores[0].data_trace = DataTraceConfig {
            qualifier: TraceQualifier::Always,
            filter: None,
        };
        cfg.fifo_depth = 2;
        cfg.sink_bandwidth = 1;
        // Pin-limited sink: one message every 64 cycles cannot keep up with
        // one data message per ~15-cycle loop iteration.
        cfg.sink_drain_period = 64;
        let mut mcds = Mcds::new(cfg);
        run_with_mcds(&mut soc, &mut mcds, 50_000);
        mcds.flush(soc.cycle());
        let stats = mcds.stats();
        let msgs = mcds.take_messages();
        assert!(
            stats.lost > 0,
            "expected FIFO overflow with depth 2, bandwidth 1"
        );
        assert!(
            msgs.iter()
                .any(|m| matches!(m.message, TraceMessage::Overflow { .. })),
            "overflow marker present"
        );
        // Reconstruction still succeeds by skipping to the next sync.
        let image = mcds_trace::ProgramImage::from(&long_program);
        let flow = mcds_trace::reconstruct_flow(&image, &msgs);
        assert!(flow.is_ok(), "{flow:?}");
    }

    #[test]
    fn qualification_window_cuts_trace_volume() {
        let program = assemble(
            "
            .org 0x80000000
            start:
                li r1, 50
            warmup:
                addi r1, r1, -1
                bne r1, r0, warmup
            hot:                       ; window opens here
                li r2, 10
            hotloop:
                addi r2, r2, -1
                bne r2, r0, hotloop
            cold:                      ; window closes here
                li r3, 50
            cooldown:
                addi r3, r3, -1
                bne r3, r0, cooldown
                halt
            ",
        )
        .unwrap();
        let hot = program.symbol("hot").unwrap();
        let cold = program.symbol("cold").unwrap();

        let run = |qualifier: TraceQualifier, comparators: Vec<ProgramComparator>| {
            let mut soc = SocBuilder::new().cores(1).build();
            soc.load_program(&program);
            let mut cfg = always_cfg(1);
            cfg.cores[0].program_trace = qualifier;
            cfg.cores[0].program_comparators = comparators;
            let mut mcds = Mcds::new(cfg);
            run_with_mcds(&mut soc, &mut mcds, 50_000);
            mcds.flush(soc.cycle());
            mcds.take_messages().len()
        };

        let full = run(TraceQualifier::Always, vec![]);
        let windowed = run(
            TraceQualifier::Window {
                start: SignalRef::ProgComp {
                    core: CoreId(0),
                    idx: 0,
                },
                stop: SignalRef::ProgComp {
                    core: CoreId(0),
                    idx: 1,
                },
            },
            vec![ProgramComparator::at(hot), ProgramComparator::at(cold)],
        );
        assert!(
            windowed * 2 < full,
            "windowed trace ({windowed}) much smaller than full trace ({full})"
        );
        assert!(windowed > 0);
    }

    #[test]
    fn bus_trace_captures_all_masters() {
        let program = assemble(
            "
            .org 0x80000000
            start:
                li r3, 0xD0000000
                mfsr r1, coreid
                slli r2, r1, 2
                add r3, r3, r2
                li r4, 0x77
                sw r4, 0(r3)
                halt
            ",
        )
        .unwrap();
        let mut soc = SocBuilder::new().cores(2).build();
        soc.load_program(&program);
        let cfg = McdsConfig {
            cores: vec![CoreTraceConfig::default(), CoreTraceConfig::default()],
            bus_trace: Some(BusTraceConfig {
                range: Some(AddrRange::new(memmap::SRAM_BASE, 0x1000)),
                masters: None,
                reads: false,
                writes: true,
            }),
            ..Default::default()
        };
        let mut mcds = Mcds::new(cfg);
        run_with_mcds(&mut soc, &mut mcds, 5_000);
        mcds.flush(soc.cycle());
        let msgs = mcds.take_messages();
        let writes: Vec<_> = msgs
            .iter()
            .filter(|m| matches!(m.message, TraceMessage::DataWrite { .. }))
            .collect();
        assert_eq!(writes.len(), 2, "one store per core seen at the bus");
        assert!(writes.iter().all(|m| m.source == TraceSource::Bus));
    }

    #[test]
    fn watchpoint_action_emits_message() {
        let program = counting_program();
        let mut soc = SocBuilder::new().cores(1).build();
        soc.load_program(&program);
        let mut cfg = always_cfg(1);
        cfg.cores[0].program_comparators = vec![ProgramComparator::at(0x8000_0004)];
        cfg.cross_triggers = vec![CrossTrigger::on_any(
            vec![SignalRef::ProgComp {
                core: CoreId(0),
                idx: 0,
            }],
            TriggerAction::Watchpoint { id: 9 },
        )];
        let mut mcds = Mcds::new(cfg);
        run_with_mcds(&mut soc, &mut mcds, 10_000);
        mcds.flush(soc.cycle());
        let msgs = mcds.take_messages();
        let wp = msgs
            .iter()
            .filter(|m| matches!(m.message, TraceMessage::Watchpoint { id: 9 }))
            .count();
        assert_eq!(wp, 20, "one watchpoint per loop iteration");
    }

    #[test]
    fn reconfigure_resets_state() {
        let mut mcds = Mcds::new(always_cfg(1));
        mcds.on_cycle(0, &[]);
        mcds.reconfigure(always_cfg(2));
        assert_eq!(mcds.stats(), McdsStats::default());
        assert_eq!(mcds.config().cores.len(), 2);
    }
}

#[cfg(test)]
mod irq_trace_tests {
    use super::*;
    use mcds_soc::asm::assemble;
    use mcds_soc::cpu::DEFAULT_IRQ_VECTOR;
    use mcds_soc::soc::SocBuilder;
    use mcds_soc::{CoreId, SocEvent};

    /// Windowed program trace with interrupts landing inside and outside
    /// the window: every traced instruction must be real (a subset of the
    /// ground truth) and the window must survive ISR round trips.
    #[test]
    fn windowed_trace_survives_interrupts() {
        let program = assemble(&format!(
            "
            .equ PERIOD_REG, 0xF0000008
            .equ ACK_REG,    0xF000000C
            .org 0x80000000
            start:
                li r1, 700
                li r2, PERIOD_REG
                sw r1, 0(r2)
                li r1, 1
                mtsr irqen, r1
            outer:
                addi r9, r9, 1
            window_open:
                addi r3, r3, 1
                addi r3, r3, 1
            window_close:
                addi r9, r9, 1
                j outer
            .org {vector:#x}
            isr:
                addi r8, r8, 1
                li r1, ACK_REG
                sw r0, 0(r1)
                eret
            ",
            vector = DEFAULT_IRQ_VECTOR,
        ))
        .unwrap();
        let open_pc = program.symbol("window_open").unwrap();
        let close_pc = program.symbol("window_close").unwrap();
        let mut soc = SocBuilder::new().cores(1).build();
        soc.load_program(&program);
        let mut config = McdsConfig {
            cores: vec![CoreTraceConfig {
                program_comparators: vec![
                    ProgramComparator::at(open_pc),
                    ProgramComparator::at(close_pc),
                ],
                program_trace: TraceQualifier::Window {
                    start: SignalRef::ProgComp {
                        core: CoreId(0),
                        idx: 0,
                    },
                    stop: SignalRef::ProgComp {
                        core: CoreId(0),
                        idx: 1,
                    },
                },
                ..Default::default()
            }],
            fifo_depth: 1 << 14,
            sink_bandwidth: 16,
            ..Default::default()
        };
        config.sync_period = 8;
        let mut mcds = Mcds::new(config);
        let mut truth = Vec::new();
        let mut irqs = 0;
        for _ in 0..60_000u64 {
            let (cycle, events) = soc.step_events();
            for e in events {
                match e {
                    SocEvent::Retire(r) => truth.push(r.pc),
                    SocEvent::IrqEntry { .. } => irqs += 1,
                    _ => {}
                }
            }
            mcds.on_cycle(cycle, events);
        }
        assert!(irqs > 20, "{irqs} interrupts");
        mcds.flush(soc.cycle());
        let messages = mcds.take_messages();
        assert_eq!(mcds.stats().lost, 0);
        let image = mcds_trace::ProgramImage::from(&program);
        let flow = mcds_trace::reconstruct_flow(&image, &messages).expect("reconstructs");
        assert!(!flow.is_empty());
        // Every traced pc is one the core really executed, in order:
        // the windowed flow is a subsequence of the truth.
        let mut t = truth.iter();
        for e in &flow {
            assert!(
                t.any(|&pc| pc == e.pc),
                "traced pc {:#x} out of order vs ground truth",
                e.pc
            );
        }
        // The window body is in the trace…
        assert!(flow.iter().any(|e| e.pc == open_pc));
        // …and some ISR instructions appear whenever an interrupt landed
        // inside an open window.
        let isr_traced = flow.iter().filter(|e| e.pc >= DEFAULT_IRQ_VECTOR).count();
        assert!(isr_traced > 0, "ISR visible inside windows");
    }
}
