//! Property tests for `MessageFifo` overflow-marker accounting.
//!
//! The FIFO's counters feed the telemetry layer, so their mutual
//! consistency is a contract: under *any* interleaving of pushes and pops,
//! `total_pushed`, `total_lost`, `markers_inserted`, `pending_lost` and
//! `high_water` must agree with what an external observer counting the
//! same operations sees, and every loss must eventually be announced by
//! exactly one overflow marker carrying the right count.

use mcds::fifo::MessageFifo;
use mcds_soc::event::CoreId;
use mcds_trace::{TimedMessage, TraceMessage, TraceSource};
use proptest::prelude::*;

fn payload(ts: u64) -> TimedMessage {
    TimedMessage {
        timestamp: ts,
        source: TraceSource::Core(CoreId(0)),
        message: TraceMessage::DirectBranch { i_cnt: 1 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn overflow_accounting_is_mutually_consistent(
        depth in 1usize..6,
        ops in proptest::collection::vec((any::<bool>(), 0u8..4), 0..120),
    ) {
        let mut fifo = MessageFifo::new(TraceSource::Core(CoreId(0)), depth);

        // Shadow accounting maintained purely from the outside.
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        let mut max_len = 0usize;
        let mut popped_marker_lost = 0u64;
        let mut popped_markers = 0u64;
        let mut ts = 0u64;

        for (is_push, weight) in ops {
            // Bias towards pushes (any pop weight 0..4 == 0 still pops) so
            // overflow actually happens at small depths.
            if is_push || weight > 0 {
                let ok = fifo.push(payload(ts));
                ts += 1;
                if ok {
                    accepted += 1;
                } else {
                    rejected += 1;
                }
            } else if let Some(m) = fifo.pop() {
                if let TraceMessage::Overflow { lost } = m.message {
                    popped_markers += 1;
                    popped_marker_lost += u64::from(lost);
                }
            }
            max_len = max_len.max(fifo.len());
            prop_assert!(fifo.len() <= depth, "occupancy may never exceed depth");
        }

        // Counters match the externally observed outcomes.
        prop_assert_eq!(fifo.total_pushed(), accepted);
        prop_assert_eq!(fifo.total_lost(), rejected);
        prop_assert_eq!(fifo.high_water(), max_len);
        prop_assert!(fifo.high_water() <= depth);

        // Drain what's left and finish the marker census.
        let mut queued_marker_lost = 0u64;
        let mut queued_markers = 0u64;
        while let Some(m) = fifo.pop() {
            if let TraceMessage::Overflow { lost } = m.message {
                queued_markers += 1;
                queued_marker_lost += u64::from(lost);
            }
        }
        // Every inserted marker is seen exactly once on the way out, and
        // announced + still-pending losses account for every drop.
        prop_assert_eq!(fifo.markers_inserted(), popped_markers + queued_markers);
        prop_assert_eq!(
            popped_marker_lost + queued_marker_lost + u64::from(fifo.pending_lost()),
            fifo.total_lost()
        );
    }

    #[test]
    fn drained_fifo_announces_all_losses(
        depth in 1usize..5,
        extra in 1usize..20,
    ) {
        // Fill past capacity, then fully drain with one refill push: the
        // marker stream must announce every dropped message.
        let mut fifo = MessageFifo::new(TraceSource::Core(CoreId(0)), depth);
        for ts in 0..(depth + extra) as u64 {
            fifo.push(payload(ts));
        }
        prop_assert_eq!(fifo.total_lost(), extra as u64);
        while fifo.pop().is_some() {}
        // Space is free: the next push must first emit the marker. At
        // depth 1 the marker consumes the only slot and the payload is
        // itself dropped — a fresh, not-yet-announced loss.
        let accepted = fifo.push(payload(1_000));
        let marker = fifo.pop().unwrap();
        prop_assert_eq!(
            marker.message,
            TraceMessage::Overflow { lost: extra as u32 }
        );
        prop_assert_eq!(fifo.pending_lost(), if accepted { 0 } else { 1 });
        prop_assert_eq!(fifo.markers_inserted(), 1);
    }
}
