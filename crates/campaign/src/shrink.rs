//! Automatic repro shrinking: reduce a failing scenario to a minimal one
//! that still fails the *same way*.
//!
//! The predicate is exact failure-class preservation: a candidate is
//! accepted only if re-running it yields the same [`Verdict::kind`] as the
//! original failure. Passes run to a fixpoint (bounded): binary-search the
//! cycle budget down, drop whole fault/trigger/debug-burst lists, then
//! individual elements, then stimulus chunks, finally truncate stimulus
//! past the (possibly reduced) end of the run. Every candidate execution
//! is a full deterministic re-run, so the shrunk scenario's failure is
//! reproducible by construction.

use crate::runner::run_scenario;
use crate::scenario::Scenario;
use mcds_workloads::stimulus::Profile;

/// Accounting for one shrink session.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Default)]
pub struct ShrinkStats {
    /// Candidate executions tried.
    pub attempts: u64,
    /// Candidates accepted (strictly smaller, same failure).
    pub accepted: u64,
    /// Cycle budget before shrinking.
    pub from_cycles: u64,
    /// Cycle budget after shrinking.
    pub to_cycles: u64,
    /// Input events before shrinking.
    pub from_events: usize,
    /// Input events after shrinking.
    pub to_events: usize,
}

/// Bounded fixpoint iterations: each pass re-runs all strategies.
const MAX_ROUNDS: usize = 4;

/// Shrinks `sc` while preserving its failure class. Returns `None` if the
/// scenario does not fail at all (nothing to shrink).
pub fn shrink(sc: &Scenario) -> Option<(Scenario, ShrinkStats)> {
    let baseline = run_scenario(sc);
    if !baseline.verdict.is_failure() {
        return None;
    }
    let kind = baseline.verdict.kind();
    let mut stats = ShrinkStats {
        from_cycles: sc.cycles,
        from_events: sc.compile().len(),
        ..ShrinkStats::default()
    };
    let mut current = sc.clone();

    let fails = |candidate: &Scenario, stats: &mut ShrinkStats| -> bool {
        stats.attempts += 1;
        run_scenario(candidate).verdict.kind() == kind
    };

    for _ in 0..MAX_ROUNDS {
        let before = fingerprint_size(&current);

        // 1. Binary-search the minimal failing cycle budget.
        let mut lo = 1u64;
        let mut hi = current.cycles;
        let granularity = (current.cycles / 64).max(512);
        while hi.saturating_sub(lo) > granularity {
            let mid = lo + (hi - lo) / 2;
            let mut candidate = current.clone();
            candidate.cycles = mid;
            if fails(&candidate, &mut stats) {
                hi = mid;
                stats.accepted += 1;
                current = candidate;
            } else {
                lo = mid;
            }
        }

        // 2. Drop whole event families.
        if !current.faults.is_empty() {
            let mut candidate = current.clone();
            candidate.faults.clear();
            if fails(&candidate, &mut stats) {
                stats.accepted += 1;
                current = candidate;
            }
        }
        if !current.triggers.is_empty() {
            let mut candidate = current.clone();
            candidate.triggers.clear();
            if fails(&candidate, &mut stats) {
                stats.accepted += 1;
                current = candidate;
            }
        }
        if !current.bursts.is_empty() {
            let mut candidate = current.clone();
            candidate.bursts.clear();
            if fails(&candidate, &mut stats) {
                stats.accepted += 1;
                current = candidate;
            }
        }

        // 3. Drop individual surviving elements (back to front, so removal
        //    indices stay valid).
        for i in (0..current.faults.len()).rev() {
            let mut candidate = current.clone();
            candidate.faults.remove(i);
            if fails(&candidate, &mut stats) {
                stats.accepted += 1;
                current = candidate;
            }
        }
        for i in (0..current.triggers.len()).rev() {
            let mut candidate = current.clone();
            candidate.triggers.remove(i);
            if fails(&candidate, &mut stats) {
                stats.accepted += 1;
                current = candidate;
            }
        }
        for i in (0..current.bursts.len()).rev() {
            let mut candidate = current.clone();
            candidate.bursts.remove(i);
            if fails(&candidate, &mut stats) {
                stats.accepted += 1;
                current = candidate;
            }
        }

        // 4. Drop stimulus in chunks, then truncate past the end of the
        //    (possibly shortened) run.
        let chunk = (current.stimulus.len() / 8).max(1);
        let mut start = 0;
        while start < current.stimulus.len() {
            let end = (start + chunk).min(current.stimulus.len());
            let mut candidate = current.clone();
            candidate.stimulus.drain(start..end);
            if fails(&candidate, &mut stats) {
                stats.accepted += 1;
                current = candidate;
                // Same index now holds the next chunk.
            } else {
                start = end;
            }
        }
        let truncated = Profile::from_samples(current.stimulus.clone())
            .truncated(current.cycles)
            .samples()
            .to_vec();
        if truncated.len() < current.stimulus.len() {
            let mut candidate = current.clone();
            candidate.stimulus = truncated;
            if fails(&candidate, &mut stats) {
                stats.accepted += 1;
                current = candidate;
            }
        }

        if fingerprint_size(&current) == before {
            break; // Fixpoint: a full pass removed nothing.
        }
    }

    stats.to_cycles = current.cycles;
    stats.to_events = current.compile().len();
    Some((current, stats))
}

/// A cheap size measure driving fixpoint detection.
fn fingerprint_size(sc: &Scenario) -> (u64, usize, usize, usize, usize) {
    (
        sc.cycles,
        sc.stimulus.len(),
        sc.faults.len(),
        sc.triggers.len(),
        sc.bursts.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Workload;
    use mcds_psi::FaultPlan;

    fn planted_race(seed: u64) -> Scenario {
        let mut sc = Scenario::generate(seed);
        sc.workload = Workload::RaceBuggy;
        sc.cycles = 60_000;
        sc
    }

    #[test]
    fn passing_scenario_does_not_shrink() {
        let sc = Scenario {
            seed: 9,
            workload: Workload::RaceLocked,
            cycles: 60_000,
            stimulus: Vec::new(),
            faults: Vec::new(),
            triggers: Vec::new(),
            bursts: Vec::new(),
        };
        assert!(shrink(&sc).is_none());
    }

    #[test]
    fn race_repro_shrinks_and_still_fails_the_same_way() {
        let sc = planted_race(21);
        // Give it some removable baggage.
        let mut sc = sc;
        sc.faults.push(crate::scenario::FaultBurst {
            iface: mcds_psi::InterfaceKind::Jtag,
            start_cycle: 1_000,
            duration: 5_000,
            plan: FaultPlan::lossy(3, 100),
        });
        let (small, stats) = shrink(&sc).expect("planted breaker fails");
        assert!(small.cycles <= sc.cycles);
        assert!(stats.attempts > 0);
        assert!(
            small.faults.is_empty(),
            "irrelevant fault burst shrunk away"
        );
        let out = run_scenario(&small);
        assert_eq!(out.verdict.kind(), "invariant");
        // Shrinking is deterministic.
        let (small2, _) = shrink(&sc).expect("still fails");
        assert_eq!(small.fingerprint(), small2.fingerprint());
    }
}
