//! Randomized campaign scenarios: a workload, a cycle budget, sensor
//! stimulus, link-fault schedules, trigger perturbations and XCP-style
//! debug-traffic bursts — all generated from one seed and compiled into a
//! replayable [`InputLog`].
//!
//! A scenario is a *pure value*: generating, mutating and compiling it use
//! only counter-keyed PRNG draws (the same SplitMix64 the fault injector
//! uses), never wall-clock time or thread identity, so the whole campaign
//! is a deterministic function of its seed.

use mcds::observer::{CoreTraceConfig, TraceQualifier};
use mcds::McdsConfig;
use mcds_psi::device::{DebugOp, Device, DeviceBuilder, DeviceVariant};
use mcds_psi::interface::InterfaceKind;
use mcds_psi::{DownWindow, FaultPlan};
use mcds_replay::{fnv1a64, InputEvent, InputLog};
use mcds_soc::soc::memmap;
use mcds_trace::ProgramImage;
use mcds_workloads::stimulus::{Profile, Sample};

pub use mcds_workloads::Workload;

/// Base of the scratch SRAM window debug-burst *writes* are confined to,
/// well clear of every workload's shared variables (which live in the
/// first `0x200` bytes of SRAM).
pub const SCRATCH_BASE: u32 = memmap::SRAM_BASE + 0x4000;

/// Size of the scratch window.
pub const SCRATCH_SIZE: u32 = 0x1000;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small deterministic PRNG (SplitMix64 over an incrementing counter —
/// the same generator the fault injector keys its draws with).
#[derive(Debug, Clone)]
pub struct Prng {
    seed: u64,
    counter: u64,
}

impl Prng {
    /// A generator for `seed`.
    pub fn new(seed: u64) -> Prng {
        Prng { seed, counter: 0 }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let z = splitmix64(self.seed ^ splitmix64(self.counter));
        self.counter = self.counter.wrapping_add(1);
        z
    }

    /// A draw uniform in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// A draw uniform in `lo..hi` (`hi > lo`).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi.saturating_sub(lo).max(1))
    }

    /// True with probability `per_mille`/1000.
    pub fn chance(&mut self, per_mille: u16) -> bool {
        self.below(1000) < u64::from(per_mille)
    }
}

/// A timed fault-plan installation on one debug link: `plan` goes live at
/// `start_cycle` and is cleared `duration` cycles later.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone)]
pub struct FaultBurst {
    /// The link the plan is installed on.
    pub iface: InterfaceKind,
    /// Cycle the plan is installed.
    pub start_cycle: u64,
    /// Cycles until the plan is cleared again.
    pub duration: u64,
    /// The seeded fault plan.
    pub plan: FaultPlan,
}

/// An external trigger-in pin perturbation.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy)]
pub struct TriggerPulse {
    /// Cycle the level is driven.
    pub cycle: u64,
    /// New trigger-in level bitmask.
    pub level: u32,
}

/// An XCP-style burst of debug traffic: `count` word reads (or writes into
/// the scratch window) issued back-to-back over `iface` starting at
/// `cycle` — the calibration-tool traffic the paper's links carry.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy)]
pub struct DebugBurst {
    /// Cycle the first command is issued.
    pub cycle: u64,
    /// The link the burst travels over.
    pub iface: InterfaceKind,
    /// Word-aligned target address.
    pub addr: u32,
    /// Words per command.
    pub words: u32,
    /// Commands in the burst.
    pub count: u32,
    /// True for writes (scratch window only), false for reads.
    pub write: bool,
    /// Seed for the written payload.
    pub seed: u64,
}

/// One randomized campaign scenario.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone)]
pub struct Scenario {
    /// The seed this scenario was generated (or mutated) from.
    pub seed: u64,
    /// The application workload.
    pub workload: Workload,
    /// Cycle budget of the run.
    pub cycles: u64,
    /// Sensor stimulus samples (cycle-ordered at compile time).
    pub stimulus: Vec<Sample>,
    /// Link fault schedules.
    pub faults: Vec<FaultBurst>,
    /// Trigger-in pin perturbations.
    pub triggers: Vec<TriggerPulse>,
    /// Debug-traffic bursts.
    pub bursts: Vec<DebugBurst>,
}

const IFACES: [InterfaceKind; 3] = [
    InterfaceKind::Jtag,
    InterfaceKind::Usb11,
    InterfaceKind::Can,
];

impl Scenario {
    /// Generates a fresh scenario from `seed`.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = Prng::new(seed);
        let workload = Workload::GENERATED[rng.below(Workload::GENERATED.len() as u64) as usize];
        let cycles = rng.range(40_000, 120_000);
        let stimulus = Self::gen_stimulus(&mut rng, workload, cycles);
        let faults = Self::gen_faults(&mut rng, cycles);
        let triggers = Self::gen_triggers(&mut rng, cycles);
        let bursts = Self::gen_bursts(&mut rng, cycles);
        Scenario {
            seed,
            workload,
            cycles,
            stimulus,
            faults,
            triggers,
            bursts,
        }
    }

    fn gen_stimulus(rng: &mut Prng, workload: Workload, cycles: u64) -> Vec<Sample> {
        let mut samples = Vec::new();
        for &(port, min, max) in workload.stimulated_ports() {
            let steps = (cycles / 1_000).clamp(4, 96) as u32;
            let walk_seed = rng.next_u64();
            let start = rng.range(u64::from(min), u64::from(max) + 1) as u32;
            let period = (cycles / u64::from(steps) + 1).max(1);
            let profile = Profile::random_walk(
                port,
                walk_seed,
                start,
                min,
                max,
                (max - min) / 6 + 1,
                period,
                steps,
            );
            samples.extend(profile.samples());
        }
        samples
    }

    fn gen_faults(rng: &mut Prng, cycles: u64) -> Vec<FaultBurst> {
        let n = rng.below(4);
        (0..n)
            .map(|_| {
                let start_cycle = rng.below(cycles.saturating_sub(2_000).max(1));
                let duration = rng.range(1_000, cycles.saturating_sub(start_cycle).max(1_001));
                let mut plan = FaultPlan::lossy(rng.next_u64(), rng.range(10, 250) as u16);
                plan.max_jitter_cycles = rng.below(64) as u32;
                if rng.chance(250) {
                    // A whole-link outage inside the burst window.
                    let o_start = start_cycle + rng.below(duration.max(1));
                    let o_end = o_start + rng.range(100, 2_000);
                    if let Ok(w) = DownWindow::new(o_start, o_end) {
                        plan.down_windows.push(w);
                    }
                }
                FaultBurst {
                    iface: IFACES[rng.below(IFACES.len() as u64) as usize],
                    start_cycle,
                    duration,
                    plan,
                }
            })
            .collect()
    }

    fn gen_triggers(rng: &mut Prng, cycles: u64) -> Vec<TriggerPulse> {
        let n = rng.below(3);
        (0..n)
            .map(|_| TriggerPulse {
                cycle: rng.below(cycles.max(1)),
                level: (rng.below(4)) as u32,
            })
            .collect()
    }

    fn gen_bursts(rng: &mut Prng, cycles: u64) -> Vec<DebugBurst> {
        let n = rng.below(4);
        (0..n)
            .map(|_| {
                let write = rng.chance(400);
                let addr = if write {
                    // Writes stay inside the scratch window so they cannot
                    // corrupt workload state.
                    SCRATCH_BASE + (rng.below(u64::from(SCRATCH_SIZE / 8)) as u32) * 4
                } else {
                    memmap::SRAM_BASE + (rng.below(0x100) as u32) * 4
                };
                DebugBurst {
                    cycle: rng.below(cycles.max(1)),
                    // JTAG only: USB 1.1 commands cost ~3 ms of simulated
                    // time each, which would dwarf the cycle budget.
                    iface: InterfaceKind::Jtag,
                    addr,
                    words: rng.range(1, 9) as u32,
                    count: rng.range(1, 5) as u32,
                    write,
                    seed: rng.next_u64(),
                }
            })
            .collect()
    }

    /// A mutated copy: 1–3 structural tweaks (cycle budget, stimulus
    /// re-roll, fault/trigger/burst add-remove), deterministic in
    /// `mutation_seed`.
    pub fn mutate(&self, mutation_seed: u64) -> Scenario {
        let mut rng = Prng::new(mutation_seed);
        let mut sc = self.clone();
        sc.seed = mutation_seed;
        let tweaks = 1 + rng.below(3);
        for _ in 0..tweaks {
            match rng.below(6) {
                0 => {
                    // Grow or shrink the cycle budget by up to 25%.
                    let delta = rng.below(sc.cycles / 4 + 1);
                    sc.cycles = if rng.chance(500) {
                        (sc.cycles + delta).min(200_000)
                    } else {
                        sc.cycles.saturating_sub(delta).max(10_000)
                    };
                    sc.stimulus = Profile::from_samples(sc.stimulus)
                        .truncated(sc.cycles)
                        .samples()
                        .to_vec();
                }
                1 => sc.stimulus = Self::gen_stimulus(&mut rng, sc.workload, sc.cycles),
                2 => {
                    if sc.faults.is_empty() || rng.chance(500) {
                        sc.faults.extend(Self::gen_faults(&mut rng, sc.cycles));
                    } else {
                        let i = rng.below(sc.faults.len() as u64) as usize;
                        sc.faults.remove(i);
                    }
                }
                3 => {
                    if sc.triggers.is_empty() || rng.chance(500) {
                        sc.triggers.extend(Self::gen_triggers(&mut rng, sc.cycles));
                    } else {
                        let i = rng.below(sc.triggers.len() as u64) as usize;
                        sc.triggers.remove(i);
                    }
                }
                4 => {
                    if sc.bursts.is_empty() || rng.chance(500) {
                        sc.bursts.extend(Self::gen_bursts(&mut rng, sc.cycles));
                    } else {
                        let i = rng.below(sc.bursts.len() as u64) as usize;
                        sc.bursts.remove(i);
                    }
                }
                _ => {
                    // Perturb fault-plan intensity in place.
                    for f in &mut sc.faults {
                        f.plan.drop_per_mille = (f.plan.drop_per_mille / 2) + rng.below(200) as u16;
                    }
                }
            }
        }
        sc
    }

    /// Compiles the scenario into a cycle-ordered replayable input log.
    pub fn compile(&self) -> InputLog {
        let mut events: Vec<InputEvent> = Vec::new();
        for s in &self.stimulus {
            events.push(InputEvent::Stimulus {
                cycle: s.cycle,
                port: s.port,
                value: s.value,
            });
        }
        for f in &self.faults {
            events.push(InputEvent::Fault {
                cycle: f.start_cycle,
                iface: f.iface,
                plan: f.plan.clone(),
            });
            events.push(InputEvent::ClearFault {
                cycle: f.start_cycle.saturating_add(f.duration),
                iface: f.iface,
            });
        }
        for t in &self.triggers {
            events.push(InputEvent::TriggerIn {
                cycle: t.cycle,
                level: t.level,
            });
        }
        for b in &self.bursts {
            let mut payload_rng = Prng::new(b.seed);
            for i in 0..b.count {
                // Commands are spaced out; replay re-pays the link latency.
                let cycle = b.cycle + u64::from(i) * 16;
                let op = if b.write {
                    DebugOp::WriteWords {
                        addr: b.addr,
                        data: (0..b.words)
                            .map(|_| payload_rng.next_u64() as u32)
                            .collect(),
                    }
                } else {
                    DebugOp::ReadWords {
                        addr: b.addr,
                        count: b.words as usize,
                    }
                };
                events.push(InputEvent::Debug {
                    cycle,
                    iface: b.iface,
                    op,
                });
            }
        }
        events.sort_by_key(InputEvent::cycle);
        let mut log = InputLog::new();
        for e in events {
            log.record(e);
        }
        log
    }

    /// Builds the device this scenario runs on: the right core layout for
    /// the workload, always-on program trace into emulation RAM, program
    /// loaded and ready at reset.
    pub fn build_device(&self) -> Device {
        let mut builder = DeviceBuilder::new(DeviceVariant::EdSideBooster);
        for cc in self.workload.core_configs() {
            builder = builder.core(cc);
        }
        let mut dev = builder
            .mcds(Self::tracing_config(self.workload.cores()))
            .build();
        dev.soc_mut().load_program(&self.workload.program());
        dev
    }

    /// The reconstruction image matching [`Scenario::build_device`].
    pub fn image(&self) -> ProgramImage {
        ProgramImage::from(&self.workload.program())
    }

    /// A stable content fingerprint (FNV-1a over the canonical JSON form).
    pub fn fingerprint(&self) -> u64 {
        match serde_json::to_string(self) {
            Ok(json) => fnv1a64(json.as_bytes()),
            Err(_) => 0,
        }
    }

    fn tracing_config(cores: usize) -> McdsConfig {
        McdsConfig {
            cores: (0..cores)
                .map(|_| CoreTraceConfig {
                    program_trace: TraceQualifier::Always,
                    ..Default::default()
                })
                .collect(),
            fifo_depth: 4096,
            sink_bandwidth: 8,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = Scenario::generate(seed);
            let b = Scenario::generate(seed);
            assert_eq!(a.fingerprint(), b.fingerprint(), "seed {seed}");
            assert_eq!(a.compile().len(), b.compile().len());
        }
        assert_ne!(
            Scenario::generate(1).fingerprint(),
            Scenario::generate(2).fingerprint()
        );
    }

    #[test]
    fn mutation_is_deterministic_and_usually_differs() {
        let base = Scenario::generate(7);
        let a = base.mutate(99);
        let b = base.mutate(99);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), base.fingerprint());
    }

    #[test]
    fn compile_orders_events_by_cycle() {
        let sc = Scenario::generate(0xAB);
        let log = sc.compile();
        let cycles: Vec<u64> = log.events().iter().map(InputEvent::cycle).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn debug_burst_writes_stay_in_scratch_window() {
        for seed in 0..50u64 {
            let sc = Scenario::generate(seed);
            for b in &sc.bursts {
                if b.write {
                    let end = b.addr + b.words * 4;
                    assert!(b.addr >= SCRATCH_BASE && end <= SCRATCH_BASE + SCRATCH_SIZE);
                }
            }
        }
    }

    #[test]
    fn every_generated_workload_builds_and_runs() {
        for w in Workload::GENERATED {
            let sc = Scenario {
                seed: 1,
                workload: w,
                cycles: 2_000,
                stimulus: Vec::new(),
                faults: Vec::new(),
                triggers: Vec::new(),
                bursts: Vec::new(),
            };
            let mut dev = sc.build_device();
            dev.run_cycles(2_000);
            assert_eq!(dev.soc().cycle(), 2_000);
        }
    }
}
