//! Scenario execution and triage: run a compiled scenario on a fresh
//! device, harvest coverage through the real (lossy) trace path, check
//! workload invariants, verify record/replay convergence and classify the
//! outcome into a [`Verdict`].

use crate::driver::CampaignError;
use crate::scenario::{Scenario, Workload};
use mcds_analysis::CoverageReport;
use mcds_host::{coverage_from_messages_lossy, drain_residual_trace};
use mcds_psi::device::Device;
use mcds_replay::{
    device_state_hash, run_with_events, trace_bytes, Replayer, ReproArtifact, SocSnapshot,
};
use mcds_trace::StreamDecoder;
use mcds_workloads::{gearbox, race};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The classified outcome of one scenario execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Ran to the end with every invariant intact and a convergent replay.
    Pass,
    /// A workload invariant failed (e.g. gear out of range, lost counter
    /// updates).
    InvariantViolation {
        /// What was violated.
        detail: String,
    },
    /// The recorded run and its replay ended on different state hashes.
    Divergence {
        /// Final state hash of the recorded run.
        recorded: u64,
        /// Final state hash of the replay.
        replayed: u64,
    },
    /// The execution panicked.
    Panic {
        /// The panic payload, if printable.
        detail: String,
    },
}

impl Verdict {
    /// True for anything that should enter the shrinking pipeline.
    pub fn is_failure(&self) -> bool {
        !matches!(self, Verdict::Pass)
    }

    /// Stable failure-class name (used for repro artifacts and dedup).
    pub fn kind(&self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::InvariantViolation { .. } => "invariant",
            Verdict::Divergence { .. } => "divergence",
            Verdict::Panic { .. } => "panic",
        }
    }

    /// Human-readable detail for reports.
    pub fn detail(&self) -> String {
        match self {
            Verdict::Pass => String::new(),
            Verdict::InvariantViolation { detail } => detail.clone(),
            Verdict::Divergence { recorded, replayed } => {
                format!("recorded {recorded:#018x} != replayed {replayed:#018x}")
            }
            Verdict::Panic { detail } => detail.clone(),
        }
    }
}

/// Everything one scenario execution produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The classified verdict.
    pub verdict: Verdict,
    /// Coverage harvested through the lossy trace path (a lower bound
    /// whenever link faults cost trace).
    pub coverage: CoverageReport,
    /// Final device state hash of the recorded run.
    pub state_hash: u64,
    /// Cycle the run ended on.
    pub end_cycle: u64,
    /// True when the scenario injected link faults.
    pub faulted: bool,
    /// True when the scenario injected link faults *and* still passed —
    /// the robustness signal campaigns exist to accumulate.
    pub recovered: bool,
}

/// One raw execution: fresh device, replay the compiled log for the cycle
/// budget, drain residual trace, hash the end state and harvest coverage.
fn execute(sc: &Scenario) -> (Device, u64, CoverageReport) {
    let mut dev = sc.build_device();
    let log = sc.compile();
    let mut rep = Replayer::new(&log);
    run_with_events(&mut dev, &mut rep, sc.cycles);
    drain_residual_trace(&mut dev);
    let hash = device_state_hash(&dev);
    let coverage = harvest_coverage(sc, &dev);
    (dev, hash, coverage)
}

/// Decodes whatever trace survived the run's link faults into a coverage
/// report. Decode problems degrade into gap accounting, never errors: a
/// campaign's coverage signal must survive hostile fault schedules.
fn harvest_coverage(sc: &Scenario, dev: &Device) -> CoverageReport {
    let image = sc.image();
    match trace_bytes(dev) {
        Some(bytes) => {
            let (messages, resync) = StreamDecoder::new(bytes).collect_resilient();
            let extra = resync.gaps + u64::from(resync.tail_lost);
            coverage_from_messages_lossy(&image, &messages, extra)
        }
        None => coverage_from_messages_lossy(&image, &[], 1),
    }
}

/// Checks the workload's invariants on the final device state.
fn check_invariants(sc: &Scenario, dev: &Device) -> Option<String> {
    match sc.workload {
        // The CAN-coupled vehicle variant publishes the same shared gear
        // variable, so the range invariant carries over unchanged.
        Workload::Gearbox | Workload::EngineGearbox | Workload::EngineGearboxVehicle => {
            let gear = dev.soc().backdoor_read_word(gearbox::GEAR_ADDR);
            (gear > gearbox::GEARS)
                .then(|| format!("gear {gear} out of range 0..={}", gearbox::GEARS))
        }
        Workload::RaceLocked | Workload::RaceBuggy => {
            let all_halted = dev.soc().cores().all(|c| c.is_halted());
            if !all_halted {
                return None; // Still running: the counter is not final yet.
            }
            let total = dev.soc().backdoor_read_word(race::COUNTER_ADDR);
            let expected = race::expected_total();
            (total != expected)
                .then(|| format!("shared counter {total} != expected {expected} (lost updates)"))
        }
        Workload::Engine => None,
    }
}

fn run_scenario_inner(sc: &Scenario) -> RunOutcome {
    let (dev, recorded_hash, coverage) = execute(sc);
    let faulted = !sc.faults.is_empty();

    let verdict = if let Some(detail) = check_invariants(sc, &dev) {
        Verdict::InvariantViolation { detail }
    } else {
        // Replay the identical log on a second fresh device: the model is
        // deterministic, so any hash mismatch is a genuine divergence bug.
        let (_, replayed_hash, _) = execute(sc);
        if replayed_hash != recorded_hash {
            Verdict::Divergence {
                recorded: recorded_hash,
                replayed: replayed_hash,
            }
        } else {
            Verdict::Pass
        }
    };

    let recovered = faulted && !verdict.is_failure();
    RunOutcome {
        verdict,
        coverage,
        state_hash: recorded_hash,
        end_cycle: dev.soc().cycle(),
        faulted,
        recovered,
    }
}

/// Runs one scenario end to end, converting panics anywhere in the
/// execution path into a [`Verdict::Panic`] so a single bad scenario can
/// never take down the campaign.
pub fn run_scenario(sc: &Scenario) -> RunOutcome {
    match catch_unwind(AssertUnwindSafe(|| run_scenario_inner(sc))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let detail = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "panic payload not printable".to_string());
            RunOutcome {
                verdict: Verdict::Panic { detail },
                coverage: CoverageReport::default(),
                state_hash: 0,
                end_cycle: 0,
                faulted: !sc.faults.is_empty(),
                recovered: false,
            }
        }
    }
}

/// Re-runs `sc` and captures the final device snapshot (for embedding in
/// a repro artifact alongside the expected hash).
pub fn final_snapshot(sc: &Scenario) -> (u64, SocSnapshot) {
    let (dev, hash, _) = execute(sc);
    (hash, SocSnapshot::capture(&dev))
}

/// Replays a repro artifact: rebuilds the device from the embedded
/// scenario, re-applies the embedded input log for the embedded cycle
/// budget and returns the final state hash.
///
/// # Errors
///
/// [`CampaignError::ScenarioDecode`] when the embedded scenario JSON does
/// not parse.
pub fn replay_repro(artifact: &ReproArtifact) -> Result<u64, CampaignError> {
    let sc: Scenario =
        serde_json::from_str(&artifact.scenario_json).map_err(CampaignError::ScenarioDecode)?;
    let mut dev = sc.build_device();
    let mut rep = Replayer::new(&artifact.log);
    run_with_events(&mut dev, &mut rep, artifact.cycles);
    drain_residual_trace(&mut dev);
    Ok(device_state_hash(&dev))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_scenario_passes_with_coverage() {
        let sc = Scenario {
            seed: 3,
            workload: Workload::Gearbox,
            cycles: 20_000,
            stimulus: mcds_workloads::stimulus::Profile::ramp(
                gearbox::SPEED_PORT,
                5,
                110,
                0,
                15_000,
                20,
            )
            .samples()
            .to_vec(),
            faults: Vec::new(),
            triggers: Vec::new(),
            bursts: Vec::new(),
        };
        let out = run_scenario(&sc);
        assert_eq!(out.verdict, Verdict::Pass, "{}", out.verdict.detail());
        assert!(out.coverage.covered_instructions() > 0, "trace decoded");
        assert!(!out.faulted && !out.recovered);
    }

    #[test]
    fn race_buggy_violates_the_counter_invariant() {
        let sc = Scenario {
            seed: 4,
            workload: Workload::RaceBuggy,
            cycles: 40_000,
            stimulus: Vec::new(),
            faults: Vec::new(),
            triggers: Vec::new(),
            bursts: Vec::new(),
        };
        let out = run_scenario(&sc);
        assert_eq!(out.verdict.kind(), "invariant", "{:?}", out.verdict);
        assert!(out.verdict.detail().contains("lost updates"));
    }

    #[test]
    fn race_locked_passes() {
        let sc = Scenario {
            seed: 5,
            workload: Workload::RaceLocked,
            cycles: 60_000,
            stimulus: Vec::new(),
            faults: Vec::new(),
            triggers: Vec::new(),
            bursts: Vec::new(),
        };
        let out = run_scenario(&sc);
        assert_eq!(out.verdict, Verdict::Pass, "{}", out.verdict.detail());
    }

    #[test]
    fn faulted_pass_counts_as_recovered() {
        let mut sc = Scenario::generate(11);
        sc.workload = Workload::Gearbox;
        sc.cycles = 20_000;
        let out = run_scenario(&sc);
        if !sc.faults.is_empty() && out.verdict == Verdict::Pass {
            assert!(out.recovered);
        }
        // Determinism of the whole outcome.
        let again = run_scenario(&sc);
        assert_eq!(out.state_hash, again.state_hash);
        assert_eq!(out.verdict, again.verdict);
    }
}
