#![warn(missing_docs)]

//! # mcds-campaign — coverage-guided fault campaigns with replay-based
//! repro shrinking
//!
//! The debug infrastructure this workspace reproduces (Mayer et al., DATE
//! 2005) exists to make rare concurrency and link-robustness failures
//! observable. This crate turns the whole stack into a *campaign engine*
//! that hunts for such failures automatically:
//!
//! * [`scenario`] — seeded randomized scenarios: a powertrain workload, a
//!   cycle budget, sensor stimulus, link fault schedules
//!   ([`mcds_psi::FaultPlan`]), trigger perturbations and XCP-style debug
//!   bursts, compiled into a replayable [`mcds_replay::InputLog`];
//! * [`runner`] — deterministic execution + triage: run, harvest coverage
//!   through the real (lossy) trace path, check workload invariants,
//!   verify record/replay convergence, catch panics;
//! * [`driver`] — the feedback loop: parallel batches on a worker pool,
//!   max-merged [`mcds_analysis::CoverageReport`] frontier as the
//!   guidance signal, corpus mutation toward frontier growth;
//! * [`shrink`] — failing scenarios are automatically reduced (cycle
//!   bisection, event-family and element dropping, stimulus trimming) into
//!   a minimal deterministic [`mcds_replay::ReproArtifact`] that
//!   `cargo test` replays bit-identically.
//!
//! Despite the thread pool, a campaign is a pure function of its seed:
//! scenario generation and mutation use counter-keyed draws, and worker
//! results are re-ordered by batch index before any corpus decision.
//!
//! ```
//! use mcds_campaign::{Campaign, CampaignConfig};
//!
//! let mut campaign = Campaign::new(CampaignConfig {
//!     seed: 42,
//!     rounds: 1,
//!     batch: 2,
//!     workers: 2,
//!     max_corpus: 8,
//! });
//! let report = campaign.run();
//! assert_eq!(report.execs, 2);
//! ```

pub mod driver;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use driver::{Campaign, CampaignConfig, CampaignError, CampaignReport, Failure, RoundStats};
pub use runner::{final_snapshot, replay_repro, run_scenario, RunOutcome, Verdict};
pub use scenario::{
    DebugBurst, FaultBurst, Prng, Scenario, TriggerPulse, Workload, SCRATCH_BASE, SCRATCH_SIZE,
};
pub use shrink::{shrink, ShrinkStats};
