//! The campaign driver: seeded corpus, parallel batch execution,
//! coverage-frontier feedback and automatic repro distillation.
//!
//! Determinism contract: the entire campaign — corpus contents, frontier,
//! failure set, shrunk repros — is a pure function of
//! [`CampaignConfig::seed`]. Scenarios are generated and mutated with
//! counter-keyed draws; worker threads only *execute* scenarios (each
//! execution is itself deterministic), and their results are re-ordered by
//! batch index before any corpus decision, so thread scheduling cannot
//! leak into the outcome.

use crate::runner::{run_scenario, RunOutcome};
use crate::scenario::{Prng, Scenario};
use crate::shrink::{shrink, ShrinkStats};
use mcds_analysis::CoverageReport;
use mcds_replay::{ReproArtifact, ReproError};
use mcds_telemetry::{Subsystem, Telemetry};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Feedback rounds to run.
    pub rounds: usize,
    /// Scenarios per round.
    pub batch: usize,
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Corpus size cap (oldest entries are evicted beyond it).
    pub max_corpus: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 0x00C0_FFEE,
            rounds: 4,
            batch: 16,
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(2),
            max_corpus: 64,
        }
    }
}

/// A typed campaign-level error.
#[derive(Debug)]
pub enum CampaignError {
    /// A worker thread died or its result channel broke.
    Worker {
        /// What went wrong.
        detail: String,
    },
    /// A repro artifact's embedded scenario failed to parse.
    ScenarioDecode(serde_json::Error),
    /// Saving or loading a repro artifact failed.
    Repro(ReproError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Worker { detail } => write!(f, "campaign worker failed: {detail}"),
            CampaignError::ScenarioDecode(e) => write!(f, "embedded scenario unparseable: {e}"),
            CampaignError::Repro(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<ReproError> for CampaignError {
    fn from(e: ReproError) -> CampaignError {
        CampaignError::Repro(e)
    }
}

/// A distilled failure: the original scenario, its shrunk form, and the
/// ready-to-ship repro artifact.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The scenario as first caught.
    pub scenario: Scenario,
    /// The minimal scenario still failing the same way.
    pub shrunk: Scenario,
    /// Failure class (`"invariant"`, `"divergence"`, `"panic"`).
    pub kind: String,
    /// Human-readable detail from the shrunk run.
    pub detail: String,
    /// Shrink accounting.
    pub stats: ShrinkStats,
    /// The serialized repro (scenario + input log + expected hash +
    /// end-state snapshot).
    pub artifact: ReproArtifact,
}

/// Per-round statistics.
#[derive(Debug, Clone)]
pub struct RoundStats {
    /// Round index (0-based).
    pub round: usize,
    /// Scenario executions this round.
    pub execs: u64,
    /// Corpus size after the round.
    pub corpus: usize,
    /// Frontier coverage after the round.
    pub frontier_instructions: usize,
    /// Frontier arc coverage after the round.
    pub frontier_arcs: usize,
    /// Failures distilled this round.
    pub failures: usize,
}

/// The completed campaign's results.
#[derive(Debug)]
pub struct CampaignReport {
    /// Max-merged coverage over every passing execution.
    pub frontier: CoverageReport,
    /// Fingerprints of the final corpus, in corpus order.
    pub corpus_fingerprints: Vec<u64>,
    /// Total scenario executions.
    pub execs: u64,
    /// Per-round statistics.
    pub rounds: Vec<RoundStats>,
    /// Distilled failures, deduplicated by shrunk-scenario fingerprint.
    pub failures: Vec<Failure>,
    /// Scenarios that injected link faults and still passed.
    pub recovered_fault_scenarios: u64,
    /// Non-fatal worker-pool problems (lost results, dead threads).
    pub worker_errors: Vec<String>,
}

/// A coverage-guided fault campaign.
#[derive(Debug)]
pub struct Campaign {
    config: CampaignConfig,
    telemetry: Option<Telemetry>,
    planted: Vec<Scenario>,
}

impl Campaign {
    /// Creates a campaign with `config`.
    pub fn new(config: CampaignConfig) -> Campaign {
        Campaign {
            config,
            telemetry: None,
            planted: Vec::new(),
        }
    }

    /// Attaches a telemetry hub; campaign counters, gauges and per-scenario
    /// spans are recorded into it.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Plants an explicit scenario into round 0's batch — the way known
    /// invariant breakers (e.g. the buggy race workload) enter a campaign.
    pub fn plant(&mut self, scenario: Scenario) {
        self.planted.push(scenario);
    }

    /// Runs the campaign to completion.
    pub fn run(&mut self) -> CampaignReport {
        let mut rng = Prng::new(self.config.seed);
        let mut corpus: Vec<Scenario> = Vec::new();
        let mut frontier = CoverageReport::default();
        let mut report_rounds = Vec::new();
        let mut failures: Vec<Failure> = Vec::new();
        let mut seen_failures: Vec<u64> = Vec::new();
        let mut execs = 0u64;
        let mut recovered = 0u64;
        let mut worker_errors: Vec<String> = Vec::new();

        let tel = self.telemetry.clone();
        let metrics = tel.as_ref().map(|t| {
            let r = t.registry();
            (
                r.counter("campaign_execs_total", "Scenario executions"),
                r.counter("campaign_failures_total", "Distilled failures"),
                r.counter("campaign_shrink_attempts_total", "Shrink candidate runs"),
                r.counter("campaign_repros_total", "Repro artifacts produced"),
                r.gauge("campaign_corpus_size", "Scenarios in the corpus"),
                r.gauge(
                    "campaign_frontier_instructions",
                    "Frontier instruction coverage",
                ),
                r.gauge("campaign_frontier_arcs", "Frontier arc coverage"),
            )
        });

        for round in 0..self.config.rounds {
            let mut batch: Vec<Scenario> = Vec::new();
            if round == 0 {
                batch.append(&mut self.planted);
            }
            while batch.len() < self.config.batch {
                let seed = rng.next_u64();
                let sc = if corpus.is_empty() || rng.chance(350) {
                    Scenario::generate(seed)
                } else {
                    let parent = &corpus[rng.below(corpus.len() as u64) as usize];
                    parent.mutate(seed)
                };
                batch.push(sc);
            }

            let round_t0 = Instant::now();
            let outcomes = run_batch(&batch, self.config.workers, &mut worker_errors);
            let mut round_failures = 0usize;

            // Results are processed strictly in batch order so thread
            // scheduling cannot influence corpus or frontier decisions.
            for (i, outcome) in outcomes.into_iter().enumerate() {
                let Some(outcome) = outcome else {
                    worker_errors.push(format!("round {round}: result {i} lost"));
                    continue;
                };
                execs += 1;
                if let Some(t) = tel.as_ref() {
                    t.spans()
                        .record(Subsystem::Campaign, 0, outcome.end_cycle, 0);
                }
                if outcome.recovered {
                    recovered += 1;
                }
                if outcome.verdict.is_failure() {
                    if let Some(failure) = distill(&batch[i]) {
                        if !seen_failures.contains(&failure.shrunk.fingerprint()) {
                            seen_failures.push(failure.shrunk.fingerprint());
                            if let Some((_, fails, shrinks, repros, ..)) = metrics.as_ref() {
                                fails.inc();
                                shrinks.add(failure.stats.attempts);
                                repros.inc();
                            }
                            round_failures += 1;
                            failures.push(failure);
                        }
                    }
                } else {
                    let merged = frontier.merge(&outcome.coverage);
                    let grew = merged.covered_instructions() > frontier.covered_instructions()
                        || merged.covered_arcs() > frontier.covered_arcs();
                    frontier = merged;
                    if grew {
                        corpus.push(batch[i].clone());
                        if corpus.len() > self.config.max_corpus {
                            corpus.remove(0);
                        }
                    }
                }
            }

            if let Some((execs_c, _, _, _, corpus_g, instr_g, arcs_g)) = metrics.as_ref() {
                execs_c.add(batch.len() as u64);
                corpus_g.set(corpus.len() as f64);
                instr_g.set(frontier.covered_instructions() as f64);
                arcs_g.set(frontier.covered_arcs() as f64);
            }
            if let Some(t) = tel.as_ref() {
                t.spans().record(
                    Subsystem::Campaign,
                    0,
                    0,
                    round_t0.elapsed().as_nanos() as u64,
                );
            }
            report_rounds.push(RoundStats {
                round,
                execs: batch.len() as u64,
                corpus: corpus.len(),
                frontier_instructions: frontier.covered_instructions(),
                frontier_arcs: frontier.covered_arcs(),
                failures: round_failures,
            });
        }

        CampaignReport {
            frontier,
            corpus_fingerprints: corpus.iter().map(Scenario::fingerprint).collect(),
            execs,
            rounds: report_rounds,
            failures,
            recovered_fault_scenarios: recovered,
            worker_errors,
        }
    }
}

/// Executes a batch on a worker pool. Results come back keyed by batch
/// index; a lost result (dead worker, broken channel) leaves a `None` slot
/// and a note in `errors` instead of aborting the campaign.
fn run_batch(
    batch: &[Scenario],
    workers: usize,
    errors: &mut Vec<String>,
) -> Vec<Option<RunOutcome>> {
    let mut results: Vec<Option<RunOutcome>> = vec![None; batch.len()];
    let workers = workers.clamp(1, batch.len().max(1));
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, RunOutcome)>();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            handles.push(scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= batch.len() {
                    break;
                }
                let outcome = run_scenario(&batch[i]);
                if tx.send((i, outcome)).is_err() {
                    break; // Receiver gone: stop quietly.
                }
            }));
        }
        drop(tx);
        for (i, outcome) in rx {
            if i < results.len() {
                results[i] = Some(outcome);
            }
        }
        for h in handles {
            if let Err(payload) = h.join() {
                let detail = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "worker panic payload not printable".to_string());
                errors.push(format!("worker thread panicked: {detail}"));
            }
        }
    });
    results
}

/// Shrinks a failing scenario and packages the repro artifact. Returns
/// `None` when the failure did not reproduce under shrinking (flaky by
/// construction this should not happen; treated as spurious).
fn distill(scenario: &Scenario) -> Option<Failure> {
    // An ephemeral flight recorder follows the triage pipeline so the
    // artifact documents *how* the repro was produced, not just what it
    // is: which scenario was caught, how far shrinking got, and what the
    // final verdict was. The journal is per-distill (outside all
    // simulated state), so recording cannot perturb the repro itself.
    // Timestamps are the phase index, not the wall clock: same-seed
    // campaigns must serialize byte-identical artifacts.
    let journal = mcds_obs::Journal::new(128);
    journal.record_at(
        None,
        None,
        0,
        mcds_obs::ObsEvent::CampaignPhase {
            phase: "caught".into(),
            detail: format!(
                "seed {:#x} fingerprint {:#018x}",
                scenario.seed,
                scenario.fingerprint()
            ),
        },
    );
    let (shrunk, stats) = shrink(scenario)?;
    journal.record_at(
        None,
        Some(shrunk.cycles),
        1,
        mcds_obs::ObsEvent::CampaignPhase {
            phase: "shrunk".into(),
            detail: format!(
                "{} attempts, {} accepted: {} -> {} cycles, {} -> {} events",
                stats.attempts,
                stats.accepted,
                stats.from_cycles,
                stats.to_cycles,
                stats.from_events,
                stats.to_events
            ),
        },
    );
    let shrunk_outcome = run_scenario(&shrunk);
    journal.record_at(
        None,
        Some(shrunk.cycles),
        2,
        mcds_obs::ObsEvent::CampaignPhase {
            phase: "triage".into(),
            detail: format!(
                "{}: {}",
                shrunk_outcome.verdict.kind(),
                shrunk_outcome.verdict.detail()
            ),
        },
    );
    let (expected_hash, snapshot) = crate::runner::final_snapshot(&shrunk);
    journal.record_at(
        None,
        Some(shrunk.cycles),
        3,
        mcds_obs::ObsEvent::CampaignPhase {
            phase: "snapshot".into(),
            detail: format!("expected state hash {expected_hash:#018x}"),
        },
    );
    let scenario_json = serde_json::to_string(&shrunk).ok()?;
    let artifact = ReproArtifact::new(
        shrunk_outcome.verdict.kind(),
        shrunk_outcome.verdict.detail(),
        shrunk.seed,
        shrunk.cycles,
        expected_hash,
        scenario_json,
        shrunk.compile(),
    )
    .with_snapshot(snapshot)
    .with_flight_recorder(journal.tail_json(64));
    Some(Failure {
        scenario: scenario.clone(),
        shrunk,
        kind: shrunk_outcome.verdict.kind().to_string(),
        detail: shrunk_outcome.verdict.detail(),
        stats,
        artifact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_campaign_is_deterministic() {
        let config = CampaignConfig {
            seed: 0x5EED,
            rounds: 2,
            batch: 3,
            workers: 2,
            max_corpus: 8,
        };
        let a = Campaign::new(config.clone()).run();
        let b = Campaign::new(config).run();
        assert_eq!(a.corpus_fingerprints, b.corpus_fingerprints);
        assert_eq!(a.execs, b.execs);
        assert_eq!(
            a.frontier.covered_instructions(),
            b.frontier.covered_instructions()
        );
        assert_eq!(a.failures.len(), b.failures.len());
        assert!(a.worker_errors.is_empty(), "{:?}", a.worker_errors);
    }

    #[test]
    fn frontier_is_monotone_across_rounds() {
        let mut campaign = Campaign::new(CampaignConfig {
            seed: 7,
            rounds: 3,
            batch: 3,
            workers: 2,
            max_corpus: 8,
        });
        let report = campaign.run();
        let mut last = 0;
        for r in &report.rounds {
            assert!(r.frontier_instructions >= last, "frontier shrank");
            last = r.frontier_instructions;
        }
        assert!(report.frontier.covered_instructions() > 0);
    }
}
