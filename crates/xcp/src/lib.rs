#![warn(missing_docs)]

//! # mcds-xcp — measurement and calibration protocol
//!
//! An XCP-flavoured implementation of the calibration system of Section 6
//! of Mayer et al. (DATE 2005): *"a robust calibration system is
//! implemented using the universal measurement and calibration protocol XCP
//! over USB, or for extreme form factors an existing CAN interface."*
//!
//! * [`packet`] — command/response/DTO objects with ASAM-style codes and
//!   CAN-frame-friendly wire sizes;
//! * [`daq`] — DAQ lists, ODTs and the allocation state machine;
//! * [`slave`] — the protocol engine on the PCP2 service core: memory
//!   access over the debug bus master, calibration-page commands driving
//!   the address-mapping block, DAQ sampling that never stops a core;
//! * [`master`] — the host-side tool: block read/write, page management,
//!   one-call measurement setup, all paying transport timing.
//!
//! ```
//! use mcds_psi::device::{DeviceBuilder, DeviceVariant};
//! use mcds_psi::interface::InterfaceKind;
//! use mcds_soc::asm::assemble;
//! use mcds_soc::soc::memmap;
//! use mcds_xcp::XcpMaster;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster).cores(1).build();
//! dev.soc_mut().load_program(&assemble(".org 0x80000000\nloop: j loop")?);
//! let mut master = XcpMaster::new(InterfaceKind::Usb11);
//! master.connect(&mut dev)?;
//! master.write_block(&mut dev, memmap::SRAM_BASE, &[1, 2, 3, 4])?;
//! assert_eq!(master.read_block(&mut dev, memmap::SRAM_BASE, 4)?, vec![1, 2, 3, 4]);
//! # Ok(())
//! # }
//! ```

pub mod daq;
pub mod master;
pub mod packet;
pub mod slave;

pub use daq::{DaqList, DaqPool, Odt, OdtEntry};
pub use master::{ConnectInfo, LinkHealth, RecoveryStats, RetryPolicy, XcpError, XcpMaster};
pub use packet::{Command, DtoPacket, ErrCode, Response};
pub use slave::XcpSlave;
