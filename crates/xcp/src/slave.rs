//! The XCP slave: the protocol engine running on the PSI device.
//!
//! On the TC1796ED the XCP driver runs on the PCP2 service core (Section
//! 6), accessing target memory through the debug bus master — so every
//! UPLOAD/DOWNLOAD and every DAQ sample is a real bus transaction that
//! competes with the application cores, and measurement is unobtrusive in
//! exactly the way the paper claims: no core is ever stopped.
//!
//! Calibration-page commands drive the address-mapping block's control
//! registers, so `SET_CAL_PAGE` is the paper's "swapped atomically by a
//! single control access".

use crate::daq::{DaqPointer, DaqPool, EVENT_CHANNELS};
use crate::packet::{Command, DtoPacket, ErrCode, Response, XcpResult};
use mcds_psi::device::{Device, DeviceError};
use mcds_soc::bus::BusFault;
use mcds_soc::isa::MemWidth;
use mcds_soc::overlay::{CalPage, OVERLAY_RANGE_COUNT};
use mcds_soc::soc::memmap;
use std::collections::VecDeque;

/// Default event-channel periods in cycles (channel 0 = 1 ms raster,
/// channel 1 = 100 µs, channels 2–3 = 10 ms).
pub const DEFAULT_EVENT_PERIODS: [u64; EVENT_CHANNELS] = [150_000, 15_000, 1_500_000, 1_500_000];

fn map_bus_fault(f: BusFault) -> ErrCode {
    match f {
        BusFault::Unmapped { .. } => ErrCode::OutOfRange,
        BusFault::Misaligned { .. } => ErrCode::OutOfRange,
        BusFault::Denied { .. } => ErrCode::AccessDenied,
    }
}

fn map_device_error(e: DeviceError) -> ErrCode {
    match e {
        DeviceError::Bus(f) => map_bus_fault(f),
        _ => ErrCode::CmdBusy,
    }
}

/// The XCP slave protocol engine.
#[derive(Debug)]
pub struct XcpSlave {
    connected: bool,
    mta: u32,
    daq: DaqPool,
    max_cto: u8,
    max_dto: u16,
    event_periods: [u64; EVENT_CHANNELS],
    next_event_at: [u64; EVENT_CHANNELS],
    event_counts: [u64; EVENT_CHANNELS],
    dto_buffer: VecDeque<DtoPacket>,
    dto_capacity: usize,
    dto_overflows: u64,
    samples_taken: u64,
}

impl XcpSlave {
    /// Creates a slave with the given CTO frame limit (8 for CAN, larger
    /// for USB) and a DTO buffer of `dto_capacity` packets.
    pub fn new(max_cto: u8, dto_capacity: usize) -> XcpSlave {
        XcpSlave {
            connected: false,
            mta: 0,
            daq: DaqPool::new(),
            max_cto: max_cto.max(8),
            max_dto: 8,
            event_periods: DEFAULT_EVENT_PERIODS,
            next_event_at: [0; EVENT_CHANNELS],
            event_counts: [0; EVENT_CHANNELS],
            dto_buffer: VecDeque::new(),
            dto_capacity: dto_capacity.max(1),
            dto_overflows: 0,
            samples_taken: 0,
        }
    }

    /// True after a successful `CONNECT`.
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// Current memory transfer address.
    pub fn mta(&self) -> u32 {
        self.mta
    }

    /// DTO packets dropped because the buffer was full.
    pub fn dto_overflows(&self) -> u64 {
        self.dto_overflows
    }

    /// Total DAQ samples taken.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Queued DTO packets.
    pub fn dto_pending(&self) -> usize {
        self.dto_buffer.len()
    }

    /// Overrides an event channel's period in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range or `period` is zero.
    pub fn set_event_period(&mut self, channel: usize, period: u64) {
        assert!(period > 0, "event period must be non-zero");
        self.event_periods[channel] = period;
    }

    /// Drains up to `max` queued DTO packets.
    pub fn drain_dtos(&mut self, max: usize) -> Vec<DtoPacket> {
        let n = max.min(self.dto_buffer.len());
        self.dto_buffer.drain(..n).collect()
    }

    fn read_bytes(&self, dev: &mut Device, addr: u32, count: usize) -> Result<Vec<u8>, ErrCode> {
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let v = dev
                .bus_access(mcds_soc::BusRequest {
                    addr: addr + i as u32,
                    width: MemWidth::Byte,
                    kind: mcds_soc::bus::XferKind::Read,
                    wdata: 0,
                })
                .map_err(map_device_error)?;
            out.push(v as u8);
        }
        Ok(out)
    }

    fn write_bytes(&self, dev: &mut Device, addr: u32, data: &[u8]) -> Result<(), ErrCode> {
        for (i, b) in data.iter().enumerate() {
            dev.bus_access(mcds_soc::BusRequest {
                addr: addr + i as u32,
                width: MemWidth::Byte,
                kind: mcds_soc::bus::XferKind::Write,
                wdata: *b as u32,
            })
            .map_err(map_device_error)?;
        }
        Ok(())
    }

    /// Executes one command against the device. Memory traffic advances
    /// simulated time (the device keeps running underneath).
    pub fn handle(&mut self, dev: &mut Device, cmd: &Command) -> XcpResult {
        if !self.connected && !matches!(cmd, Command::Connect | Command::Synch | Command::GetStatus)
        {
            return Err(ErrCode::Sequence);
        }
        match cmd {
            Command::Connect => {
                self.connected = true;
                Ok(Response::Connected {
                    max_cto: self.max_cto,
                    max_dto: self.max_dto,
                    daq_supported: true,
                    cal_supported: dev.variant().has_emulation_resources(),
                })
            }
            Command::Disconnect => {
                self.connected = false;
                for daq in 0..self.daq.lists().len() {
                    let _ = self.daq.start_stop(daq as u16, false);
                }
                Ok(Response::Ok)
            }
            Command::GetStatus => Ok(Response::Status {
                daq_running: self.daq.any_running(),
                connected: self.connected,
            }),
            Command::Synch => Ok(Response::Ok),
            Command::SetMta { addr } => {
                self.mta = *addr;
                Ok(Response::Ok)
            }
            Command::Upload { count } => {
                if *count as usize > self.max_cto as usize - 1 {
                    return Err(ErrCode::OutOfRange);
                }
                let bytes = self.read_bytes(dev, self.mta, *count as usize)?;
                self.mta += *count as u32;
                Ok(Response::Bytes(bytes))
            }
            Command::ShortUpload { count, addr } => {
                if *count as usize > self.max_cto as usize - 1 {
                    return Err(ErrCode::OutOfRange);
                }
                let bytes = self.read_bytes(dev, *addr, *count as usize)?;
                Ok(Response::Bytes(bytes))
            }
            Command::Download { data } => {
                if data.len() > self.max_cto as usize - 2 {
                    return Err(ErrCode::OutOfRange);
                }
                self.write_bytes(dev, self.mta, data)?;
                self.mta += data.len() as u32;
                Ok(Response::Ok)
            }
            Command::BuildChecksum { len } => {
                let bytes = self.read_bytes(dev, self.mta, *len as usize)?;
                let sum = bytes.iter().fold(0u32, |a, &b| a.wrapping_add(b as u32));
                Ok(Response::Checksum(sum))
            }
            Command::SetCalPage { page } => {
                if *page > 1 {
                    return Err(ErrCode::PageNotValid);
                }
                dev.bus_write_word(memmap::OVERLAY_CTRL_BASE, *page as u32)
                    .map_err(map_device_error)?;
                Ok(Response::Ok)
            }
            Command::GetCalPage => {
                let v = dev
                    .bus_read_word(memmap::OVERLAY_CTRL_BASE)
                    .map_err(map_device_error)?;
                Ok(Response::CalPage(v as u8))
            }
            Command::CopyCalPage { from, to } => {
                if *from > 1 || *to > 1 {
                    return Err(ErrCode::PageNotValid);
                }
                if from == to {
                    return Ok(Response::Ok);
                }
                let (src, dst) = (
                    CalPage::from_bit(*from as u32),
                    CalPage::from_bit(*to as u32),
                );
                // Copy every enabled range's backing block, word by word,
                // through the emulation-RAM window.
                for i in 0..OVERLAY_RANGE_COUNT {
                    let (enabled, range) = {
                        let m = dev.soc().mapper();
                        (m.range_enabled(i), m.range(i))
                    };
                    if !enabled {
                        continue;
                    }
                    let src_off = match src {
                        CalPage::Page0 => range.offset_page0,
                        CalPage::Page1 => range.offset_page1,
                    };
                    let dst_off = match dst {
                        CalPage::Page0 => range.offset_page0,
                        CalPage::Page1 => range.offset_page1,
                    };
                    for w in (0..range.size).step_by(4) {
                        let v = dev
                            .bus_read_word(memmap::EMEM_BASE + src_off + w)
                            .map_err(map_device_error)?;
                        dev.bus_write_word(memmap::EMEM_BASE + dst_off + w, v)
                            .map_err(map_device_error)?;
                    }
                }
                Ok(Response::Ok)
            }
            Command::FreeDaq => {
                self.daq.free();
                Ok(Response::Ok)
            }
            Command::AllocDaq { count } => self.daq.alloc_daq(*count).map(|_| Response::Ok),
            Command::AllocOdt { daq, count } => {
                self.daq.alloc_odt(*daq, *count).map(|_| Response::Ok)
            }
            Command::AllocOdtEntry { daq, odt, count } => self
                .daq
                .alloc_odt_entry(*daq, *odt, *count)
                .map(|_| Response::Ok),
            Command::SetDaqPtr { daq, odt, entry } => self
                .daq
                .set_pointer(DaqPointer {
                    daq: *daq,
                    odt: *odt,
                    entry: *entry,
                })
                .map(|_| Response::Ok),
            Command::WriteDaq { size, addr } => {
                self.daq.write_entry(*size, *addr).map(|_| Response::Ok)
            }
            Command::SetDaqListMode {
                daq,
                event,
                prescaler,
            } => self
                .daq
                .set_mode(*daq, *event, *prescaler)
                .map(|_| Response::Ok),
            Command::StartStopDaqList { daq, start } => {
                let result = self.daq.start_stop(*daq, *start).map(|_| Response::Ok);
                if *start && result.is_ok() {
                    // Arm the event timers from "now".
                    let now = dev.soc().cycle();
                    for ch in 0..EVENT_CHANNELS {
                        self.next_event_at[ch] = now + self.event_periods[ch];
                    }
                }
                result
            }
            Command::GetDaqClock => Ok(Response::DaqClock(dev.soc().cycle() as u32)),
        }
    }

    fn sample_due_lists(&mut self, dev: &mut Device, channel: usize) {
        self.event_counts[channel] += 1;
        let count = self.event_counts[channel];
        for daq in 0..self.daq.lists().len() {
            let (running, event, prescaler, odt_count) = {
                let l = &self.daq.lists()[daq];
                (
                    l.running,
                    l.event as usize,
                    l.prescaler as u64,
                    l.odts.len(),
                )
            };
            if !running || event != channel || !count.is_multiple_of(prescaler) {
                continue;
            }
            for odt in 0..odt_count {
                let entries = self.daq.lists()[daq].odts[odt].entries.clone();
                let timestamp = dev.soc().cycle() as u32;
                let mut data = Vec::new();
                let mut ok = true;
                for e in entries {
                    match self.read_bytes(dev, e.addr, e.size as usize) {
                        Ok(b) => data.extend_from_slice(&b),
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                self.samples_taken += 1;
                if self.dto_buffer.len() >= self.dto_capacity {
                    self.dto_buffer.pop_front();
                    self.dto_overflows += 1;
                }
                self.dto_buffer.push_back(DtoPacket {
                    daq: daq as u16,
                    odt: odt as u8,
                    timestamp,
                    data,
                });
            }
        }
    }

    /// Samples every event channel whose raster is due at the device's
    /// current cycle, without advancing time. External schedulers that own
    /// the stepping loop (the virtual-vehicle lockstep scheduler) call
    /// this once per step; [`XcpSlave::run`] is this plus the stepping.
    pub fn sample_tick(&mut self, dev: &mut Device) {
        if !self.daq.any_running() {
            return;
        }
        let now = dev.soc().cycle();
        for ch in 0..EVENT_CHANNELS {
            if now >= self.next_event_at[ch] {
                self.next_event_at[ch] = now + self.event_periods[ch];
                self.sample_due_lists(dev, ch);
            }
        }
    }

    /// Runs the device for (at least) `cycles` cycles, sampling running DAQ
    /// lists at their event rasters. The application cores are never
    /// stopped; samples are taken through the debug bus master.
    pub fn run(&mut self, dev: &mut Device, cycles: u64) {
        let end = dev.soc().cycle() + cycles;
        while dev.soc().cycle() < end {
            dev.step();
            self.sample_tick(dev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_psi::device::{DeviceBuilder, DeviceVariant};
    use mcds_soc::asm::assemble;

    fn ed_device() -> Device {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        dev.soc_mut().load_program(
            &assemble(
                "
                .org 0x80000000
                start:
                    li r2, 0xD0000000
                loop:
                    addi r1, r1, 1
                    sw r1, 0(r2)
                    j loop
                ",
            )
            .unwrap(),
        );
        dev
    }

    #[test]
    fn connect_before_anything_else() {
        let mut dev = ed_device();
        let mut slave = XcpSlave::new(8, 64);
        assert_eq!(
            slave.handle(&mut dev, &Command::SetMta { addr: 0 }),
            Err(ErrCode::Sequence)
        );
        let r = slave.handle(&mut dev, &Command::Connect).unwrap();
        assert!(matches!(
            r,
            Response::Connected {
                cal_supported: true,
                ..
            }
        ));
        assert!(slave.is_connected());
    }

    #[test]
    fn upload_download_roundtrip_with_mta_increment() {
        let mut dev = ed_device();
        let mut slave = XcpSlave::new(8, 64);
        slave.handle(&mut dev, &Command::Connect).unwrap();
        slave
            .handle(
                &mut dev,
                &Command::SetMta {
                    addr: memmap::SRAM_BASE + 0x100,
                },
            )
            .unwrap();
        slave
            .handle(
                &mut dev,
                &Command::Download {
                    data: vec![1, 2, 3, 4],
                },
            )
            .unwrap();
        slave
            .handle(&mut dev, &Command::Download { data: vec![5, 6] })
            .unwrap();
        assert_eq!(slave.mta(), memmap::SRAM_BASE + 0x106);
        slave
            .handle(
                &mut dev,
                &Command::SetMta {
                    addr: memmap::SRAM_BASE + 0x100,
                },
            )
            .unwrap();
        let r = slave
            .handle(&mut dev, &Command::Upload { count: 6 })
            .unwrap();
        assert_eq!(r, Response::Bytes(vec![1, 2, 3, 4, 5, 6]));
    }

    #[test]
    fn download_to_flash_denied() {
        let mut dev = ed_device();
        let mut slave = XcpSlave::new(8, 64);
        slave.handle(&mut dev, &Command::Connect).unwrap();
        slave
            .handle(
                &mut dev,
                &Command::SetMta {
                    addr: memmap::FLASH_BASE + 0x100000,
                },
            )
            .unwrap();
        assert_eq!(
            slave.handle(&mut dev, &Command::Download { data: vec![1] }),
            Err(ErrCode::AccessDenied)
        );
    }

    #[test]
    fn checksum_over_block() {
        let mut dev = ed_device();
        let mut slave = XcpSlave::new(8, 64);
        slave.handle(&mut dev, &Command::Connect).unwrap();
        dev.soc_mut()
            .backdoor_write(memmap::SRAM_BASE + 0x200, &[10, 20, 30]);
        slave
            .handle(
                &mut dev,
                &Command::SetMta {
                    addr: memmap::SRAM_BASE + 0x200,
                },
            )
            .unwrap();
        let r = slave
            .handle(&mut dev, &Command::BuildChecksum { len: 3 })
            .unwrap();
        assert_eq!(r, Response::Checksum(60));
    }

    #[test]
    fn cal_page_commands_drive_the_mapper() {
        let mut dev = ed_device();
        let mut slave = XcpSlave::new(8, 64);
        slave.handle(&mut dev, &Command::Connect).unwrap();
        assert_eq!(
            slave.handle(&mut dev, &Command::GetCalPage).unwrap(),
            Response::CalPage(0)
        );
        slave
            .handle(&mut dev, &Command::SetCalPage { page: 1 })
            .unwrap();
        assert_eq!(dev.soc().mapper().active_page(), CalPage::Page1);
        assert_eq!(
            slave.handle(&mut dev, &Command::GetCalPage).unwrap(),
            Response::CalPage(1)
        );
        assert_eq!(
            slave.handle(&mut dev, &Command::SetCalPage { page: 2 }),
            Err(ErrCode::PageNotValid)
        );
    }

    #[test]
    fn copy_cal_page_copies_enabled_ranges() {
        let mut dev = ed_device();
        // Configure one overlay range: 1 KB at flash+0x4000, page0 at 0,
        // page1 at 0x400.
        dev.soc_mut()
            .mapper_mut()
            .configure_range(
                0,
                mcds_soc::overlay::OverlayRange {
                    flash_addr: memmap::FLASH_BASE + 0x4000,
                    size: 1024,
                    offset_page0: 0,
                    offset_page1: 0x400,
                },
            )
            .unwrap();
        dev.soc_mut().mapper_mut().set_range_enabled(0, true);
        dev.soc_mut().backdoor_write(memmap::EMEM_BASE, &[0xAA; 16]);
        let mut slave = XcpSlave::new(8, 64);
        slave.handle(&mut dev, &Command::Connect).unwrap();
        slave
            .handle(&mut dev, &Command::CopyCalPage { from: 0, to: 1 })
            .unwrap();
        assert_eq!(
            dev.soc().backdoor_read(memmap::EMEM_BASE + 0x400, 16),
            vec![0xAA; 16]
        );
    }

    #[test]
    fn daq_samples_without_stopping_cores() {
        let mut dev = ed_device();
        let mut slave = XcpSlave::new(8, 64);
        slave.handle(&mut dev, &Command::Connect).unwrap();
        slave.set_event_period(0, 2_000);
        for cmd in [
            Command::FreeDaq,
            Command::AllocDaq { count: 1 },
            Command::AllocOdt { daq: 0, count: 1 },
            Command::AllocOdtEntry {
                daq: 0,
                odt: 0,
                count: 1,
            },
            Command::SetDaqPtr {
                daq: 0,
                odt: 0,
                entry: 0,
            },
            Command::WriteDaq {
                size: 4,
                addr: memmap::SRAM_BASE,
            },
            Command::SetDaqListMode {
                daq: 0,
                event: 0,
                prescaler: 1,
            },
            Command::StartStopDaqList {
                daq: 0,
                start: true,
            },
        ] {
            slave
                .handle(&mut dev, &cmd)
                .unwrap_or_else(|e| panic!("{cmd:?}: {e}"));
        }
        slave.run(&mut dev, 20_000);
        assert!(
            slave.samples_taken() >= 8,
            "{} samples",
            slave.samples_taken()
        );
        let dtos = slave.drain_dtos(usize::MAX);
        assert!(!dtos.is_empty());
        // The counter the program increments is visible and increases
        // monotonically across samples.
        let values: Vec<u32> = dtos
            .iter()
            .map(|d| u32::from_le_bytes(d.data.clone().try_into().unwrap()))
            .collect();
        for pair in values.windows(2) {
            assert!(pair[0] <= pair[1], "monotone counter {values:?}");
        }
        assert!(values.last().unwrap() > &0);
        assert!(
            !dev.soc().core(mcds_soc::CoreId(0)).is_halted(),
            "never stopped"
        );
    }

    #[test]
    fn dto_buffer_overflow_drops_oldest() {
        let mut dev = ed_device();
        let mut slave = XcpSlave::new(8, 4);
        slave.handle(&mut dev, &Command::Connect).unwrap();
        slave.set_event_period(0, 500);
        for cmd in [
            Command::AllocDaq { count: 1 },
            Command::AllocOdt { daq: 0, count: 1 },
            Command::AllocOdtEntry {
                daq: 0,
                odt: 0,
                count: 1,
            },
            Command::SetDaqPtr {
                daq: 0,
                odt: 0,
                entry: 0,
            },
            Command::WriteDaq {
                size: 1,
                addr: memmap::SRAM_BASE,
            },
            Command::SetDaqListMode {
                daq: 0,
                event: 0,
                prescaler: 1,
            },
            Command::StartStopDaqList {
                daq: 0,
                start: true,
            },
        ] {
            slave.handle(&mut dev, &cmd).unwrap();
        }
        slave.run(&mut dev, 30_000);
        assert!(slave.dto_overflows() > 0);
        assert!(slave.dto_pending() <= 4);
    }
}
