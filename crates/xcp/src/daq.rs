//! DAQ (data acquisition) lists: the measurement half of XCP.
//!
//! A DAQ list is a set of ODTs (object descriptor tables), each listing
//! memory elements to sample. Lists are bound to an event channel (a
//! periodic tick in this model — e.g. a 1 ms raster) and sampled without
//! stopping the application: the paper's requirement that mechanical
//! systems get "unobtrusive access to internal memories" (Section 2).

use crate::packet::ErrCode;

/// Maximum DAQ lists a slave allocates.
pub const MAX_DAQ_LISTS: u16 = 8;

/// Maximum ODTs per DAQ list.
pub const MAX_ODTS_PER_LIST: u8 = 8;

/// Maximum entries per ODT.
pub const MAX_ENTRIES_PER_ODT: u8 = 7;

/// Total ODT entries across all lists (the slave's DAQ memory budget).
pub const DAQ_MEMORY_BUDGET: usize = 128;

/// Number of event channels.
pub const EVENT_CHANNELS: usize = 4;

/// One sampled memory element.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OdtEntry {
    /// Element byte address.
    pub addr: u32,
    /// Element size in bytes (1, 2 or 4; 0 = unconfigured).
    pub size: u8,
}

/// One object descriptor table.
#[derive(Debug, Clone, Default)]
pub struct Odt {
    /// The sampled elements.
    pub entries: Vec<OdtEntry>,
}

/// One DAQ list.
#[derive(Debug, Clone, Default)]
pub struct DaqList {
    /// The list's ODTs.
    pub odts: Vec<Odt>,
    /// Bound event channel.
    pub event: u8,
    /// Sample every `prescaler` events (≥ 1).
    pub prescaler: u8,
    /// True while sampling.
    pub running: bool,
}

/// The DAQ write pointer set by `SET_DAQ_PTR`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaqPointer {
    /// DAQ list index.
    pub daq: u16,
    /// ODT index.
    pub odt: u8,
    /// Entry index.
    pub entry: u8,
}

/// The slave's DAQ resource pool.
#[derive(Debug, Clone, Default)]
pub struct DaqPool {
    lists: Vec<DaqList>,
    pointer: Option<DaqPointer>,
}

impl DaqPool {
    /// An empty pool.
    pub fn new() -> DaqPool {
        DaqPool::default()
    }

    /// Releases everything (`FREE_DAQ`).
    pub fn free(&mut self) {
        self.lists.clear();
        self.pointer = None;
    }

    /// Allocates `count` empty DAQ lists (`ALLOC_DAQ`).
    ///
    /// # Errors
    ///
    /// `OutOfRange` above [`MAX_DAQ_LISTS`]; `Sequence` if lists already
    /// exist (must `FREE_DAQ` first).
    pub fn alloc_daq(&mut self, count: u16) -> Result<(), ErrCode> {
        if !self.lists.is_empty() {
            return Err(ErrCode::Sequence);
        }
        if count == 0 || count > MAX_DAQ_LISTS {
            return Err(ErrCode::OutOfRange);
        }
        self.lists = vec![
            DaqList {
                prescaler: 1,
                ..Default::default()
            };
            count as usize
        ];
        Ok(())
    }

    /// Allocates `count` ODTs on list `daq` (`ALLOC_ODT`).
    ///
    /// # Errors
    ///
    /// `OutOfRange` for bad indices/counts, `Sequence` if the list already
    /// has ODTs.
    pub fn alloc_odt(&mut self, daq: u16, count: u8) -> Result<(), ErrCode> {
        let list = self
            .lists
            .get_mut(daq as usize)
            .ok_or(ErrCode::OutOfRange)?;
        if !list.odts.is_empty() {
            return Err(ErrCode::Sequence);
        }
        if count == 0 || count > MAX_ODTS_PER_LIST {
            return Err(ErrCode::OutOfRange);
        }
        list.odts = vec![Odt::default(); count as usize];
        Ok(())
    }

    /// Allocates `count` entries on `daq`/`odt` (`ALLOC_ODT_ENTRY`).
    ///
    /// # Errors
    ///
    /// `OutOfRange` for bad indices/counts, `Sequence` if entries exist,
    /// `MemoryOverflow` past the pool budget.
    pub fn alloc_odt_entry(&mut self, daq: u16, odt: u8, count: u8) -> Result<(), ErrCode> {
        if count == 0 || count > MAX_ENTRIES_PER_ODT {
            return Err(ErrCode::OutOfRange);
        }
        let total: usize = self
            .lists
            .iter()
            .flat_map(|l| l.odts.iter())
            .map(|o| o.entries.len())
            .sum();
        if total + count as usize > DAQ_MEMORY_BUDGET {
            return Err(ErrCode::MemoryOverflow);
        }
        let list = self
            .lists
            .get_mut(daq as usize)
            .ok_or(ErrCode::OutOfRange)?;
        let odt = list.odts.get_mut(odt as usize).ok_or(ErrCode::OutOfRange)?;
        if !odt.entries.is_empty() {
            return Err(ErrCode::Sequence);
        }
        odt.entries = vec![OdtEntry::default(); count as usize];
        Ok(())
    }

    /// Positions the write pointer (`SET_DAQ_PTR`).
    ///
    /// # Errors
    ///
    /// `OutOfRange` if the position does not exist.
    pub fn set_pointer(&mut self, p: DaqPointer) -> Result<(), ErrCode> {
        let list = self.lists.get(p.daq as usize).ok_or(ErrCode::OutOfRange)?;
        let odt = list.odts.get(p.odt as usize).ok_or(ErrCode::OutOfRange)?;
        if (p.entry as usize) >= odt.entries.len() {
            return Err(ErrCode::OutOfRange);
        }
        self.pointer = Some(p);
        Ok(())
    }

    /// Writes the entry at the pointer and auto-increments (`WRITE_DAQ`).
    ///
    /// # Errors
    ///
    /// `Sequence` with no pointer, `OutOfRange` for a bad element size.
    pub fn write_entry(&mut self, size: u8, addr: u32) -> Result<(), ErrCode> {
        if !matches!(size, 1 | 2 | 4) {
            return Err(ErrCode::OutOfRange);
        }
        let p = self.pointer.ok_or(ErrCode::Sequence)?;
        let entry = &mut self.lists[p.daq as usize].odts[p.odt as usize].entries[p.entry as usize];
        *entry = OdtEntry { addr, size };
        // Auto-increment within the ODT; pointer invalidates at the end.
        let next = p.entry + 1;
        self.pointer = if (next as usize)
            < self.lists[p.daq as usize].odts[p.odt as usize]
                .entries
                .len()
        {
            Some(DaqPointer { entry: next, ..p })
        } else {
            None
        };
        Ok(())
    }

    /// Binds list `daq` to an event channel (`SET_DAQ_LIST_MODE`).
    ///
    /// # Errors
    ///
    /// `OutOfRange` for bad indices or a zero prescaler.
    pub fn set_mode(&mut self, daq: u16, event: u8, prescaler: u8) -> Result<(), ErrCode> {
        if (event as usize) >= EVENT_CHANNELS || prescaler == 0 {
            return Err(ErrCode::OutOfRange);
        }
        let list = self
            .lists
            .get_mut(daq as usize)
            .ok_or(ErrCode::OutOfRange)?;
        list.event = event;
        list.prescaler = prescaler;
        Ok(())
    }

    /// Starts or stops list `daq` (`START_STOP_DAQ_LIST`).
    ///
    /// # Errors
    ///
    /// `OutOfRange` for a bad index; `DaqConfig` when starting a list with
    /// unconfigured entries.
    pub fn start_stop(&mut self, daq: u16, start: bool) -> Result<(), ErrCode> {
        let list = self
            .lists
            .get_mut(daq as usize)
            .ok_or(ErrCode::OutOfRange)?;
        if start {
            let configured = !list.odts.is_empty()
                && list
                    .odts
                    .iter()
                    .all(|o| !o.entries.is_empty() && o.entries.iter().all(|e| e.size != 0));
            if !configured {
                return Err(ErrCode::DaqConfig);
            }
        }
        list.running = start;
        Ok(())
    }

    /// The DAQ lists.
    pub fn lists(&self) -> &[DaqList] {
        &self.lists
    }

    /// True if any list is running.
    pub fn any_running(&self) -> bool {
        self.lists.iter().any(|l| l.running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configured_pool() -> DaqPool {
        let mut p = DaqPool::new();
        p.alloc_daq(2).unwrap();
        p.alloc_odt(0, 2).unwrap();
        p.alloc_odt_entry(0, 0, 2).unwrap();
        p.alloc_odt_entry(0, 1, 1).unwrap();
        p.set_pointer(DaqPointer {
            daq: 0,
            odt: 0,
            entry: 0,
        })
        .unwrap();
        p.write_entry(4, 0x1000).unwrap();
        p.write_entry(2, 0x1004).unwrap();
        p.set_pointer(DaqPointer {
            daq: 0,
            odt: 1,
            entry: 0,
        })
        .unwrap();
        p.write_entry(1, 0x1006).unwrap();
        p
    }

    #[test]
    fn allocation_sequence_builds_lists() {
        let p = configured_pool();
        assert_eq!(p.lists().len(), 2);
        assert_eq!(
            p.lists()[0].odts[0].entries[0],
            OdtEntry {
                addr: 0x1000,
                size: 4
            }
        );
        assert_eq!(
            p.lists()[0].odts[1].entries[0],
            OdtEntry {
                addr: 0x1006,
                size: 1
            }
        );
    }

    #[test]
    fn write_pointer_auto_increments_and_expires() {
        let mut p = DaqPool::new();
        p.alloc_daq(1).unwrap();
        p.alloc_odt(0, 1).unwrap();
        p.alloc_odt_entry(0, 0, 2).unwrap();
        p.set_pointer(DaqPointer {
            daq: 0,
            odt: 0,
            entry: 0,
        })
        .unwrap();
        p.write_entry(1, 0xA).unwrap();
        p.write_entry(1, 0xB).unwrap();
        assert_eq!(
            p.write_entry(1, 0xC),
            Err(ErrCode::Sequence),
            "pointer expired"
        );
    }

    #[test]
    fn start_requires_full_configuration() {
        let mut p = DaqPool::new();
        p.alloc_daq(1).unwrap();
        p.alloc_odt(0, 1).unwrap();
        p.alloc_odt_entry(0, 0, 1).unwrap();
        assert_eq!(
            p.start_stop(0, true),
            Err(ErrCode::DaqConfig),
            "entry unconfigured"
        );
        p.set_pointer(DaqPointer {
            daq: 0,
            odt: 0,
            entry: 0,
        })
        .unwrap();
        p.write_entry(4, 0x100).unwrap();
        p.set_mode(0, 0, 1).unwrap();
        p.start_stop(0, true).unwrap();
        assert!(p.any_running());
        p.start_stop(0, false).unwrap();
        assert!(!p.any_running());
    }

    #[test]
    fn realloc_requires_free() {
        let mut p = configured_pool();
        assert_eq!(p.alloc_daq(1), Err(ErrCode::Sequence));
        p.free();
        assert!(p.alloc_daq(1).is_ok());
    }

    #[test]
    fn limits_enforced() {
        let mut p = DaqPool::new();
        assert_eq!(p.alloc_daq(0), Err(ErrCode::OutOfRange));
        assert_eq!(p.alloc_daq(MAX_DAQ_LISTS + 1), Err(ErrCode::OutOfRange));
        p.alloc_daq(MAX_DAQ_LISTS).unwrap();
        assert_eq!(p.alloc_odt(99, 1), Err(ErrCode::OutOfRange));
        assert_eq!(
            p.alloc_odt(0, MAX_ODTS_PER_LIST + 1),
            Err(ErrCode::OutOfRange)
        );
        // Exhaust the memory budget.
        for daq in 0..MAX_DAQ_LISTS {
            p.alloc_odt(daq, MAX_ODTS_PER_LIST).unwrap();
        }
        let mut allocated = 0;
        let mut overflowed = false;
        'outer: for daq in 0..MAX_DAQ_LISTS {
            for odt in 0..MAX_ODTS_PER_LIST {
                match p.alloc_odt_entry(daq, odt, MAX_ENTRIES_PER_ODT) {
                    Ok(()) => allocated += MAX_ENTRIES_PER_ODT as usize,
                    Err(ErrCode::MemoryOverflow) => {
                        overflowed = true;
                        break 'outer;
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            }
        }
        assert!(overflowed);
        assert!(allocated <= DAQ_MEMORY_BUDGET);
    }

    #[test]
    fn bad_element_size_rejected() {
        let mut p = DaqPool::new();
        p.alloc_daq(1).unwrap();
        p.alloc_odt(0, 1).unwrap();
        p.alloc_odt_entry(0, 0, 1).unwrap();
        p.set_pointer(DaqPointer {
            daq: 0,
            odt: 0,
            entry: 0,
        })
        .unwrap();
        assert_eq!(p.write_entry(3, 0x100), Err(ErrCode::OutOfRange));
    }
}
