//! The XCP master: the host-side calibration tool.
//!
//! Wraps an [`XcpSlave`] with a transport binding: each command exchange
//! pays the chosen interface's latency and transfer time in simulated
//! cycles (USB ≈ 3 ms per command, CAN slower still — Section 6), with the
//! PCP2 driver overhead accounted on the service core. Block operations
//! (`read_block`/`write_block`) chunk by the negotiated `MAX_CTO`.

use crate::packet::{Command, DtoPacket, ErrCode, Response};
use crate::slave::XcpSlave;
use mcds_psi::device::Device;
use mcds_psi::interface::InterfaceKind;
use std::fmt;

/// An error from a master-side operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XcpError {
    /// The slave returned an error packet.
    Slave(ErrCode),
    /// The device lacks the chosen interface.
    NoTransport(InterfaceKind),
    /// The response type did not match the command (protocol violation).
    UnexpectedResponse,
    /// The session is not connected.
    NotConnected,
}

impl fmt::Display for XcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XcpError::Slave(e) => write!(f, "slave error: {e}"),
            XcpError::NoTransport(k) => write!(f, "no {k} transport on this device"),
            XcpError::UnexpectedResponse => write!(f, "response does not match command"),
            XcpError::NotConnected => write!(f, "session not connected"),
        }
    }
}

impl std::error::Error for XcpError {}

impl From<ErrCode> for XcpError {
    fn from(e: ErrCode) -> XcpError {
        XcpError::Slave(e)
    }
}

/// Connection parameters negotiated at `CONNECT`.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectInfo {
    /// Largest CTO frame.
    pub max_cto: u8,
    /// Largest DTO frame.
    pub max_dto: u16,
    /// Calibration paging supported (development devices only).
    pub cal_supported: bool,
    /// DAQ measurement supported.
    pub daq_supported: bool,
}

/// The host-side calibration/measurement master.
#[derive(Debug)]
pub struct XcpMaster {
    slave: XcpSlave,
    transport: InterfaceKind,
    info: Option<ConnectInfo>,
    commands_sent: u64,
}

impl XcpMaster {
    /// Creates a master speaking over `transport`. The slave's CTO limit is
    /// derived from the transport (64 bytes on USB, 8 on CAN/JTAG).
    pub fn new(transport: InterfaceKind) -> XcpMaster {
        let max_cto = match transport {
            InterfaceKind::Usb11 => 64,
            InterfaceKind::Jtag | InterfaceKind::Can => 8,
        };
        XcpMaster {
            slave: XcpSlave::new(max_cto, 1024),
            transport,
            info: None,
            commands_sent: 0,
        }
    }

    /// The wrapped slave (event periods, DAQ statistics).
    pub fn slave(&self) -> &XcpSlave {
        &self.slave
    }

    /// Mutable access to the wrapped slave.
    pub fn slave_mut(&mut self) -> &mut XcpSlave {
        &mut self.slave
    }

    /// Commands exchanged so far.
    pub fn commands_sent(&self) -> u64 {
        self.commands_sent
    }

    /// Negotiated parameters, if connected.
    pub fn info(&self) -> Option<ConnectInfo> {
        self.info
    }

    /// Exchanges one command, paying transport timing in simulated cycles.
    ///
    /// # Errors
    ///
    /// Transport absence, slave protocol errors.
    pub fn transact(&mut self, dev: &mut Device, cmd: Command) -> Result<Response, XcpError> {
        let Some(iface) = dev.interface(self.transport) else {
            return Err(XcpError::NoTransport(self.transport));
        };
        let inbound = iface.request_latency_cycles() + iface.transfer_cycles(cmd.wire_bytes());
        let overhead = match dev.service_mut() {
            Some(s) => s.process_command(self.transport),
            None => 0,
        };
        dev.wait_cycles(inbound + overhead);
        self.commands_sent += 1;
        let result = self.slave.handle(dev, &cmd);
        let response = result.map_err(XcpError::Slave)?;
        let iface = dev.interface(self.transport).expect("checked above");
        let outbound =
            iface.transfer_cycles(response.wire_bytes()) + iface.response_latency_cycles();
        dev.wait_cycles(outbound);
        Ok(response)
    }

    /// `CONNECT`.
    ///
    /// # Errors
    ///
    /// Transport or slave errors.
    pub fn connect(&mut self, dev: &mut Device) -> Result<ConnectInfo, XcpError> {
        match self.transact(dev, Command::Connect)? {
            Response::Connected {
                max_cto,
                max_dto,
                daq_supported,
                cal_supported,
            } => {
                let info = ConnectInfo {
                    max_cto,
                    max_dto,
                    cal_supported,
                    daq_supported,
                };
                self.info = Some(info);
                Ok(info)
            }
            _ => Err(XcpError::UnexpectedResponse),
        }
    }

    /// `DISCONNECT`.
    ///
    /// # Errors
    ///
    /// Transport or slave errors.
    pub fn disconnect(&mut self, dev: &mut Device) -> Result<(), XcpError> {
        self.transact(dev, Command::Disconnect)?;
        self.info = None;
        Ok(())
    }

    fn max_payload(&self) -> Result<usize, XcpError> {
        self.info
            .map(|i| i.max_cto as usize - 2)
            .ok_or(XcpError::NotConnected)
    }

    /// Reads `len` bytes at `addr`, chunked by the CTO limit.
    ///
    /// # Errors
    ///
    /// Transport or slave errors; [`XcpError::NotConnected`] before
    /// `CONNECT`.
    pub fn read_block(
        &mut self,
        dev: &mut Device,
        addr: u32,
        len: usize,
    ) -> Result<Vec<u8>, XcpError> {
        let chunk = self.max_payload()?;
        self.transact(dev, Command::SetMta { addr })?;
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let n = chunk.min(len - out.len()) as u8;
            match self.transact(dev, Command::Upload { count: n })? {
                Response::Bytes(b) => out.extend_from_slice(&b),
                _ => return Err(XcpError::UnexpectedResponse),
            }
        }
        Ok(out)
    }

    /// Writes `data` at `addr`, chunked by the CTO limit.
    ///
    /// # Errors
    ///
    /// Transport or slave errors; [`XcpError::NotConnected`] before
    /// `CONNECT`.
    pub fn write_block(
        &mut self,
        dev: &mut Device,
        addr: u32,
        data: &[u8],
    ) -> Result<(), XcpError> {
        let chunk = self.max_payload()?;
        self.transact(dev, Command::SetMta { addr })?;
        for part in data.chunks(chunk) {
            self.transact(
                dev,
                Command::Download {
                    data: part.to_vec(),
                },
            )?;
        }
        Ok(())
    }

    /// Reads up to `count` bytes at `addr` in one exchange (`SHORT_UPLOAD`
    /// — no MTA round trip, the low-latency poll a calibration tool uses
    /// for single scalars).
    ///
    /// # Errors
    ///
    /// Transport or slave errors (count must fit one CTO frame).
    pub fn short_read(
        &mut self,
        dev: &mut Device,
        addr: u32,
        count: u8,
    ) -> Result<Vec<u8>, XcpError> {
        match self.transact(dev, Command::ShortUpload { count, addr })? {
            Response::Bytes(b) => Ok(b),
            _ => Err(XcpError::UnexpectedResponse),
        }
    }

    /// Reads the slave's DAQ clock (its cycle counter).
    ///
    /// # Errors
    ///
    /// Transport or slave errors.
    pub fn daq_clock(&mut self, dev: &mut Device) -> Result<u32, XcpError> {
        match self.transact(dev, Command::GetDaqClock)? {
            Response::DaqClock(c) => Ok(c),
            _ => Err(XcpError::UnexpectedResponse),
        }
    }

    /// Verifies a block with `BUILD_CHECKSUM`.
    ///
    /// # Errors
    ///
    /// Transport or slave errors.
    pub fn checksum(&mut self, dev: &mut Device, addr: u32, len: u32) -> Result<u32, XcpError> {
        self.transact(dev, Command::SetMta { addr })?;
        match self.transact(dev, Command::BuildChecksum { len })? {
            Response::Checksum(c) => Ok(c),
            _ => Err(XcpError::UnexpectedResponse),
        }
    }

    /// Selects the active calibration page (the atomic swap).
    ///
    /// # Errors
    ///
    /// Transport or slave errors.
    pub fn set_cal_page(&mut self, dev: &mut Device, page: u8) -> Result<(), XcpError> {
        self.transact(dev, Command::SetCalPage { page })?;
        Ok(())
    }

    /// Queries the active calibration page.
    ///
    /// # Errors
    ///
    /// Transport or slave errors.
    pub fn cal_page(&mut self, dev: &mut Device) -> Result<u8, XcpError> {
        match self.transact(dev, Command::GetCalPage)? {
            Response::CalPage(p) => Ok(p),
            _ => Err(XcpError::UnexpectedResponse),
        }
    }

    /// Copies calibration page `from` onto `to`.
    ///
    /// # Errors
    ///
    /// Transport or slave errors.
    pub fn copy_cal_page(&mut self, dev: &mut Device, from: u8, to: u8) -> Result<(), XcpError> {
        self.transact(dev, Command::CopyCalPage { from, to })?;
        Ok(())
    }

    /// Configures a single-ODT DAQ list sampling the given `(addr, size)`
    /// elements on `event` every `prescaler` events, and starts it.
    ///
    /// # Errors
    ///
    /// Transport or slave errors (e.g. too many elements).
    pub fn start_measurement(
        &mut self,
        dev: &mut Device,
        elements: &[(u32, u8)],
        event: u8,
        prescaler: u8,
    ) -> Result<(), XcpError> {
        self.transact(dev, Command::FreeDaq)?;
        self.transact(dev, Command::AllocDaq { count: 1 })?;
        self.transact(dev, Command::AllocOdt { daq: 0, count: 1 })?;
        self.transact(
            dev,
            Command::AllocOdtEntry {
                daq: 0,
                odt: 0,
                count: elements.len() as u8,
            },
        )?;
        self.transact(
            dev,
            Command::SetDaqPtr {
                daq: 0,
                odt: 0,
                entry: 0,
            },
        )?;
        for &(addr, size) in elements {
            self.transact(dev, Command::WriteDaq { size, addr })?;
        }
        self.transact(
            dev,
            Command::SetDaqListMode {
                daq: 0,
                event,
                prescaler,
            },
        )?;
        self.transact(
            dev,
            Command::StartStopDaqList {
                daq: 0,
                start: true,
            },
        )?;
        Ok(())
    }

    /// Stops DAQ list 0.
    ///
    /// # Errors
    ///
    /// Transport or slave errors.
    pub fn stop_measurement(&mut self, dev: &mut Device) -> Result<(), XcpError> {
        self.transact(
            dev,
            Command::StartStopDaqList {
                daq: 0,
                start: false,
            },
        )?;
        Ok(())
    }

    /// Lets the device run for `cycles` while the slave samples, then
    /// drains the collected DTO packets, paying their transfer time.
    pub fn measure(&mut self, dev: &mut Device, cycles: u64) -> Vec<DtoPacket> {
        self.slave.run(dev, cycles);
        let dtos = self.slave.drain_dtos(usize::MAX);
        if let Some(iface) = dev.interface(self.transport) {
            let bytes: usize = dtos.iter().map(|d| d.wire_bytes()).sum();
            let cost = iface.transfer_cycles(bytes) + iface.response_latency_cycles();
            dev.wait_cycles(cost);
        }
        dtos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_psi::device::{DeviceBuilder, DeviceVariant};
    use mcds_soc::asm::assemble;
    use mcds_soc::soc::memmap;

    fn running_device() -> Device {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        dev.soc_mut().load_program(
            &assemble(
                "
                .org 0x80000000
                start:
                    li r2, 0xD0000000
                loop:
                    addi r1, r1, 1
                    sw r1, 0(r2)
                    j loop
                ",
            )
            .unwrap(),
        );
        dev
    }

    #[test]
    fn connect_negotiates_by_transport() {
        let mut dev = running_device();
        let mut usb = XcpMaster::new(InterfaceKind::Usb11);
        let info = usb.connect(&mut dev).unwrap();
        assert_eq!(info.max_cto, 64);
        assert!(info.cal_supported);
        let mut can = XcpMaster::new(InterfaceKind::Can);
        let info = can.connect(&mut dev).unwrap();
        assert_eq!(info.max_cto, 8, "CAN frames cap the CTO");
    }

    #[test]
    fn block_transfer_roundtrips_with_chunking() {
        let mut dev = running_device();
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        m.connect(&mut dev).unwrap();
        let data: Vec<u8> = (0..200u16).map(|x| x as u8).collect();
        m.write_block(&mut dev, memmap::SRAM_BASE + 0x400, &data)
            .unwrap();
        let back = m
            .read_block(&mut dev, memmap::SRAM_BASE + 0x400, 200)
            .unwrap();
        assert_eq!(back, data);
        // 200 bytes / 62-byte chunks = 4 download commands (+ MTA + ...).
        assert!(m.commands_sent() > 8);
    }

    #[test]
    fn usb_commands_cost_milliseconds_of_simulated_time() {
        let mut dev = running_device();
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        let t0 = dev.soc().cycle();
        m.connect(&mut dev).unwrap();
        let elapsed_ns = memmap::cycles_to_ns(dev.soc().cycle() - t0);
        assert!(
            elapsed_ns >= 3_000_000,
            "USB connect took {elapsed_ns} ns (≥ 3 ms)"
        );
    }

    #[test]
    fn requires_connect_for_blocks() {
        let mut dev = running_device();
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        assert_eq!(
            m.read_block(&mut dev, memmap::SRAM_BASE, 4),
            Err(XcpError::NotConnected)
        );
    }

    #[test]
    fn measurement_over_usb_samples_live_values() {
        let mut dev = running_device();
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        m.connect(&mut dev).unwrap();
        m.slave_mut().set_event_period(0, 5_000);
        m.start_measurement(&mut dev, &[(memmap::SRAM_BASE, 4)], 0, 1)
            .unwrap();
        let dtos = m.measure(&mut dev, 100_000);
        assert!(dtos.len() >= 10, "{} samples", dtos.len());
        m.stop_measurement(&mut dev).unwrap();
        let values: Vec<u32> = dtos
            .iter()
            .map(|d| u32::from_le_bytes(d.data.clone().try_into().unwrap()))
            .collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1]));
        // Timestamps come from the slave's DAQ clock, strictly increasing.
        assert!(dtos.windows(2).all(|w| w[0].timestamp < w[1].timestamp));
    }

    #[test]
    fn checksum_verifies_downloads() {
        let mut dev = running_device();
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        m.connect(&mut dev).unwrap();
        m.write_block(&mut dev, memmap::SRAM_BASE + 0x800, &[7; 32])
            .unwrap();
        assert_eq!(
            m.checksum(&mut dev, memmap::SRAM_BASE + 0x800, 32).unwrap(),
            224
        );
    }
}

#[cfg(test)]
mod short_tests {
    use super::*;
    use mcds_psi::device::{DeviceBuilder, DeviceVariant};
    use mcds_soc::asm::assemble;
    use mcds_soc::soc::memmap;

    #[test]
    fn short_read_and_daq_clock() {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        dev.soc_mut()
            .load_program(&assemble(".org 0x80000000\nloop: j loop").unwrap());
        dev.soc_mut()
            .backdoor_write(memmap::SRAM_BASE + 0x20, &[9, 8, 7, 6]);
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        m.connect(&mut dev).unwrap();
        assert_eq!(
            m.short_read(&mut dev, memmap::SRAM_BASE + 0x20, 4).unwrap(),
            vec![9, 8, 7, 6]
        );
        let t0 = m.daq_clock(&mut dev).unwrap();
        let t1 = m.daq_clock(&mut dev).unwrap();
        assert!(t1 > t0, "the DAQ clock advances with simulated time");
    }
}
