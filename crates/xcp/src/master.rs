//! The XCP master: the host-side calibration tool.
//!
//! Wraps an [`XcpSlave`] with a transport binding: each command exchange
//! pays the chosen interface's latency and transfer time in simulated
//! cycles (USB ≈ 3 ms per command, CAN slower still — Section 6), with the
//! PCP2 driver overhead accounted on the service core. Block operations
//! (`read_block`/`write_block`) chunk by the negotiated `MAX_CTO`.
//!
//! ## Fault recovery
//!
//! When the device carries a fault plan (see `mcds_psi::faults`), command
//! and response frames can be lost, which the master observes as
//! [`XcpError::Timeout`]. The [`RetryPolicy`] governs recovery: bounded
//! retries with exponential backoff, preceded by the XCP `SYNCH` command
//! that re-synchronizes the slave's command processor. Commands whose
//! effect is *not* idempotent (`UPLOAD`/`DOWNLOAD` auto-increment the
//! slave's MTA, `WRITE_DAQ` advances the DAQ pointer) are never retried
//! blindly: the block helpers re-anchor with `SET_MTA`/`SET_DAQ_PTR` and
//! restart the whole chunk, so a response lost *after* the slave applied
//! the command cannot corrupt data silently.

use crate::packet::{Command, DtoPacket, ErrCode, Response};
use crate::slave::XcpSlave;
use mcds_psi::device::{Device, DeviceError};
use mcds_psi::interface::InterfaceKind;
use std::fmt;

/// An error from a master-side operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XcpError {
    /// The slave returned an error packet.
    Slave(ErrCode),
    /// The device lacks the chosen interface.
    NoTransport(InterfaceKind),
    /// The response type did not match the command (protocol violation).
    UnexpectedResponse,
    /// The session is not connected.
    NotConnected,
    /// No (coherent) response arrived within the command timeout — a
    /// command or response frame was lost on the link. Whether the slave
    /// executed the command is unknown to the master.
    Timeout(InterfaceKind),
}

impl fmt::Display for XcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XcpError::Slave(e) => write!(f, "slave error: {e}"),
            XcpError::NoTransport(k) => write!(f, "no {k} transport on this device"),
            XcpError::UnexpectedResponse => write!(f, "response does not match command"),
            XcpError::NotConnected => write!(f, "session not connected"),
            XcpError::Timeout(k) => write!(f, "command timed out on {k}"),
        }
    }
}

impl std::error::Error for XcpError {}

impl From<ErrCode> for XcpError {
    fn from(e: ErrCode) -> XcpError {
        XcpError::Slave(e)
    }
}

/// Connection parameters negotiated at `CONNECT`.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectInfo {
    /// Largest CTO frame.
    pub max_cto: u8,
    /// Largest DTO frame.
    pub max_dto: u16,
    /// Calibration paging supported (development devices only).
    pub cal_supported: bool,
    /// DAQ measurement supported.
    pub daq_supported: bool,
}

/// How the master recovers from lost command/response frames.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per command or block chunk (1 = no retry).
    pub max_attempts: u32,
    /// Simulated cycles the host waits before declaring a timeout.
    pub timeout_cycles: u64,
    /// Extra wait before the first retry; doubles on each further retry.
    pub backoff_cycles: u64,
    /// Send `SYNCH` before re-issuing a timed-out command, per the XCP
    /// resynchronization procedure.
    pub synch_on_retry: bool,
}

impl RetryPolicy {
    /// Backoff for a given retry round: doubles each round, capped at four
    /// timeouts so deep retry chains don't dilate simulated time absurdly.
    fn backoff_for(&self, round: u32) -> u64 {
        let cap = self.timeout_cycles.saturating_mul(4);
        self.backoff_cycles
            .saturating_mul(1u64 << round.min(16))
            .min(cap)
    }
}

impl RetryPolicy {
    /// No recovery: one attempt, fail on the first timeout. The ablation
    /// baseline for T7.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            timeout_cycles: 450_000, // 3 ms at 150 MHz
            backoff_cycles: 0,
            synch_on_retry: false,
        }
    }

    /// The default recovery: up to 16 attempts, 3 ms timeout, 1 ms initial
    /// backoff (doubling, capped at four timeouts), SYNCH before each
    /// retry. Sized so a 1000-command session at 10% frame loss has a
    /// negligible chance of an unrecovered failure.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 16,
            timeout_cycles: 450_000,
            backoff_cycles: 150_000, // 1 ms at 150 MHz
            synch_on_retry: true,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::standard()
    }
}

/// Cumulative recovery statistics.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Exchanges that timed out (command or response frame lost).
    pub timeouts: u64,
    /// Command re-issues after a timeout.
    pub retries: u64,
    /// `SYNCH` resynchronizations performed.
    pub synchs: u64,
    /// Block chunks restarted from `SET_MTA` / `SET_DAQ_PTR`.
    pub chunk_restarts: u64,
    /// Operations abandoned after exhausting every attempt.
    pub gave_up: u64,
    /// Peak attempts any single operation needed (1 = first try worked;
    /// 0 = no operation completed yet). Against
    /// [`RetryPolicy::max_attempts`] this is the retry-budget high-water.
    pub worst_attempts: u32,
}

/// A one-shot link-health summary derived from the master's own counters
/// — available to *any* session, not just benches keeping private tallies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkHealth {
    /// The transport this master speaks over.
    pub transport: InterfaceKind,
    /// Commands placed on the wire (including retries and `SYNCH`s).
    pub commands_sent: u64,
    /// The cumulative recovery counters.
    pub stats: RecoveryStats,
    /// Timed-out exchanges per command sent (0.0–1.0); the observed link
    /// error rate.
    pub error_rate: f64,
    /// Fraction of the per-operation retry budget the worst operation
    /// consumed (`worst_attempts / max_attempts`, 0.0–1.0).
    pub retry_budget_used: f64,
}

/// The host-side calibration/measurement master.
#[derive(Debug)]
pub struct XcpMaster {
    slave: XcpSlave,
    transport: InterfaceKind,
    info: Option<ConnectInfo>,
    commands_sent: u64,
    retry: RetryPolicy,
    recovery: RecoveryStats,
}

impl XcpMaster {
    /// Creates a master speaking over `transport`. The slave's CTO limit is
    /// derived from the transport (64 bytes on USB, 8 on CAN/JTAG).
    pub fn new(transport: InterfaceKind) -> XcpMaster {
        let max_cto = match transport {
            InterfaceKind::Usb11 => 64,
            InterfaceKind::Jtag | InterfaceKind::Can => 8,
        };
        XcpMaster {
            slave: XcpSlave::new(max_cto, 1024),
            transport,
            info: None,
            commands_sent: 0,
            retry: RetryPolicy::standard(),
            recovery: RecoveryStats::default(),
        }
    }

    /// Replaces the retry policy ([`RetryPolicy::standard`] by default).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Cumulative recovery statistics.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Summarizes link health from the master's own counters.
    pub fn link_health(&self) -> LinkHealth {
        let error_rate = if self.commands_sent == 0 {
            0.0
        } else {
            self.recovery.timeouts as f64 / self.commands_sent as f64
        };
        LinkHealth {
            transport: self.transport,
            commands_sent: self.commands_sent,
            stats: self.recovery,
            error_rate,
            retry_budget_used: f64::from(self.recovery.worst_attempts)
                / f64::from(self.retry.max_attempts.max(1)),
        }
    }

    /// Mirrors the master's command/recovery counters into a telemetry
    /// registry under `xcp_*` metric names, labelled by transport.
    pub fn publish_telemetry(&self, tel: &mcds_telemetry::Telemetry) {
        let reg = tel.registry();
        let link = mcds_psi::link_label(self.transport);
        let labels: [(&str, &str); 1] = [("link", link)];
        reg.counter_with(
            "xcp_commands_total",
            "XCP commands placed on the wire",
            &labels,
        )
        .store(self.commands_sent);
        reg.counter_with(
            "xcp_timeouts_total",
            "XCP exchanges that timed out",
            &labels,
        )
        .store(self.recovery.timeouts);
        reg.counter_with("xcp_retries_total", "XCP command re-issues", &labels)
            .store(self.recovery.retries);
        reg.counter_with("xcp_synchs_total", "XCP SYNCH resynchronizations", &labels)
            .store(self.recovery.synchs);
        reg.counter_with(
            "xcp_chunk_restarts_total",
            "XCP block chunks restarted",
            &labels,
        )
        .store(self.recovery.chunk_restarts);
        reg.counter_with("xcp_gave_up_total", "XCP operations abandoned", &labels)
            .store(self.recovery.gave_up);
        let health = self.link_health();
        reg.gauge_with(
            "xcp_worst_attempts",
            "peak attempts any single XCP operation needed",
            &labels,
        )
        .set(f64::from(self.recovery.worst_attempts));
        reg.gauge_with(
            "xcp_error_rate",
            "timed-out XCP exchanges per command (0-1)",
            &labels,
        )
        .set(health.error_rate);
        reg.gauge_with(
            "xcp_retry_budget_used",
            "fraction of the retry budget the worst operation used (0-1)",
            &labels,
        )
        .set(health.retry_budget_used);
    }

    /// The wrapped slave (event periods, DAQ statistics).
    pub fn slave(&self) -> &XcpSlave {
        &self.slave
    }

    /// Mutable access to the wrapped slave.
    pub fn slave_mut(&mut self) -> &mut XcpSlave {
        &mut self.slave
    }

    /// Commands exchanged so far.
    pub fn commands_sent(&self) -> u64 {
        self.commands_sent
    }

    /// Negotiated parameters, if connected.
    pub fn info(&self) -> Option<ConnectInfo> {
        self.info
    }

    /// One wire exchange: pays transport timing and runs command and
    /// response frames through the device's fault injector. No retry.
    fn transact_once(&mut self, dev: &mut Device, cmd: &Command) -> Result<Response, XcpError> {
        let Some(iface) = dev.interface(self.transport) else {
            return Err(XcpError::NoTransport(self.transport));
        };
        let inbound = iface.request_latency_cycles() + iface.transfer_cycles(cmd.wire_bytes());
        let request_frames = iface.frames_for(cmd.wire_bytes().max(1));
        let overhead = match dev.service_mut() {
            Some(s) => s.process_command(self.transport),
            None => 0,
        };
        dev.wait_cycles(inbound + overhead);
        self.commands_sent += 1;
        // A lost command frame: the slave never sees the command, the host
        // waits out its timeout.
        if self.link_lost(dev, request_frames) {
            return Err(XcpError::Timeout(self.transport));
        }
        let result = self.slave.handle(dev, cmd);
        let response = result.map_err(XcpError::Slave)?;
        let iface = dev.interface(self.transport).expect("checked above");
        let outbound =
            iface.transfer_cycles(response.wire_bytes()) + iface.response_latency_cycles();
        let response_frames = iface.frames_for(response.wire_bytes().max(1));
        dev.wait_cycles(outbound);
        // A lost response frame: the slave DID execute (its MTA may have
        // advanced), but the host still sees only a timeout.
        if self.link_lost(dev, response_frames) {
            return Err(XcpError::Timeout(self.transport));
        }
        Ok(response)
    }

    /// Consults the link's fault injector for `frames` frames. On loss,
    /// charges the host-side timeout wait and records it.
    fn link_lost(&mut self, dev: &mut Device, frames: u64) -> bool {
        match dev.transmit_frames(self.transport, frames) {
            Ok(()) => false,
            Err(DeviceError::LinkTimeout(_)) | Err(_) => {
                self.recovery.timeouts += 1;
                dev.wait_cycles(self.retry.timeout_cycles);
                true
            }
        }
    }

    /// Exchanges one command, paying transport timing in simulated cycles.
    ///
    /// On [`XcpError::Timeout`] the command is re-issued per the
    /// [`RetryPolicy`] (backoff, optional `SYNCH` first). Only idempotent
    /// commands should be routed here — the block helpers implement
    /// chunk-level recovery for the MTA-advancing `UPLOAD`/`DOWNLOAD` and
    /// the pointer-advancing `WRITE_DAQ`.
    ///
    /// # Errors
    ///
    /// Transport absence, slave protocol errors, or a timeout that
    /// survived every retry.
    pub fn transact(&mut self, dev: &mut Device, cmd: Command) -> Result<Response, XcpError> {
        let start_cycle = dev.soc().cycle();
        let span_t0 = dev.telemetry().map(|_| std::time::Instant::now());
        for attempt in 1u32.. {
            match self.transact_once(dev, &cmd) {
                Err(XcpError::Timeout(k)) => {
                    if attempt >= self.retry.max_attempts.max(1) {
                        self.recovery.gave_up += 1;
                        self.note_attempts(attempt);
                        self.record_span(dev, start_cycle, span_t0);
                        return Err(XcpError::Timeout(k));
                    }
                    self.recovery.retries += 1;
                    dev.wait_cycles(self.retry.backoff_for(attempt - 1));
                    if self.retry.synch_on_retry && !matches!(cmd, Command::Synch) {
                        self.resynchronize(dev)?;
                    }
                }
                other => {
                    self.note_attempts(attempt);
                    self.record_span(dev, start_cycle, span_t0);
                    return other;
                }
            }
        }
        unreachable!("bounded retry loop always returns")
    }

    /// Folds one operation's attempt count into the retry-budget
    /// high-water.
    fn note_attempts(&mut self, attempts: u32) {
        self.recovery.worst_attempts = self.recovery.worst_attempts.max(attempts);
    }

    /// Records an `XcpTransaction` span on the device's telemetry (if
    /// attached) covering a whole transact-with-retries episode.
    fn record_span(&self, dev: &Device, start_cycle: u64, t0: Option<std::time::Instant>) {
        if let (Some(t0), Some(tel)) = (t0, dev.telemetry()) {
            tel.spans().record(
                mcds_telemetry::Subsystem::XcpTransaction,
                start_cycle,
                dev.soc().cycle(),
                t0.elapsed().as_nanos() as u64,
            );
        }
    }

    /// Sends `SYNCH` until one exchange completes (bounded by the policy's
    /// attempt budget), re-aligning the slave's command processor after a
    /// timeout — the XCP resynchronization procedure.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`XcpError::Timeout`] if no `SYNCH` got
    /// through.
    pub fn resynchronize(&mut self, dev: &mut Device) -> Result<(), XcpError> {
        for round in 0..self.retry.max_attempts.max(1) {
            self.recovery.synchs += 1;
            match self.transact_once(dev, &Command::Synch) {
                Ok(_) => return Ok(()),
                Err(XcpError::Timeout(_)) => {
                    dev.wait_cycles(self.retry.backoff_for(round));
                }
                Err(e) => return Err(e),
            }
        }
        self.recovery.gave_up += 1;
        Err(XcpError::Timeout(self.transport))
    }

    /// Runs one non-idempotent chunk (anchoring command plus payload
    /// commands) with chunk-level recovery: on timeout the whole closure
    /// re-runs from its anchor, so a response lost *after* the slave
    /// applied a command can never silently skew a transfer.
    fn with_chunk_retry<T>(
        &mut self,
        dev: &mut Device,
        mut chunk: impl FnMut(&mut XcpMaster, &mut Device) -> Result<T, XcpError>,
    ) -> Result<T, XcpError> {
        for attempt in 1u32.. {
            match chunk(self, dev) {
                Err(XcpError::Timeout(k)) => {
                    if attempt >= self.retry.max_attempts.max(1) {
                        self.recovery.gave_up += 1;
                        self.note_attempts(attempt);
                        return Err(XcpError::Timeout(k));
                    }
                    self.recovery.chunk_restarts += 1;
                    dev.wait_cycles(self.retry.backoff_for(attempt - 1));
                    if self.retry.synch_on_retry {
                        self.resynchronize(dev)?;
                    }
                }
                other => {
                    self.note_attempts(attempt);
                    return other;
                }
            }
        }
        unreachable!("bounded retry loop always returns")
    }

    /// `CONNECT`.
    ///
    /// # Errors
    ///
    /// Transport or slave errors.
    pub fn connect(&mut self, dev: &mut Device) -> Result<ConnectInfo, XcpError> {
        match self.transact(dev, Command::Connect)? {
            Response::Connected {
                max_cto,
                max_dto,
                daq_supported,
                cal_supported,
            } => {
                let info = ConnectInfo {
                    max_cto,
                    max_dto,
                    cal_supported,
                    daq_supported,
                };
                self.info = Some(info);
                Ok(info)
            }
            _ => Err(XcpError::UnexpectedResponse),
        }
    }

    /// `DISCONNECT`.
    ///
    /// # Errors
    ///
    /// Transport or slave errors.
    pub fn disconnect(&mut self, dev: &mut Device) -> Result<(), XcpError> {
        self.transact(dev, Command::Disconnect)?;
        self.info = None;
        Ok(())
    }

    fn max_payload(&self) -> Result<usize, XcpError> {
        self.info
            .map(|i| i.max_cto as usize - 2)
            .ok_or(XcpError::NotConnected)
    }

    /// Reads `len` bytes at `addr`, chunked by the CTO limit.
    ///
    /// Every chunk is anchored by its own `SET_MTA`, so a timed-out
    /// `UPLOAD` (which auto-increments the slave's MTA whether or not the
    /// response survived) restarts from a known address instead of
    /// silently reading skewed data.
    ///
    /// # Errors
    ///
    /// Transport or slave errors; [`XcpError::NotConnected`] before
    /// `CONNECT`.
    pub fn read_block(
        &mut self,
        dev: &mut Device,
        addr: u32,
        len: usize,
    ) -> Result<Vec<u8>, XcpError> {
        let chunk = self.max_payload()?;
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let n = chunk.min(len - out.len()) as u8;
            let chunk_addr = addr.wrapping_add(out.len() as u32);
            let bytes = self.with_chunk_retry(dev, |m, dev| {
                m.transact_once(dev, &Command::SetMta { addr: chunk_addr })?;
                match m.transact_once(dev, &Command::Upload { count: n })? {
                    Response::Bytes(b) => Ok(b),
                    _ => Err(XcpError::UnexpectedResponse),
                }
            })?;
            out.extend_from_slice(&bytes);
        }
        Ok(out)
    }

    /// Writes `data` at `addr`, chunked by the CTO limit.
    ///
    /// Like [`read_block`](XcpMaster::read_block), each chunk re-anchors
    /// with `SET_MTA` so retried `DOWNLOAD`s are idempotent.
    ///
    /// # Errors
    ///
    /// Transport or slave errors; [`XcpError::NotConnected`] before
    /// `CONNECT`.
    pub fn write_block(
        &mut self,
        dev: &mut Device,
        addr: u32,
        data: &[u8],
    ) -> Result<(), XcpError> {
        let chunk = self.max_payload()?;
        let mut offset = 0usize;
        for part in data.chunks(chunk) {
            let chunk_addr = addr.wrapping_add(offset as u32);
            self.with_chunk_retry(dev, |m, dev| {
                m.transact_once(dev, &Command::SetMta { addr: chunk_addr })?;
                m.transact_once(
                    dev,
                    &Command::Download {
                        data: part.to_vec(),
                    },
                )?;
                Ok(())
            })?;
            offset += part.len();
        }
        Ok(())
    }

    /// Reads up to `count` bytes at `addr` in one exchange (`SHORT_UPLOAD`
    /// — no MTA round trip, the low-latency poll a calibration tool uses
    /// for single scalars).
    ///
    /// # Errors
    ///
    /// Transport or slave errors (count must fit one CTO frame).
    pub fn short_read(
        &mut self,
        dev: &mut Device,
        addr: u32,
        count: u8,
    ) -> Result<Vec<u8>, XcpError> {
        match self.transact(dev, Command::ShortUpload { count, addr })? {
            Response::Bytes(b) => Ok(b),
            _ => Err(XcpError::UnexpectedResponse),
        }
    }

    /// Reads the slave's DAQ clock (its cycle counter).
    ///
    /// # Errors
    ///
    /// Transport or slave errors.
    pub fn daq_clock(&mut self, dev: &mut Device) -> Result<u32, XcpError> {
        match self.transact(dev, Command::GetDaqClock)? {
            Response::DaqClock(c) => Ok(c),
            _ => Err(XcpError::UnexpectedResponse),
        }
    }

    /// Verifies a block with `BUILD_CHECKSUM`.
    ///
    /// # Errors
    ///
    /// Transport or slave errors.
    pub fn checksum(&mut self, dev: &mut Device, addr: u32, len: u32) -> Result<u32, XcpError> {
        self.transact(dev, Command::SetMta { addr })?;
        match self.transact(dev, Command::BuildChecksum { len })? {
            Response::Checksum(c) => Ok(c),
            _ => Err(XcpError::UnexpectedResponse),
        }
    }

    /// Selects the active calibration page (the atomic swap).
    ///
    /// # Errors
    ///
    /// Transport or slave errors.
    pub fn set_cal_page(&mut self, dev: &mut Device, page: u8) -> Result<(), XcpError> {
        self.transact(dev, Command::SetCalPage { page })?;
        Ok(())
    }

    /// Queries the active calibration page.
    ///
    /// # Errors
    ///
    /// Transport or slave errors.
    pub fn cal_page(&mut self, dev: &mut Device) -> Result<u8, XcpError> {
        match self.transact(dev, Command::GetCalPage)? {
            Response::CalPage(p) => Ok(p),
            _ => Err(XcpError::UnexpectedResponse),
        }
    }

    /// Copies calibration page `from` onto `to`.
    ///
    /// # Errors
    ///
    /// Transport or slave errors.
    pub fn copy_cal_page(&mut self, dev: &mut Device, from: u8, to: u8) -> Result<(), XcpError> {
        self.transact(dev, Command::CopyCalPage { from, to })?;
        Ok(())
    }

    /// Configures a single-ODT DAQ list sampling the given `(addr, size)`
    /// elements on `event` every `prescaler` events, and starts it.
    ///
    /// # Errors
    ///
    /// Transport or slave errors (e.g. too many elements).
    pub fn start_measurement(
        &mut self,
        dev: &mut Device,
        elements: &[(u32, u8)],
        event: u8,
        prescaler: u8,
    ) -> Result<(), XcpError> {
        // The whole setup sequence is one recovery unit anchored by
        // FREE_DAQ: `WRITE_DAQ` advances the slave's DAQ pointer, so a
        // timeout mid-sequence restarts from a clean allocation instead of
        // leaving a half-written ODT.
        self.with_chunk_retry(dev, |m, dev| {
            m.transact_once(dev, &Command::FreeDaq)?;
            m.transact_once(dev, &Command::AllocDaq { count: 1 })?;
            m.transact_once(dev, &Command::AllocOdt { daq: 0, count: 1 })?;
            m.transact_once(
                dev,
                &Command::AllocOdtEntry {
                    daq: 0,
                    odt: 0,
                    count: elements.len() as u8,
                },
            )?;
            m.transact_once(
                dev,
                &Command::SetDaqPtr {
                    daq: 0,
                    odt: 0,
                    entry: 0,
                },
            )?;
            for &(addr, size) in elements {
                m.transact_once(dev, &Command::WriteDaq { size, addr })?;
            }
            m.transact_once(
                dev,
                &Command::SetDaqListMode {
                    daq: 0,
                    event,
                    prescaler,
                },
            )?;
            m.transact_once(
                dev,
                &Command::StartStopDaqList {
                    daq: 0,
                    start: true,
                },
            )?;
            Ok(())
        })
    }

    /// Stops DAQ list 0.
    ///
    /// # Errors
    ///
    /// Transport or slave errors.
    pub fn stop_measurement(&mut self, dev: &mut Device) -> Result<(), XcpError> {
        self.transact(
            dev,
            Command::StartStopDaqList {
                daq: 0,
                start: false,
            },
        )?;
        Ok(())
    }

    /// Lets the device run for `cycles` while the slave samples, then
    /// drains the collected DTO packets, paying their transfer time.
    pub fn measure(&mut self, dev: &mut Device, cycles: u64) -> Vec<DtoPacket> {
        self.slave.run(dev, cycles);
        let dtos = self.slave.drain_dtos(usize::MAX);
        if let Some(iface) = dev.interface(self.transport) {
            let bytes: usize = dtos.iter().map(|d| d.wire_bytes()).sum();
            let cost = iface.transfer_cycles(bytes) + iface.response_latency_cycles();
            dev.wait_cycles(cost);
        }
        dtos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcds_psi::device::{DeviceBuilder, DeviceVariant};
    use mcds_soc::asm::assemble;
    use mcds_soc::soc::memmap;

    fn running_device() -> Device {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        dev.soc_mut().load_program(
            &assemble(
                "
                .org 0x80000000
                start:
                    li r2, 0xD0000000
                loop:
                    addi r1, r1, 1
                    sw r1, 0(r2)
                    j loop
                ",
            )
            .unwrap(),
        );
        dev
    }

    #[test]
    fn connect_negotiates_by_transport() {
        let mut dev = running_device();
        let mut usb = XcpMaster::new(InterfaceKind::Usb11);
        let info = usb.connect(&mut dev).unwrap();
        assert_eq!(info.max_cto, 64);
        assert!(info.cal_supported);
        let mut can = XcpMaster::new(InterfaceKind::Can);
        let info = can.connect(&mut dev).unwrap();
        assert_eq!(info.max_cto, 8, "CAN frames cap the CTO");
    }

    #[test]
    fn block_transfer_roundtrips_with_chunking() {
        let mut dev = running_device();
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        m.connect(&mut dev).unwrap();
        let data: Vec<u8> = (0..200u16).map(|x| x as u8).collect();
        m.write_block(&mut dev, memmap::SRAM_BASE + 0x400, &data)
            .unwrap();
        let back = m
            .read_block(&mut dev, memmap::SRAM_BASE + 0x400, 200)
            .unwrap();
        assert_eq!(back, data);
        // 200 bytes / 62-byte chunks = 4 download commands (+ MTA + ...).
        assert!(m.commands_sent() > 8);
    }

    #[test]
    fn usb_commands_cost_milliseconds_of_simulated_time() {
        let mut dev = running_device();
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        let t0 = dev.soc().cycle();
        m.connect(&mut dev).unwrap();
        let elapsed_ns = memmap::cycles_to_ns(dev.soc().cycle() - t0);
        assert!(
            elapsed_ns >= 3_000_000,
            "USB connect took {elapsed_ns} ns (≥ 3 ms)"
        );
    }

    #[test]
    fn requires_connect_for_blocks() {
        let mut dev = running_device();
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        assert_eq!(
            m.read_block(&mut dev, memmap::SRAM_BASE, 4),
            Err(XcpError::NotConnected)
        );
    }

    #[test]
    fn measurement_over_usb_samples_live_values() {
        let mut dev = running_device();
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        m.connect(&mut dev).unwrap();
        m.slave_mut().set_event_period(0, 5_000);
        m.start_measurement(&mut dev, &[(memmap::SRAM_BASE, 4)], 0, 1)
            .unwrap();
        let dtos = m.measure(&mut dev, 100_000);
        assert!(dtos.len() >= 10, "{} samples", dtos.len());
        m.stop_measurement(&mut dev).unwrap();
        let values: Vec<u32> = dtos
            .iter()
            .map(|d| u32::from_le_bytes(d.data.clone().try_into().unwrap()))
            .collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1]));
        // Timestamps come from the slave's DAQ clock, strictly increasing.
        assert!(dtos.windows(2).all(|w| w[0].timestamp < w[1].timestamp));
    }

    #[test]
    fn checksum_verifies_downloads() {
        let mut dev = running_device();
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        m.connect(&mut dev).unwrap();
        m.write_block(&mut dev, memmap::SRAM_BASE + 0x800, &[7; 32])
            .unwrap();
        assert_eq!(
            m.checksum(&mut dev, memmap::SRAM_BASE + 0x800, 32).unwrap(),
            224
        );
    }
}

#[cfg(test)]
mod short_tests {
    use super::*;
    use mcds_psi::device::{DeviceBuilder, DeviceVariant};
    use mcds_soc::asm::assemble;
    use mcds_soc::soc::memmap;

    #[test]
    fn short_read_and_daq_clock() {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        dev.soc_mut()
            .load_program(&assemble(".org 0x80000000\nloop: j loop").unwrap());
        dev.soc_mut()
            .backdoor_write(memmap::SRAM_BASE + 0x20, &[9, 8, 7, 6]);
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        m.connect(&mut dev).unwrap();
        assert_eq!(
            m.short_read(&mut dev, memmap::SRAM_BASE + 0x20, 4).unwrap(),
            vec![9, 8, 7, 6]
        );
        let t0 = m.daq_clock(&mut dev).unwrap();
        let t1 = m.daq_clock(&mut dev).unwrap();
        assert!(t1 > t0, "the DAQ clock advances with simulated time");
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;
    use mcds_psi::device::{DeviceBuilder, DeviceVariant};
    use mcds_psi::faults::FaultPlan;
    use mcds_soc::asm::assemble;
    use mcds_soc::soc::memmap;

    /// A halted device: `wait_cycles` jumps the clock instead of stepping,
    /// so the multi-millisecond timeout/backoff waits cost nothing in host
    /// time. The XCP slave serves memory commands regardless of core state.
    fn quiescent_device() -> Device {
        let mut dev = DeviceBuilder::new(DeviceVariant::EdSideBooster)
            .cores(1)
            .build();
        dev.soc_mut()
            .load_program(&assemble(".org 0x80000000\nhalt").unwrap());
        dev.run_until_halt(100);
        dev
    }

    #[test]
    fn lossy_link_times_out_without_recovery() {
        let mut dev = quiescent_device();
        dev.set_fault_plan(InterfaceKind::Usb11, FaultPlan::lossy(13, 400));
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        m.set_retry_policy(RetryPolicy::none());
        // 40% loss per frame: some command in a long session dies.
        let mut failed = false;
        for _ in 0..30 {
            match m.transact(&mut dev, Command::GetStatus) {
                Ok(_) => {}
                Err(XcpError::Timeout(_)) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(
            failed,
            "recovery-off master must hit an unrecovered timeout"
        );
        assert!(m.recovery_stats().gave_up > 0);
    }

    #[test]
    fn retry_policy_rides_through_frame_loss() {
        let mut dev = quiescent_device();
        dev.set_fault_plan(InterfaceKind::Usb11, FaultPlan::lossy(13, 100));
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        m.connect(&mut dev).unwrap();
        for _ in 0..100 {
            m.transact(&mut dev, Command::GetStatus).unwrap();
        }
        let stats = m.recovery_stats();
        assert!(stats.timeouts > 0, "10% loss must cause timeouts");
        assert!(stats.retries > 0, "and retries must absorb them");
        assert_eq!(stats.gave_up, 0);
    }

    #[test]
    fn block_transfer_survives_frame_loss_intact() {
        let mut dev = quiescent_device();
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        m.connect(&mut dev).unwrap();
        let data: Vec<u8> = (0..600u16).map(|x| (x % 251) as u8).collect();
        // Hostile link only after connect, so the negotiation stays simple.
        dev.set_fault_plan(InterfaceKind::Usb11, FaultPlan::lossy(29, 100));
        m.write_block(&mut dev, memmap::SRAM_BASE + 0x400, &data)
            .unwrap();
        let back = m
            .read_block(&mut dev, memmap::SRAM_BASE + 0x400, data.len())
            .unwrap();
        assert_eq!(back, data, "MTA re-anchoring keeps retried blocks exact");
        let stats = m.recovery_stats();
        assert!(
            stats.chunk_restarts > 0,
            "10% loss over ~20 chunks must restart at least one (restarts={})",
            stats.chunk_restarts
        );
        assert_eq!(stats.gave_up, 0);
    }

    #[test]
    fn synch_is_sent_during_recovery() {
        let mut dev = quiescent_device();
        dev.set_fault_plan(InterfaceKind::Usb11, FaultPlan::lossy(13, 150));
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        m.connect(&mut dev).unwrap();
        for _ in 0..60 {
            m.transact(&mut dev, Command::GetStatus).unwrap();
        }
        let stats = m.recovery_stats();
        assert!(stats.synchs > 0, "SYNCH precedes re-issues");
    }

    #[test]
    fn recovery_is_deterministic() {
        let run = || {
            let mut dev = quiescent_device();
            dev.set_fault_plan(InterfaceKind::Usb11, FaultPlan::lossy(7, 100));
            let mut m = XcpMaster::new(InterfaceKind::Usb11);
            m.connect(&mut dev).unwrap();
            for _ in 0..50 {
                m.transact(&mut dev, Command::GetStatus).unwrap();
            }
            (m.recovery_stats(), dev.soc().cycle(), m.commands_sent())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lossless_link_never_touches_recovery() {
        let mut dev = quiescent_device();
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        m.connect(&mut dev).unwrap();
        m.write_block(&mut dev, memmap::SRAM_BASE, &[1, 2, 3, 4])
            .unwrap();
        // Every error-path counter stays zero; worst_attempts records that
        // each operation completed on its first try.
        assert_eq!(
            m.recovery_stats(),
            RecoveryStats {
                worst_attempts: 1,
                ..RecoveryStats::default()
            }
        );
        let health = m.link_health();
        assert_eq!(health.error_rate, 0.0);
        assert!(health.retry_budget_used <= 1.0 / 16.0 + f64::EPSILON);
    }

    #[test]
    fn link_health_reports_lossy_link_error_rate() {
        let mut dev = quiescent_device();
        dev.set_fault_plan(InterfaceKind::Usb11, FaultPlan::lossy(13, 100));
        let mut m = XcpMaster::new(InterfaceKind::Usb11);
        m.connect(&mut dev).unwrap();
        for _ in 0..100 {
            m.transact(&mut dev, Command::GetStatus).unwrap();
        }
        let health = m.link_health();
        assert_eq!(health.transport, InterfaceKind::Usb11);
        assert!(health.error_rate > 0.0, "10% loss shows up as errors");
        assert!(health.error_rate < 0.5);
        assert!(
            health.stats.worst_attempts > 1,
            "some operation needed a retry"
        );
        assert!(health.retry_budget_used > 0.0 && health.retry_budget_used <= 1.0);
    }
}
