//! XCP packet model: command (CTO) and data (DTO) objects.
//!
//! The paper (Section 6) implements calibration with "the universal
//! measurement and calibration protocol XCP over USB, or for extreme form
//! factors an existing CAN interface". This module models the protocol
//! surface the reproduction needs: the standard command set for memory
//! access, calibration-page management and DAQ-list measurement, with the
//! classic response/error framing.
//!
//! Frames are kept as typed enums rather than raw bytes; the wire cost
//! (bytes per frame, bounded by the transport's `MAX_CTO`/`MAX_DTO`) is
//! modelled for interface timing.

use std::fmt;

/// XCP command codes (ASAM XCP part 2 subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CmdCode {
    /// Establish a session.
    Connect = 0xFF,
    /// End the session.
    Disconnect = 0xFE,
    /// Session/resource status.
    GetStatus = 0xFD,
    /// Resynchronise after errors.
    Synch = 0xFC,
    /// Set the memory transfer address.
    SetMta = 0xF6,
    /// Read bytes at the MTA (auto-increment).
    Upload = 0xF5,
    /// Read bytes at an explicit address.
    ShortUpload = 0xF4,
    /// Write bytes at the MTA (auto-increment).
    Download = 0xF0,
    /// Checksum over a block at the MTA.
    BuildChecksum = 0xF3,
    /// Select the active calibration page.
    SetCalPage = 0xEB,
    /// Query the active calibration page.
    GetCalPage = 0xEA,
    /// Copy one calibration page onto another.
    CopyCalPage = 0xE4,
    /// Release all DAQ resources.
    FreeDaq = 0xD6,
    /// Allocate DAQ lists.
    AllocDaq = 0xD5,
    /// Allocate ODTs for a DAQ list.
    AllocOdt = 0xD4,
    /// Allocate entries for an ODT.
    AllocOdtEntry = 0xD3,
    /// Position the DAQ write pointer.
    SetDaqPtr = 0xE2,
    /// Write one ODT entry at the pointer.
    WriteDaq = 0xE1,
    /// Bind a DAQ list to an event channel.
    SetDaqListMode = 0xE0,
    /// Start or stop a DAQ list.
    StartStopDaqList = 0xDE,
    /// Read the slave's DAQ clock.
    GetDaqClock = 0xDC,
}

/// XCP error codes (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ErrCode {
    /// Command busy.
    CmdBusy = 0x10,
    /// Unknown command.
    CmdUnknown = 0x20,
    /// Command syntax error.
    CmdSyntax = 0x21,
    /// Parameter out of range.
    OutOfRange = 0x22,
    /// Access denied (e.g. write to flash).
    AccessDenied = 0x24,
    /// Calibration page not valid.
    PageNotValid = 0x26,
    /// Sequence error (e.g. command before CONNECT).
    Sequence = 0x29,
    /// DAQ configuration invalid.
    DaqConfig = 0x28,
    /// Memory overflow (DAQ allocation).
    MemoryOverflow = 0x30,
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrCode::CmdBusy => "command busy",
            ErrCode::CmdUnknown => "unknown command",
            ErrCode::CmdSyntax => "command syntax error",
            ErrCode::OutOfRange => "parameter out of range",
            ErrCode::AccessDenied => "access denied",
            ErrCode::PageNotValid => "calibration page not valid",
            ErrCode::Sequence => "sequence error",
            ErrCode::DaqConfig => "DAQ configuration invalid",
            ErrCode::MemoryOverflow => "memory overflow",
        };
        write!(f, "{name} ({:#04x})", *self as u8)
    }
}

/// A command object (master → slave).
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `CONNECT`.
    Connect,
    /// `DISCONNECT`.
    Disconnect,
    /// `GET_STATUS`.
    GetStatus,
    /// `SYNCH`.
    Synch,
    /// `SET_MTA addr`.
    SetMta {
        /// New memory transfer address.
        addr: u32,
    },
    /// `UPLOAD n` — read `n` bytes at the MTA.
    Upload {
        /// Bytes to read (≤ MAX_CTO − 1).
        count: u8,
    },
    /// `SHORT_UPLOAD n, addr`.
    ShortUpload {
        /// Bytes to read.
        count: u8,
        /// Address to read from.
        addr: u32,
    },
    /// `DOWNLOAD data` — write at the MTA.
    Download {
        /// Bytes to write (≤ MAX_CTO − 2).
        data: Vec<u8>,
    },
    /// `BUILD_CHECKSUM len` over `[MTA, MTA+len)`.
    BuildChecksum {
        /// Block length in bytes.
        len: u32,
    },
    /// `SET_CAL_PAGE page`.
    SetCalPage {
        /// Page number (0 or 1).
        page: u8,
    },
    /// `GET_CAL_PAGE`.
    GetCalPage,
    /// `COPY_CAL_PAGE from → to`.
    CopyCalPage {
        /// Source page.
        from: u8,
        /// Destination page.
        to: u8,
    },
    /// `FREE_DAQ`.
    FreeDaq,
    /// `ALLOC_DAQ n`.
    AllocDaq {
        /// Number of DAQ lists.
        count: u16,
    },
    /// `ALLOC_ODT daq, n`.
    AllocOdt {
        /// DAQ list index.
        daq: u16,
        /// ODTs to allocate.
        count: u8,
    },
    /// `ALLOC_ODT_ENTRY daq, odt, n`.
    AllocOdtEntry {
        /// DAQ list index.
        daq: u16,
        /// ODT index.
        odt: u8,
        /// Entries to allocate.
        count: u8,
    },
    /// `SET_DAQ_PTR daq, odt, entry`.
    SetDaqPtr {
        /// DAQ list index.
        daq: u16,
        /// ODT index.
        odt: u8,
        /// Entry index.
        entry: u8,
    },
    /// `WRITE_DAQ size, addr` at the DAQ pointer (auto-increment).
    WriteDaq {
        /// Element size in bytes (1, 2 or 4).
        size: u8,
        /// Element address.
        addr: u32,
    },
    /// `SET_DAQ_LIST_MODE daq, event, prescaler`.
    SetDaqListMode {
        /// DAQ list index.
        daq: u16,
        /// Event channel.
        event: u8,
        /// Sample every `prescaler` events (≥ 1).
        prescaler: u8,
    },
    /// `START_STOP_DAQ_LIST daq, start`.
    StartStopDaqList {
        /// DAQ list index.
        daq: u16,
        /// True to start, false to stop.
        start: bool,
    },
    /// `GET_DAQ_CLOCK`.
    GetDaqClock,
}

impl Command {
    /// The command code.
    pub fn code(&self) -> CmdCode {
        match self {
            Command::Connect => CmdCode::Connect,
            Command::Disconnect => CmdCode::Disconnect,
            Command::GetStatus => CmdCode::GetStatus,
            Command::Synch => CmdCode::Synch,
            Command::SetMta { .. } => CmdCode::SetMta,
            Command::Upload { .. } => CmdCode::Upload,
            Command::ShortUpload { .. } => CmdCode::ShortUpload,
            Command::Download { .. } => CmdCode::Download,
            Command::BuildChecksum { .. } => CmdCode::BuildChecksum,
            Command::SetCalPage { .. } => CmdCode::SetCalPage,
            Command::GetCalPage => CmdCode::GetCalPage,
            Command::CopyCalPage { .. } => CmdCode::CopyCalPage,
            Command::FreeDaq => CmdCode::FreeDaq,
            Command::AllocDaq { .. } => CmdCode::AllocDaq,
            Command::AllocOdt { .. } => CmdCode::AllocOdt,
            Command::AllocOdtEntry { .. } => CmdCode::AllocOdtEntry,
            Command::SetDaqPtr { .. } => CmdCode::SetDaqPtr,
            Command::WriteDaq { .. } => CmdCode::WriteDaq,
            Command::SetDaqListMode { .. } => CmdCode::SetDaqListMode,
            Command::StartStopDaqList { .. } => CmdCode::StartStopDaqList,
            Command::GetDaqClock => CmdCode::GetDaqClock,
        }
    }

    /// Bytes this command occupies on the wire.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Command::Connect
            | Command::Disconnect
            | Command::GetStatus
            | Command::Synch
            | Command::GetCalPage
            | Command::FreeDaq
            | Command::GetDaqClock => 1,
            Command::SetMta { .. } => 5,
            Command::Upload { .. } => 2,
            Command::ShortUpload { .. } => 6,
            Command::Download { data } => 2 + data.len(),
            Command::BuildChecksum { .. } => 5,
            Command::SetCalPage { .. } => 2,
            Command::CopyCalPage { .. } => 3,
            Command::AllocDaq { .. } => 3,
            Command::AllocOdt { .. } => 4,
            Command::AllocOdtEntry { .. } => 5,
            Command::SetDaqPtr { .. } => 5,
            Command::WriteDaq { .. } => 6,
            Command::SetDaqListMode { .. } => 5,
            Command::StartStopDaqList { .. } => 4,
        }
    }
}

/// A positive response payload (slave → master, `0xFF` framing).
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Plain acknowledge.
    Ok,
    /// `CONNECT` response.
    Connected {
        /// Largest CTO frame in bytes.
        max_cto: u8,
        /// Largest DTO frame in bytes.
        max_dto: u16,
        /// DAQ supported.
        daq_supported: bool,
        /// Calibration/paging supported.
        cal_supported: bool,
    },
    /// `GET_STATUS` response.
    Status {
        /// A DAQ list is running.
        daq_running: bool,
        /// Session is connected.
        connected: bool,
    },
    /// Uploaded bytes.
    Bytes(Vec<u8>),
    /// Checksum result.
    Checksum(u32),
    /// Active calibration page.
    CalPage(u8),
    /// DAQ clock (slave cycle counter).
    DaqClock(u32),
}

impl Response {
    /// Bytes this response occupies on the wire (including the `0xFF` pid).
    pub fn wire_bytes(&self) -> usize {
        1 + match self {
            Response::Ok => 0,
            Response::Connected { .. } => 7,
            Response::Status { .. } => 5,
            Response::Bytes(b) => b.len(),
            Response::Checksum(_) => 7,
            Response::CalPage(_) => 3,
            Response::DaqClock(_) => 7,
        }
    }
}

/// A measurement data object (slave → master), one per sampled ODT.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct DtoPacket {
    /// DAQ list index.
    pub daq: u16,
    /// ODT index within the list.
    pub odt: u8,
    /// Slave timestamp (SoC cycle truncated to 32 bits).
    pub timestamp: u32,
    /// Sampled element bytes, concatenated in entry order.
    pub data: Vec<u8>,
}

impl DtoPacket {
    /// Bytes on the wire: pid + timestamp + payload.
    pub fn wire_bytes(&self) -> usize {
        1 + 4 + self.data.len()
    }
}

/// Outcome of one command exchange.
pub type XcpResult = Result<Response, ErrCode>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_codes_match_asam_values() {
        assert_eq!(Command::Connect.code() as u8, 0xFF);
        assert_eq!(Command::SetMta { addr: 0 }.code() as u8, 0xF6);
        assert_eq!(Command::Download { data: vec![] }.code() as u8, 0xF0);
        assert_eq!(Command::SetCalPage { page: 0 }.code() as u8, 0xEB);
        assert_eq!(Command::CopyCalPage { from: 0, to: 1 }.code() as u8, 0xE4);
        assert_eq!(
            Command::StartStopDaqList {
                daq: 0,
                start: true
            }
            .code() as u8,
            0xDE
        );
    }

    #[test]
    fn wire_sizes_are_can_frame_friendly() {
        // Every fixed-size command fits an 8-byte CAN frame.
        let cmds = [
            Command::Connect,
            Command::SetMta { addr: 0xDEAD_BEEF },
            Command::Upload { count: 7 },
            Command::ShortUpload {
                count: 4,
                addr: 0x1000,
            },
            Command::BuildChecksum { len: 256 },
            Command::SetCalPage { page: 1 },
            Command::CopyCalPage { from: 0, to: 1 },
            Command::AllocOdtEntry {
                daq: 1,
                odt: 2,
                count: 3,
            },
            Command::WriteDaq {
                size: 4,
                addr: 0x2000,
            },
        ];
        for c in cmds {
            assert!(c.wire_bytes() <= 8, "{c:?} is {} bytes", c.wire_bytes());
        }
    }

    #[test]
    fn dto_wire_size_counts_header() {
        let d = DtoPacket {
            daq: 0,
            odt: 0,
            timestamp: 5,
            data: vec![1, 2, 3],
        };
        assert_eq!(d.wire_bytes(), 8);
    }

    #[test]
    fn error_codes_display() {
        assert!(ErrCode::Sequence.to_string().contains("0x29"));
        assert!(ErrCode::PageNotValid.to_string().contains("page"));
    }
}
