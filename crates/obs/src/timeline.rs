//! Unified wall-clock / sim-cycle Perfetto timeline.
//!
//! Renders a journal snapshot as one Chrome Trace Event Format document
//! (the same format `mcds-analysis` emits for device-only timelines)
//! with **two processes**: pid 1 carries the wall-clock farm tracks (RPC
//! dispatch, scheduler quanta, registry evictions, campaign phases) and
//! pid 2 carries the sim-cycle device/vnet tracks. The two clock domains
//! are merged through the [`ObsEvent::CycleAnchor`] records the
//! scheduler emits at every quantum boundary: a device event at cycle
//! `c` of session `s` is placed at the wall time of the nearest anchor
//! at-or-before `c`, offset by the modelled 150 MHz clock — so device
//! slices line up under the exact quantum that executed them.

use mcds_analysis::chrome::{cycles_to_us, ChromeEvent, ChromeTrace};

use crate::journal::{JournalRecord, ObsEvent};

/// Process id of the wall-clock (farm/scheduler/campaign) tracks.
pub const WALL_PID: u32 = 1;
/// Process id of the sim-cycle (device/vnet) tracks.
pub const SIM_PID: u32 = 2;
/// Wall-pid thread carrying RPC dispatch/complete events.
pub const RPC_TID: u32 = 1;
/// Wall-pid thread carrying scheduler quanta.
pub const SCHED_TID: u32 = 2;
/// Wall-pid thread carrying registry evict/revive instants.
pub const REG_TID: u32 = 3;
/// Wall-pid thread carrying campaign phase instants.
pub const CAMPAIGN_TID: u32 = 4;
/// Sim-pid thread carrying vnet fabric events.
pub const VNET_TID: u32 = 90;
/// Sim-pid thread for device runs not attributable to a session.
pub const DEVICE_TID: u32 = 9;

/// Sim-pid thread id for a session's device track.
pub fn sim_tid(session: u64) -> u32 {
    10 + (session % 64) as u32
}

fn meta(name: &str, pid: u32, tid: u32, label: &str) -> ChromeEvent {
    ChromeEvent {
        name: name.to_string(),
        cat: "__metadata".to_string(),
        ph: "M".to_string(),
        ts: 0.0,
        dur: 0.0,
        pid,
        tid,
        args: serde::Value::Map(vec![(
            "name".to_string(),
            serde::Value::Str(label.to_string()),
        )]),
    }
}

fn args_corr(corr: Option<u64>, extra: Vec<(String, serde::Value)>) -> serde::Value {
    let mut map = Vec::new();
    if let Some(c) = corr {
        map.push(("corr".to_string(), serde::Value::Int(i128::from(c))));
    }
    map.extend(extra);
    if map.is_empty() {
        serde::Value::Null
    } else {
        serde::Value::Map(map)
    }
}

/// One cycle↔wall anchor of a session.
#[derive(Debug, Clone, Copy)]
struct Anchor {
    cycle: u64,
    wall_ns: u64,
}

/// Maps a device cycle of one session onto the wall-clock axis using the
/// session's anchors: the nearest anchor at-or-before the cycle (else the
/// first anchor), offset by the modelled clock rate. With no anchors the
/// raw cycle→µs conversion is used (tracks start at t=0).
fn anchored_us(anchors: &[Anchor], cycle: u64) -> f64 {
    let Some(a) = anchors
        .iter()
        .rev()
        .find(|a| a.cycle <= cycle)
        .or(anchors.first())
    else {
        return cycles_to_us(cycle);
    };
    let base = a.wall_ns as f64 / 1e3;
    if cycle >= a.cycle {
        base + cycles_to_us(cycle - a.cycle)
    } else {
        base - cycles_to_us(a.cycle - cycle)
    }
}

/// Builds the unified two-process timeline from journal records.
///
/// Pass the records oldest-first (as [`crate::Journal::snapshot`] and
/// [`crate::Journal::tail`] return them).
#[must_use]
pub fn unified_timeline(records: &[JournalRecord]) -> ChromeTrace {
    // Pass 1: corr → session attribution and per-session anchor lists.
    let mut corr_session: Vec<(u64, u64)> = Vec::new();
    let mut anchors: Vec<(u64, Vec<Anchor>)> = Vec::new();
    for r in records {
        match r.event {
            ObsEvent::SchedulerQuantum { session, .. } => {
                if let Some(c) = r.corr {
                    if !corr_session.iter().any(|&(cc, _)| cc == c) {
                        corr_session.push((c, session));
                    }
                }
            }
            ObsEvent::CycleAnchor { session, cycle } => {
                let list = match anchors.iter_mut().find(|(s, _)| *s == session) {
                    Some((_, l)) => l,
                    None => {
                        anchors.push((session, Vec::new()));
                        &mut anchors.last_mut().expect("just pushed").1
                    }
                };
                list.push(Anchor {
                    cycle,
                    wall_ns: r.wall_ns,
                });
            }
            _ => {}
        }
    }
    for (_, list) in &mut anchors {
        list.sort_by_key(|a| a.cycle);
    }
    let session_of = |corr: Option<u64>| {
        corr.and_then(|c| {
            corr_session
                .iter()
                .find(|&&(cc, _)| cc == c)
                .map(|&(_, s)| s)
        })
    };
    let anchors_of = |session: Option<u64>| -> &[Anchor] {
        session
            .and_then(|s| anchors.iter().find(|(ss, _)| *ss == s))
            .map_or(&[], |(_, l)| l.as_slice())
    };

    let mut out = Vec::new();
    let mut used_sim_tids: Vec<(u32, String)> = Vec::new();
    let note_sim_tid = |used: &mut Vec<(u32, String)>, tid: u32, label: String| {
        if !used.iter().any(|(t, _)| *t == tid) {
            used.push((tid, label));
        }
    };
    let mut saw = [false; 4]; // rpc, sched, reg, campaign

    for r in records {
        let wall_us = r.wall_ns as f64 / 1e3;
        match &r.event {
            ObsEvent::RpcDispatch { method } => {
                saw[0] = true;
                out.push(ChromeEvent {
                    name: format!("dispatch {method}"),
                    cat: "rpc".into(),
                    ph: "i".into(),
                    ts: wall_us,
                    dur: 0.0,
                    pid: WALL_PID,
                    tid: RPC_TID,
                    args: args_corr(r.corr, vec![]),
                });
            }
            ObsEvent::RpcComplete {
                method,
                ok,
                latency_ns,
            } => {
                saw[0] = true;
                let dur = *latency_ns as f64 / 1e3;
                out.push(ChromeEvent {
                    name: method.clone(),
                    cat: "rpc".into(),
                    ph: "X".into(),
                    ts: (wall_us - dur).max(0.0),
                    dur,
                    pid: WALL_PID,
                    tid: RPC_TID,
                    args: args_corr(r.corr, vec![("ok".to_string(), serde::Value::Bool(*ok))]),
                });
            }
            ObsEvent::SchedulerQuantum {
                session,
                start_cycle,
                end_cycle,
                wall_ns,
            } => {
                saw[1] = true;
                let dur = *wall_ns as f64 / 1e3;
                out.push(ChromeEvent {
                    name: format!("quantum s{session}"),
                    cat: "scheduler".into(),
                    ph: "X".into(),
                    ts: (wall_us - dur).max(0.0),
                    dur,
                    pid: WALL_PID,
                    tid: SCHED_TID,
                    args: args_corr(
                        r.corr,
                        vec![
                            (
                                "start_cycle".to_string(),
                                serde::Value::Int(i128::from(*start_cycle)),
                            ),
                            (
                                "end_cycle".to_string(),
                                serde::Value::Int(i128::from(*end_cycle)),
                            ),
                        ],
                    ),
                });
            }
            ObsEvent::CycleAnchor { session, cycle } => {
                let tid = sim_tid(*session);
                note_sim_tid(&mut used_sim_tids, tid, format!("session {session}"));
                out.push(ChromeEvent {
                    name: format!("anchor @{cycle}"),
                    cat: "anchor".into(),
                    ph: "i".into(),
                    ts: anchored_us(anchors_of(Some(*session)), *cycle),
                    dur: 0.0,
                    pid: SIM_PID,
                    tid,
                    args: args_corr(r.corr, vec![]),
                });
            }
            ObsEvent::DeviceRun {
                start_cycle,
                end_cycle,
                stopped,
            } => {
                let session = session_of(r.corr);
                let tid = session.map_or(DEVICE_TID, sim_tid);
                let label =
                    session.map_or_else(|| "device".to_string(), |s| format!("session {s}"));
                note_sim_tid(&mut used_sim_tids, tid, label);
                let a = anchors_of(session);
                let ts = anchored_us(a, *start_cycle);
                let dur = cycles_to_us(end_cycle.saturating_sub(*start_cycle));
                out.push(ChromeEvent {
                    name: format!(
                        "run {}..{}{}",
                        start_cycle,
                        end_cycle,
                        if *stopped { " (stopped)" } else { "" }
                    ),
                    cat: "device".into(),
                    ph: "X".into(),
                    ts,
                    dur,
                    pid: SIM_PID,
                    tid,
                    args: args_corr(r.corr, vec![]),
                });
            }
            ObsEvent::SessionEvicted { session, bytes } => {
                saw[2] = true;
                out.push(ChromeEvent {
                    name: format!("evict s{session} ({bytes} B)"),
                    cat: "registry".into(),
                    ph: "i".into(),
                    ts: wall_us,
                    dur: 0.0,
                    pid: WALL_PID,
                    tid: REG_TID,
                    args: args_corr(r.corr, vec![]),
                });
            }
            ObsEvent::SessionRevived { session } => {
                saw[2] = true;
                out.push(ChromeEvent {
                    name: format!("revive s{session}"),
                    cat: "registry".into(),
                    ph: "i".into(),
                    ts: wall_us,
                    dur: 0.0,
                    pid: WALL_PID,
                    tid: REG_TID,
                    args: args_corr(r.corr, vec![]),
                });
            }
            ObsEvent::VnetStep {
                start_cycle,
                end_cycle,
                frames,
                gateway_forwarded,
            } => {
                note_sim_tid(&mut used_sim_tids, VNET_TID, "vnet fabric".to_string());
                out.push(ChromeEvent {
                    name: format!("vnet {frames} frames (+{gateway_forwarded} gw)"),
                    cat: "vnet".into(),
                    ph: "X".into(),
                    ts: cycles_to_us(*start_cycle),
                    dur: cycles_to_us(end_cycle.saturating_sub(*start_cycle)),
                    pid: SIM_PID,
                    tid: VNET_TID,
                    args: args_corr(r.corr, vec![]),
                });
            }
            ObsEvent::VnetCalSwap { page, committed } => {
                note_sim_tid(&mut used_sim_tids, VNET_TID, "vnet fabric".to_string());
                out.push(ChromeEvent {
                    name: format!(
                        "cal swap → page {page} ({})",
                        if *committed {
                            "committed"
                        } else {
                            "rolled back"
                        }
                    ),
                    cat: "vnet".into(),
                    ph: "i".into(),
                    ts: r.cycle.map_or(wall_us, cycles_to_us),
                    dur: 0.0,
                    pid: SIM_PID,
                    tid: VNET_TID,
                    args: args_corr(r.corr, vec![]),
                });
            }
            ObsEvent::CampaignPhase { phase, detail } => {
                saw[3] = true;
                out.push(ChromeEvent {
                    name: format!("{phase}: {detail}"),
                    cat: "campaign".into(),
                    ph: "i".into(),
                    ts: wall_us,
                    dur: 0.0,
                    pid: WALL_PID,
                    tid: CAMPAIGN_TID,
                    args: args_corr(r.corr, vec![]),
                });
            }
        }
    }

    // Metadata: name both processes and every used track.
    let mut events = vec![meta("process_name", WALL_PID, 0, "farm (wall clock)")];
    if saw[0] {
        events.push(meta("thread_name", WALL_PID, RPC_TID, "rpc"));
    }
    if saw[1] {
        events.push(meta("thread_name", WALL_PID, SCHED_TID, "scheduler"));
    }
    if saw[2] {
        events.push(meta("thread_name", WALL_PID, REG_TID, "registry"));
    }
    if saw[3] {
        events.push(meta("thread_name", WALL_PID, CAMPAIGN_TID, "campaign"));
    }
    if !used_sim_tids.is_empty() {
        events.push(meta("process_name", SIM_PID, 0, "devices (sim cycles)"));
        for (tid, label) in &used_sim_tids {
            events.push(meta("thread_name", SIM_PID, *tid, label));
        }
    }
    events.append(&mut out);
    ChromeTrace { events }
}

/// [`unified_timeline`] serialized as Trace Event Format JSON.
#[must_use]
pub fn timeline_json(records: &[JournalRecord]) -> String {
    unified_timeline(records).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;

    /// A journal trail resembling one `session.run` request: dispatch,
    /// two quanta with device runs and anchors, completion.
    fn sample_journal() -> Journal {
        let j = Journal::new(64);
        let corr = j.next_corr();
        j.record(
            Some(corr),
            None,
            ObsEvent::RpcDispatch {
                method: "session.run".into(),
            },
        );
        for q in 0..2u64 {
            let (s, e) = (q * 50_000, (q + 1) * 50_000);
            j.record(
                Some(corr),
                Some(e),
                ObsEvent::DeviceRun {
                    start_cycle: s,
                    end_cycle: e,
                    stopped: false,
                },
            );
            j.record(
                Some(corr),
                Some(e),
                ObsEvent::SchedulerQuantum {
                    session: 1,
                    start_cycle: s,
                    end_cycle: e,
                    wall_ns: 1_000,
                },
            );
            j.record(
                Some(corr),
                Some(e),
                ObsEvent::CycleAnchor {
                    session: 1,
                    cycle: e,
                },
            );
        }
        j.record(
            Some(corr),
            None,
            ObsEvent::RpcComplete {
                method: "session.run".into(),
                ok: true,
                latency_ns: 5_000,
            },
        );
        j
    }

    #[test]
    fn timeline_has_both_processes_and_round_trips() {
        let j = sample_journal();
        let trace = unified_timeline(&j.snapshot());
        assert!(trace
            .events
            .iter()
            .any(|e| e.pid == WALL_PID && e.ph == "X"));
        assert!(trace.events.iter().any(|e| e.pid == SIM_PID && e.ph == "X"));
        let names: Vec<&str> = trace
            .events
            .iter()
            .filter(|e| e.name == "process_name")
            .filter_map(|e| match &e.args {
                serde::Value::Map(m) => {
                    m.iter()
                        .find(|(k, _)| k == "name")
                        .and_then(|(_, v)| match v {
                            serde::Value::Str(s) => Some(s.as_str()),
                            _ => None,
                        })
                }
                _ => None,
            })
            .collect();
        assert!(names.contains(&"farm (wall clock)"));
        assert!(names.contains(&"devices (sim cycles)"));
        let json = timeline_json(&j.snapshot());
        let back = ChromeTrace::from_json(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn device_slices_are_anchored_to_quantum_wall_time() {
        let j = sample_journal();
        let snap = j.snapshot();
        let trace = unified_timeline(&snap);
        // The second device run (cycles 50k..100k) must start at the wall
        // time of the 50k anchor, not at the raw cycle conversion.
        let anchor_wall = snap
            .iter()
            .find(|r| matches!(r.event, ObsEvent::CycleAnchor { cycle: 50_000, .. }))
            .map(|r| r.wall_ns as f64 / 1e3)
            .unwrap();
        let run = trace
            .events
            .iter()
            .find(|e| e.pid == SIM_PID && e.name.starts_with("run 50000"))
            .unwrap();
        assert!((run.ts - anchor_wall).abs() < 1e-6);
        assert!(run.dur > 0.0);
    }

    #[test]
    fn unanchored_events_fall_back_to_cycle_time() {
        let j = Journal::new(8);
        j.record(
            None,
            Some(150_000),
            ObsEvent::VnetStep {
                start_cycle: 0,
                end_cycle: 150_000,
                frames: 10,
                gateway_forwarded: 2,
            },
        );
        let trace = unified_timeline(&j.snapshot());
        let step = trace.events.iter().find(|e| e.cat == "vnet").unwrap();
        assert!((step.ts - 0.0).abs() < 1e-12);
        // 150_000 cycles at 150 MHz is exactly 1 ms.
        assert!((step.dur - 1_000.0).abs() < 1e-6);
    }
}
