//! # mcds-obs — cross-layer causal tracing
//!
//! The paper's MCDS exists because post-silicon debug dies without
//! visibility into how components interact; this crate gives the *farm*
//! the same treatment the device got. It is the observability spine of
//! the suite: a bounded, lock-free-on-hot-path structured event
//! [`Journal`] shared by every runtime layer, request-scoped
//! **correlation ids** minted per farm JSON-RPC request and threaded
//! through dispatch → scheduler quanta → `host::Session` runs → vnet
//! fabric events, and a **unified Perfetto timeline**
//! ([`unified_timeline`]) that merges the wall-clock farm tracks with
//! the sim-cycle device tracks via the cycle↔wall anchors emitted at
//! quantum boundaries.
//!
//! Three invariants:
//!
//! * **Outside the determinism boundary.** Journal handles live next to
//!   [`mcds_telemetry::Telemetry`] handles: never snapshotted, hashed or
//!   replayed. Enabling the journal cannot change a single simulated
//!   bit (`tests/obs.rs` proptests it).
//! * **Bounded.** The ring overwrites oldest; `obs_journal_*` telemetry
//!   counts what was lost.
//! * **Causal.** One request ⇒ one correlation id, visible in events
//!   from at least three layers, so "why was this RPC slow" decomposes
//!   into per-stage latency.
//!
//! The flight-recorder dump ([`Journal::tail_json`]) is what campaign
//! triage attaches to `ReproArtifact`s and the farm attaches to typed
//! error payloads.

pub mod journal;
pub mod timeline;

pub use journal::{Journal, JournalRecord, ObsEvent};
pub use timeline::{sim_tid, timeline_json, unified_timeline, SIM_PID, WALL_PID};
