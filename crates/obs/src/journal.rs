//! The bounded structured event journal and request correlation ids.
//!
//! The journal is a fixed-capacity overwrite-oldest ring shared by every
//! layer of the stack via cheap `Clone` handles (an `Arc`, like
//! [`mcds_telemetry::Telemetry`]). The hot path is lock-free where it
//! counts: claiming a slot is one `fetch_add` on the head sequence, and
//! the only lock taken is the claimed slot's own `Mutex` — never a
//! journal-wide lock — so concurrent recorders (farm worker threads,
//! the accept loop) never serialize against each other except on the
//! rare wrap-around collision.
//!
//! Like telemetry, the journal lives strictly **outside** snapshotted
//! state: it is never hashed, never serialized into a
//! `SocSnapshot`/`SessionSnapshot`, and never replayed, so enabling it
//! cannot perturb record/replay bit-identity (`tests/obs.rs` proves it).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mcds_telemetry::Telemetry;

/// One journal entry: a typed event plus its dual timestamps.
///
/// `wall_ns` is always present (nanoseconds since the journal's epoch);
/// `cycle` is present only for events that happen at a definite point in
/// simulated time. `corr` links the entry to the farm request that caused
/// it, across every layer the request touched.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Global emission sequence number (dense, starts at 0).
    pub seq: u64,
    /// Request-scoped correlation id, if the event is attributable to a
    /// farm request.
    pub corr: Option<u64>,
    /// Simulated-cycle timestamp, for events anchored in device time.
    pub cycle: Option<u64>,
    /// Wall-clock nanoseconds since the journal was created.
    pub wall_ns: u64,
    /// The typed event.
    pub event: ObsEvent,
}

/// The typed cross-layer event vocabulary.
///
/// Each variant belongs to one layer (see [`ObsEvent::layer`]); a single
/// farm request leaves a correlated trail through at least the `farm`,
/// `scheduler` and `device`/`vnet` layers.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// A farm JSON-RPC request entered dispatch.
    RpcDispatch {
        /// Method name (e.g. `session.run`).
        method: String,
    },
    /// A farm JSON-RPC request finished (response rendered).
    RpcComplete {
        /// Method name.
        method: String,
        /// Whether the response was a result (vs a typed error).
        ok: bool,
        /// End-to-end dispatch latency in nanoseconds.
        latency_ns: u64,
    },
    /// A scheduler worker ran one quantum of a session.
    SchedulerQuantum {
        /// Session id.
        session: u64,
        /// Device cycle count when the quantum started.
        start_cycle: u64,
        /// Device cycle count when the quantum ended.
        end_cycle: u64,
        /// Wall time the quantum took, in nanoseconds.
        wall_ns: u64,
    },
    /// A cycle↔wall anchor: device cycle `cycle` of `session` was
    /// observed at this record's `wall_ns`. Emitted at every quantum
    /// boundary; the timeline uses these to place sim-cycle tracks on
    /// the wall clock.
    CycleAnchor {
        /// Session id.
        session: u64,
        /// The anchored device cycle.
        cycle: u64,
    },
    /// A `host::Session` executed a run slice on the device.
    DeviceRun {
        /// Device cycle count before the slice.
        start_cycle: u64,
        /// Device cycle count after the slice.
        end_cycle: u64,
        /// Whether the slice ended on a core stop.
        stopped: bool,
    },
    /// The registry suspended a session to disk under memory pressure.
    SessionEvicted {
        /// Session id.
        session: u64,
        /// Serialized snapshot size.
        bytes: u64,
    },
    /// The registry transparently revived an evicted session.
    SessionRevived {
        /// Session id.
        session: u64,
    },
    /// A vehicle network advanced: frames moved on the fabric.
    VnetStep {
        /// Vehicle cycle at the start of the step.
        start_cycle: u64,
        /// Vehicle cycle at the end of the step.
        end_cycle: u64,
        /// Frames delivered during the step.
        frames: u64,
        /// Frames the gateway forwarded during the step.
        gateway_forwarded: u64,
    },
    /// A fleet-wide XCP calibration page swap concluded.
    VnetCalSwap {
        /// The page the fleet was switched to (or headed for).
        page: u64,
        /// Whether the two-phase swap committed (vs rolled back).
        committed: bool,
    },
    /// A campaign pipeline phase (catch, shrink, triage, snapshot).
    CampaignPhase {
        /// Phase name.
        phase: String,
        /// Human-readable detail (verdict, stats).
        detail: String,
    },
}

impl ObsEvent {
    /// The runtime layer this event belongs to.
    pub fn layer(&self) -> &'static str {
        match self {
            ObsEvent::RpcDispatch { .. } | ObsEvent::RpcComplete { .. } => "farm",
            ObsEvent::SchedulerQuantum { .. }
            | ObsEvent::CycleAnchor { .. }
            | ObsEvent::SessionEvicted { .. }
            | ObsEvent::SessionRevived { .. } => "scheduler",
            ObsEvent::DeviceRun { .. } => "device",
            ObsEvent::VnetStep { .. } | ObsEvent::VnetCalSwap { .. } => "vnet",
            ObsEvent::CampaignPhase { .. } => "campaign",
        }
    }

    /// A short kind tag (the variant name, stable for grepping).
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::RpcDispatch { .. } => "RpcDispatch",
            ObsEvent::RpcComplete { .. } => "RpcComplete",
            ObsEvent::SchedulerQuantum { .. } => "SchedulerQuantum",
            ObsEvent::CycleAnchor { .. } => "CycleAnchor",
            ObsEvent::DeviceRun { .. } => "DeviceRun",
            ObsEvent::SessionEvicted { .. } => "SessionEvicted",
            ObsEvent::SessionRevived { .. } => "SessionRevived",
            ObsEvent::VnetStep { .. } => "VnetStep",
            ObsEvent::VnetCalSwap { .. } => "VnetCalSwap",
            ObsEvent::CampaignPhase { .. } => "CampaignPhase",
        }
    }
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    capacity: u64,
    /// Next sequence number to claim; also the total-ever-recorded count.
    head: AtomicU64,
    /// Next correlation id to mint (ids start at 1; 0 is never issued).
    next_corr: AtomicU64,
    slots: Vec<Mutex<Option<JournalRecord>>>,
}

/// A cheap-to-clone handle on the shared bounded event journal.
#[derive(Debug, Clone)]
pub struct Journal(Arc<Inner>);

impl Journal {
    /// Creates a journal holding the last `capacity` records (min 1).
    pub fn new(capacity: usize) -> Journal {
        let capacity = capacity.max(1);
        Journal(Arc::new(Inner {
            epoch: Instant::now(),
            capacity: capacity as u64,
            head: AtomicU64::new(0),
            next_corr: AtomicU64::new(1),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }))
    }

    /// Mints a fresh request-scoped correlation id (never 0).
    pub fn next_corr(&self) -> u64 {
        self.0.next_corr.fetch_add(1, Ordering::Relaxed)
    }

    /// Records one event, stamping it with the current wall clock.
    ///
    /// `corr` attributes the event to a farm request; `cycle` anchors it
    /// in simulated time. The oldest record is overwritten once the ring
    /// is full.
    pub fn record(&self, corr: Option<u64>, cycle: Option<u64>, event: ObsEvent) {
        let wall_ns = self.0.epoch.elapsed().as_nanos() as u64;
        self.record_at(corr, cycle, wall_ns, event);
    }

    /// [`Journal::record`] with an explicit wall timestamp, for recorders
    /// whose output must be deterministic across runs (e.g. the campaign
    /// flight recorder, whose dump is serialized into repro artifacts that
    /// same-seed campaigns must reproduce byte-identically).
    pub fn record_at(&self, corr: Option<u64>, cycle: Option<u64>, wall_ns: u64, event: ObsEvent) {
        let seq = self.0.head.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.0.capacity) as usize;
        let mut guard = self.0.slots[slot].lock().expect("journal slot poisoned");
        // On wrap-around two threads can claim sequences that map to the
        // same slot; the newer sequence wins so the ring stays "last N".
        if guard.as_ref().is_some_and(|r| r.seq > seq) {
            return;
        }
        *guard = Some(JournalRecord {
            seq,
            corr,
            cycle,
            wall_ns,
            event,
        });
    }

    /// Ring capacity.
    pub fn capacity(&self) -> u64 {
        self.0.capacity
    }

    /// Total records ever emitted (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.0.head.load(Ordering::Relaxed)
    }

    /// Records lost to ring overwrite.
    pub fn overwritten(&self) -> u64 {
        self.total().saturating_sub(self.0.capacity)
    }

    /// Correlation ids minted so far.
    pub fn correlations(&self) -> u64 {
        self.0.next_corr.load(Ordering::Relaxed) - 1
    }

    /// All currently retained records, oldest first.
    pub fn snapshot(&self) -> Vec<JournalRecord> {
        let mut out: Vec<JournalRecord> = self
            .0
            .slots
            .iter()
            .filter_map(|s| s.lock().expect("journal slot poisoned").clone())
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// The last `n` retained records, oldest first.
    pub fn tail(&self, n: usize) -> Vec<JournalRecord> {
        let mut all = self.snapshot();
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }

    /// The last `n` records as a JSON array — the flight-recorder dump
    /// attached to repro artifacts and typed farm error payloads.
    ///
    /// # Panics
    ///
    /// Never panics: journal records serialize infallibly.
    pub fn tail_json(&self, n: usize) -> String {
        serde_json::to_string(&self.tail(n)).expect("journal records serialize")
    }

    /// Mirrors journal totals into the `obs_*` telemetry namespace.
    pub fn publish_telemetry(&self, tel: &Telemetry) {
        let reg = tel.registry();
        reg.counter(
            "obs_journal_records_total",
            "events ever recorded in the obs journal",
        )
        .store(self.total());
        reg.counter(
            "obs_journal_overwritten_total",
            "obs journal events lost to ring overwrite",
        )
        .store(self.overwritten());
        reg.counter("obs_correlations_total", "request correlation ids minted")
            .store(self.correlations());
        reg.gauge("obs_journal_capacity", "obs journal ring capacity")
            .set(self.capacity() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_last_n_in_order() {
        let j = Journal::new(4);
        for i in 0..10u64 {
            j.record(
                Some(i),
                Some(i * 100),
                ObsEvent::CampaignPhase {
                    phase: format!("p{i}"),
                    detail: String::new(),
                },
            );
        }
        assert_eq!(j.total(), 10);
        assert_eq!(j.overwritten(), 6);
        let snap = j.snapshot();
        assert_eq!(snap.len(), 4);
        let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        let tail = j.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 8);
        assert_eq!(tail[1].seq, 9);
    }

    #[test]
    fn corr_ids_start_at_one_and_are_unique() {
        let j = Journal::new(8);
        assert_eq!(j.correlations(), 0);
        let a = j.next_corr();
        let b = j.next_corr();
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        assert_eq!(j.correlations(), 2);
    }

    #[test]
    fn records_round_trip_through_json() {
        let j = Journal::new(8);
        j.record(
            Some(7),
            None,
            ObsEvent::RpcDispatch {
                method: "session.run".into(),
            },
        );
        j.record(
            Some(7),
            Some(50_000),
            ObsEvent::SchedulerQuantum {
                session: 1,
                start_cycle: 0,
                end_cycle: 50_000,
                wall_ns: 12_345,
            },
        );
        let json = j.tail_json(16);
        let back: Vec<JournalRecord> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, j.tail(16));
        assert_eq!(back[0].event.layer(), "farm");
        assert_eq!(back[1].event.layer(), "scheduler");
        assert_eq!(back[1].event.kind(), "SchedulerQuantum");
    }

    #[test]
    fn concurrent_recording_drops_nothing_before_wrap() {
        let j = Journal::new(1024);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let j = j.clone();
                std::thread::spawn(move || {
                    for i in 0..64u64 {
                        j.record(
                            Some(t),
                            None,
                            ObsEvent::DeviceRun {
                                start_cycle: i,
                                end_cycle: i + 1,
                                stopped: false,
                            },
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(j.total(), 256);
        assert_eq!(j.snapshot().len(), 256);
    }

    #[test]
    fn telemetry_mirror_exports_obs_namespace() {
        let j = Journal::new(4);
        j.next_corr();
        j.record(None, None, ObsEvent::SessionRevived { session: 3 });
        let tel = Telemetry::new();
        j.publish_telemetry(&tel);
        let prom = tel.to_prometheus();
        assert!(prom.contains("obs_journal_records_total 1"));
        assert!(prom.contains("obs_correlations_total 1"));
        assert!(prom.contains("obs_journal_capacity 4"));
    }
}
