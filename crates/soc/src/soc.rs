//! The SoC model: cores, bus, memories and peripherals, stepped per cycle.
//!
//! [`Soc::step`] advances everything by one system clock cycle and returns
//! the [`CycleRecord`] of observable events — the stream the MCDS block
//! consumes. The debug master (the PSI service processor or host probe)
//! shares the bus with the cores through [`Soc::debug_request`], so debug
//! traffic competes for bandwidth exactly as on silicon.

use crate::asm::Program;
use crate::bus::{
    Addr, AddrRange, Bus, BusCompletion, BusFault, BusRequest, BusState, BusTarget, MasterId,
    TargetId, XferKind,
};
use crate::cpu::{CoreConfig, Cpu, CpuState};
use crate::event::{CoreId, CycleRecord, SocEvent};
use crate::isa::MemWidth;
use crate::mem::{EmulationRam, Flash, SegmentRole, Sram};
use crate::overlay::{OverlayMapper, OverlayState};
use crate::periph::{PeriphBlock, PeriphState};
use crate::sink::{Collect, CycleSink, NullSink};

/// Memory-map constants of the modelled TC1796-class device.
pub mod memmap {
    /// Program flash base (2 MB on the TC1796).
    pub const FLASH_BASE: u32 = 0x8000_0000;
    /// Program flash size.
    pub const FLASH_SIZE: u32 = 2 * 1024 * 1024;
    /// Default flash read wait states at full clock.
    pub const FLASH_WAIT_STATES: u32 = 3;
    /// On-chip SRAM base.
    pub const SRAM_BASE: u32 = 0xD000_0000;
    /// On-chip SRAM size.
    pub const SRAM_SIZE: u32 = 256 * 1024;
    /// Emulation RAM base (PSI development devices only).
    pub const EMEM_BASE: u32 = 0xE000_0000;
    /// Emulation RAM size (512 KB, Section 6).
    pub const EMEM_SIZE: u32 = 512 * 1024;
    /// Number of 64 KB emulation-RAM segments.
    pub const EMEM_SEGMENTS: usize = 8;
    /// Peripheral block base.
    pub const PERIPH_BASE: u32 = 0xF000_0000;
    /// Peripheral block size.
    pub const PERIPH_SIZE: u32 = 0x1000;
    /// Overlay (address-mapping block) control register base.
    pub const OVERLAY_CTRL_BASE: u32 = 0xF001_0000;
    /// System clock of the modelled device (150 MHz).
    pub const CLOCK_HZ: u64 = 150_000_000;

    /// Converts SoC cycles to nanoseconds at [`CLOCK_HZ`].
    pub fn cycles_to_ns(cycles: u64) -> u64 {
        cycles * 1_000_000_000 / CLOCK_HZ
    }

    /// Converts nanoseconds to SoC cycles at [`CLOCK_HZ`] (rounding up).
    pub fn ns_to_cycles(ns: u64) -> u64 {
        ns.saturating_mul(CLOCK_HZ).div_ceil(1_000_000_000)
    }
}

/// Error raised by the fallible backdoor-access methods
/// ([`Soc::try_backdoor_read`], [`Soc::try_backdoor_write`],
/// [`Soc::try_load_program`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackdoorError {
    /// The range is not fully backed by flash, SRAM or emulation RAM
    /// (it starts outside every region, or runs past a region's end).
    #[allow(missing_docs)]
    OutsideMemory { addr: Addr, len: usize },
    /// The range targets emulation RAM on a device variant without one.
    #[allow(missing_docs)]
    NoEmulationRam { addr: Addr },
}

impl std::fmt::Display for BackdoorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BackdoorError::OutsideMemory { addr, len } => {
                write!(f, "backdoor access outside memory at {addr:#010x}+{len:#x}")
            }
            BackdoorError::NoEmulationRam { addr } => write!(
                f,
                "backdoor access to emulation RAM at {addr:#010x} on a device without one"
            ),
        }
    }
}

impl std::error::Error for BackdoorError {}

/// Which backdoor-reachable memory a range falls into.
#[derive(Clone, Copy)]
enum BackdoorRegion {
    Flash,
    Sram,
    Emem,
}

impl BackdoorRegion {
    fn base(self) -> Addr {
        match self {
            BackdoorRegion::Flash => memmap::FLASH_BASE,
            BackdoorRegion::Sram => memmap::SRAM_BASE,
            BackdoorRegion::Emem => memmap::EMEM_BASE,
        }
    }
}

/// Classifies `addr..addr+len`, requiring it to sit entirely inside one
/// backdoor-reachable region.
fn backdoor_region(addr: Addr, len: usize) -> Result<BackdoorRegion, BackdoorError> {
    const REGIONS: [(BackdoorRegion, Addr, u32); 3] = [
        (
            BackdoorRegion::Flash,
            memmap::FLASH_BASE,
            memmap::FLASH_SIZE,
        ),
        (BackdoorRegion::Sram, memmap::SRAM_BASE, memmap::SRAM_SIZE),
        (BackdoorRegion::Emem, memmap::EMEM_BASE, memmap::EMEM_SIZE),
    ];
    for (region, base, size) in REGIONS {
        if (base..base + size).contains(&addr) {
            let within = (addr - base) as u64 + len as u64 <= size as u64;
            return if within {
                Ok(region)
            } else {
                Err(BackdoorError::OutsideMemory { addr, len })
            };
        }
    }
    Err(BackdoorError::OutsideMemory { addr, len })
}

/// The concrete bus-target set of the SoC (typed, so backdoor access needs
/// no downcasting).
#[allow(clippy::large_enum_variant)] // the mapper variant carries the 16-range table
pub enum SocTarget {
    /// The address-mapping block fronting flash, emulation RAM and its
    /// control registers.
    Mapper(OverlayMapper),
    /// On-chip SRAM.
    Sram(Sram),
    /// The peripheral block.
    Periph(PeriphBlock),
    /// An extension target added by the integrator.
    Ext(Box<dyn BusTarget + Send>),
}

impl std::fmt::Debug for SocTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SocTarget::Mapper(m) => m.fmt(f),
            SocTarget::Sram(s) => s.fmt(f),
            SocTarget::Periph(p) => p.fmt(f),
            SocTarget::Ext(_) => f.write_str("Ext(..)"),
        }
    }
}

impl BusTarget for SocTarget {
    fn access_cycles(&self, addr: Addr, kind: XferKind) -> u32 {
        match self {
            SocTarget::Mapper(t) => t.access_cycles(addr, kind),
            SocTarget::Sram(t) => t.access_cycles(addr, kind),
            SocTarget::Periph(t) => t.access_cycles(addr, kind),
            SocTarget::Ext(t) => t.access_cycles(addr, kind),
        }
    }

    fn read(&mut self, addr: Addr, width: MemWidth, now: u64) -> Result<u32, BusFault> {
        match self {
            SocTarget::Mapper(t) => t.read(addr, width, now),
            SocTarget::Sram(t) => t.read(addr, width, now),
            SocTarget::Periph(t) => t.read(addr, width, now),
            SocTarget::Ext(t) => t.read(addr, width, now),
        }
    }

    fn write(&mut self, addr: Addr, width: MemWidth, value: u32, now: u64) -> Result<(), BusFault> {
        match self {
            SocTarget::Mapper(t) => t.write(addr, width, value, now),
            SocTarget::Sram(t) => t.write(addr, width, value, now),
            SocTarget::Periph(t) => t.write(addr, width, value, now),
            SocTarget::Ext(t) => t.write(addr, width, value, now),
        }
    }
}

#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
enum DmaState {
    Idle,
    IssueRead,
    AwaitRead,
    AwaitWrite { data: u32 },
}

/// Serializable runtime state of the DMA engine (see [`SocState`]).
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaEngineState {
    state: DmaState,
    src: u32,
    dst: u32,
    remaining: u32,
    completion: Option<BusCompletion>,
}

/// The DMA engine: a word-at-a-time memcpy bus master, commanded through
/// the peripheral block's `DMA_*` registers. Its transactions appear on the
/// multi-master bus exactly like a core's — and therefore in the MCDS
/// system-centric bus trace.
#[derive(Debug)]
pub(crate) struct DmaEngine {
    master: MasterId,
    state: DmaState,
    src: u32,
    dst: u32,
    remaining: u32,
    completion: Option<BusCompletion>,
}

impl DmaEngine {
    fn new(master: MasterId) -> DmaEngine {
        DmaEngine {
            master,
            state: DmaState::Idle,
            src: 0,
            dst: 0,
            remaining: 0,
            completion: None,
        }
    }

    fn start(&mut self, src: u32, dst: u32, len: u32) {
        self.src = src;
        self.dst = dst;
        // Word-granular: round up to whole words.
        self.remaining = len.div_ceil(4) * 4;
        self.state = DmaState::IssueRead;
    }

    fn deliver(&mut self, c: BusCompletion) {
        self.completion = Some(c);
    }

    /// True while the engine would do nothing when ticked (no transfer in
    /// any phase). A stale undelivered completion with an `Idle` state is
    /// also inert: `tick` never consumes it from `Idle`.
    pub(crate) fn is_idle(&self) -> bool {
        matches!(self.state, DmaState::Idle)
    }

    /// Advances the engine one cycle; returns `Some(error)` when the
    /// transfer completes.
    fn tick(&mut self, bus: &mut Bus<SocTarget>) -> Option<bool> {
        match self.state {
            DmaState::Idle => None,
            DmaState::IssueRead => {
                if self.remaining == 0 {
                    self.state = DmaState::Idle;
                    return Some(false);
                }
                bus.request(
                    self.master,
                    BusRequest {
                        addr: self.src,
                        width: MemWidth::Word,
                        kind: XferKind::Read,
                        wdata: 0,
                    },
                );
                self.state = DmaState::AwaitRead;
                None
            }
            DmaState::AwaitRead => {
                let c = self.completion.take()?;
                if c.fault.is_some() {
                    self.state = DmaState::Idle;
                    return Some(true);
                }
                bus.request(
                    self.master,
                    BusRequest {
                        addr: self.dst,
                        width: MemWidth::Word,
                        kind: XferKind::Write,
                        wdata: c.rdata,
                    },
                );
                self.state = DmaState::AwaitWrite { data: c.rdata };
                None
            }
            DmaState::AwaitWrite { .. } => {
                let c = self.completion.take()?;
                if c.fault.is_some() {
                    self.state = DmaState::Idle;
                    return Some(true);
                }
                self.src += 4;
                self.dst += 4;
                self.remaining -= 4;
                self.state = DmaState::IssueRead;
                None
            }
        }
    }
}

/// Builder for a [`Soc`].
///
/// ```
/// use mcds_soc::soc::SocBuilder;
///
/// let soc = SocBuilder::new()
///     .cores(2)
///     .with_emulation_ram()
///     .build();
/// assert_eq!(soc.core_count(), 2);
/// ```
#[derive(Default)]
pub struct SocBuilder {
    cores: Vec<CoreConfig>,
    flash_wait_states: Option<u32>,
    sram_wait_states: u32,
    emem_segments: usize,
    dma: bool,
    out_history_cap: Option<usize>,
    round_robin: bool,
    extra: Vec<(AddrRange, Box<dyn BusTarget + Send>)>,
}

impl SocBuilder {
    /// Starts a builder with no cores and production-device memories.
    pub fn new() -> SocBuilder {
        SocBuilder::default()
    }

    /// Adds `n` full-speed cores with the default reset PC (flash base).
    pub fn cores(mut self, n: usize) -> SocBuilder {
        for _ in 0..n {
            self.cores.push(CoreConfig::default());
        }
        self
    }

    /// Adds one core with an explicit configuration.
    pub fn core(mut self, config: CoreConfig) -> SocBuilder {
        self.cores.push(config);
        self
    }

    /// Overrides the flash read wait states (default
    /// [`memmap::FLASH_WAIT_STATES`]).
    pub fn flash_wait_states(mut self, ws: u32) -> SocBuilder {
        self.flash_wait_states = Some(ws);
        self
    }

    /// Adds SRAM wait states (default 0).
    pub fn sram_wait_states(mut self, ws: u32) -> SocBuilder {
        self.sram_wait_states = ws;
        self
    }

    /// Fits the 512 KB PSI emulation RAM (development devices).
    pub fn with_emulation_ram(mut self) -> SocBuilder {
        self.emem_segments = memmap::EMEM_SEGMENTS;
        self
    }

    /// Fits a smaller emulation RAM of `segments` × 64 KB (the selective
    /// single-mask integration of Section 8 carries only a small region).
    ///
    /// # Panics
    ///
    /// Panics at build time if `segments` exceeds
    /// [`memmap::EMEM_SEGMENTS`].
    pub fn with_emulation_ram_segments(mut self, segments: usize) -> SocBuilder {
        self.emem_segments = segments;
        self
    }

    /// Fits the DMA controller (an extra bus master commanded via the
    /// peripheral `DMA_*` registers).
    pub fn with_dma(mut self) -> SocBuilder {
        self.dma = true;
        self
    }

    /// Caps the output-port history length (default 65536).
    pub fn output_history_cap(mut self, cap: usize) -> SocBuilder {
        self.out_history_cap = Some(cap);
        self
    }

    /// Uses round-robin bus arbitration instead of fixed priority.
    pub fn round_robin_bus(mut self) -> SocBuilder {
        self.round_robin = true;
        self
    }

    /// Maps an extension bus target.
    pub fn extension(mut self, range: AddrRange, target: Box<dyn BusTarget + Send>) -> SocBuilder {
        self.extra.push((range, target));
        self
    }

    /// Builds the SoC.
    ///
    /// # Panics
    ///
    /// Panics if no cores were configured or extension ranges overlap the
    /// standard memory map.
    pub fn build(self) -> Soc {
        assert!(!self.cores.is_empty(), "SoC needs at least one core");
        let masters = self.cores.len() + 1 + usize::from(self.dma);
        let mut bus: Bus<SocTarget> = Bus::new(masters);
        bus.set_round_robin(self.round_robin);

        let flash = Flash::new(
            memmap::FLASH_SIZE,
            self.flash_wait_states.unwrap_or(memmap::FLASH_WAIT_STATES),
        );
        assert!(
            self.emem_segments <= memmap::EMEM_SEGMENTS,
            "at most {} emulation-RAM segments",
            memmap::EMEM_SEGMENTS
        );
        let emem = (self.emem_segments > 0).then(|| EmulationRam::new(self.emem_segments));
        let emem_size = emem.as_ref().map(|e| e.size());
        let mapper = OverlayMapper::new(
            flash,
            memmap::FLASH_BASE,
            emem,
            memmap::EMEM_BASE,
            memmap::OVERLAY_CTRL_BASE,
        );
        let ctrl_window = mapper.ctrl_window();
        let mapper_id = bus.add_target(SocTarget::Mapper(mapper));
        bus.map_range(
            AddrRange::new(memmap::FLASH_BASE, memmap::FLASH_SIZE),
            mapper_id,
        );
        if let Some(size) = emem_size {
            bus.map_range(AddrRange::new(memmap::EMEM_BASE, size), mapper_id);
        }
        bus.map_range(ctrl_window, mapper_id);

        let sram = Sram::new(memmap::SRAM_SIZE, self.sram_wait_states).with_base(memmap::SRAM_BASE);
        let sram_id = bus.add_target(SocTarget::Sram(sram));
        bus.map_range(
            AddrRange::new(memmap::SRAM_BASE, memmap::SRAM_SIZE),
            sram_id,
        );

        let periph = PeriphBlock::new(memmap::PERIPH_BASE, self.out_history_cap.unwrap_or(65536));
        let periph_id = bus.add_target(SocTarget::Periph(periph));
        bus.map_range(
            AddrRange::new(memmap::PERIPH_BASE, memmap::PERIPH_SIZE),
            periph_id,
        );

        for (range, t) in self.extra {
            let id = bus.add_target(SocTarget::Ext(t));
            bus.map_range(range, id);
        }

        let cores: Vec<Cpu> = self
            .cores
            .into_iter()
            .enumerate()
            .map(|(i, c)| Cpu::new(CoreId(i as u8), MasterId(i as u8), c))
            .collect();
        let debug_master = MasterId(cores.len() as u8);
        let dma = self
            .dma
            .then(|| DmaEngine::new(MasterId(cores.len() as u8 + 1)));

        // The address windows the overlay mapper serves: a completed bus
        // write into any of them (code patch, cal-page data, overlay
        // control) can change what a fetch returns, so the kernel's decode
        // cache watches them for invalidation.
        let flash_window = AddrRange::new(memmap::FLASH_BASE, memmap::FLASH_SIZE);
        let mut code_windows = vec![flash_window, ctrl_window];
        if let Some(size) = emem_size {
            code_windows.push(AddrRange::new(memmap::EMEM_BASE, size));
        }

        Soc {
            cycle: 0,
            bus,
            cores,
            mapper_id,
            sram_id,
            periph_id,
            debug_master,
            debug_completion: None,
            prev_trig_in: 0,
            dma,
            scratch: Vec::with_capacity(16),
            exec: crate::kernel::ExecState::new(flash_window, code_windows),
        }
    }
}

/// Serializable runtime state of a [`Soc`], *excluding* memory contents.
///
/// Covers the cycle counter, every core's register/pipeline state, the bus
/// arbiter (including in-flight transactions), the peripheral block, the
/// overlay mapper's mapping state, the DMA engine and the debug-master
/// completion latch. Memory images (flash, SRAM, emulation RAM) are large
/// and are captured separately via [`Soc::memory_image`] /
/// [`Soc::restore_memory_image`], so snapshot layers can hash and
/// delta-compress them as raw byte components.
///
/// Build-time configuration (core count/configs, memory sizes, bus map,
/// extension targets) is *not* included: [`Soc::restore_state`] requires an
/// identically built SoC. Extension targets ([`SocTarget::Ext`]) carry
/// opaque state and are not snapshotted.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
pub struct SocState {
    cycle: u64,
    bus: BusState,
    cores: Vec<CpuState>,
    periph: PeriphState,
    overlay: OverlayState,
    emem_roles: Vec<SegmentRole>,
    emem_powered: bool,
    dma: Option<DmaEngineState>,
    debug_completion: Option<BusCompletion>,
    prev_trig_in: u32,
}

/// Which memory a raw byte image belongs to (see [`Soc::memory_image`]).
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryId {
    /// Program flash.
    Flash,
    /// On-chip SRAM.
    Sram,
    /// Emulation RAM (development devices only).
    Emem,
}

/// The simulated SoC.
///
/// Fields are `pub(crate)` so the execution kernel (`crate::kernel`) can
/// split-borrow them; everything outside the crate goes through accessors.
pub struct Soc {
    pub(crate) cycle: u64,
    pub(crate) bus: Bus<SocTarget>,
    pub(crate) cores: Vec<Cpu>,
    pub(crate) mapper_id: TargetId,
    pub(crate) sram_id: TargetId,
    pub(crate) periph_id: TargetId,
    pub(crate) debug_master: MasterId,
    pub(crate) debug_completion: Option<BusCompletion>,
    pub(crate) prev_trig_in: u32,
    pub(crate) dma: Option<DmaEngine>,
    /// Reused per-cycle event buffer for the streaming hot path. Always
    /// empty between steps; never serialized (it is pure scratch).
    pub(crate) scratch: Vec<SocEvent>,
    /// Execution-kernel state: mode, stats, event heap, decode cache and
    /// its generation counter. Derived state — never serialized, never
    /// hashed; [`SocState`] round-trips are bit-identical regardless of it.
    pub(crate) exec: crate::kernel::ExecState,
}

impl std::fmt::Debug for Soc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Soc")
            .field("cycle", &self.cycle)
            .field("cores", &self.cores.len())
            .finish()
    }
}

impl Soc {
    /// The current SoC cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Shared access to a core.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core(&self, id: CoreId) -> &Cpu {
        &self.cores[id.0 as usize]
    }

    /// Mutable access to a core (debug run control).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core_mut(&mut self, id: CoreId) -> &mut Cpu {
        &mut self.cores[id.0 as usize]
    }

    /// Iterates over all cores.
    pub fn cores(&self) -> impl Iterator<Item = &Cpu> {
        self.cores.iter()
    }

    /// The debug bus-master slot (service processor / host probe).
    pub fn debug_master(&self) -> MasterId {
        self.debug_master
    }

    /// Cycle-exact bus arbitration counters — ground truth for trace-derived
    /// utilization and contention analysis.
    pub fn bus_counters(&self) -> &crate::bus::BusCounters {
        self.bus.counters()
    }

    /// The DMA engine's bus-master slot, if a DMA controller is fitted.
    pub fn dma_master(&self) -> Option<MasterId> {
        self.dma.as_ref().map(|d| d.master)
    }

    /// The address-mapping block (backdoor).
    pub fn mapper(&self) -> &OverlayMapper {
        match self.bus.target(self.mapper_id) {
            SocTarget::Mapper(m) => m,
            _ => unreachable!("mapper id points at mapper"),
        }
    }

    /// Mutable backdoor to the address-mapping block (overlay configuration,
    /// flash programming, emulation-RAM segment roles).
    ///
    /// Any caller may rewrite code or remap the fetch path through this
    /// handle (flash programming, overlay page swaps, segment roles), so it
    /// conservatively invalidates the execution kernel's decode cache.
    pub fn mapper_mut(&mut self) -> &mut OverlayMapper {
        self.exec.invalidate_decode();
        match self.bus.target_mut(self.mapper_id) {
            SocTarget::Mapper(m) => m,
            _ => unreachable!("mapper id points at mapper"),
        }
    }

    /// The SRAM (backdoor).
    pub fn sram(&self) -> &Sram {
        match self.bus.target(self.sram_id) {
            SocTarget::Sram(s) => s,
            _ => unreachable!("sram id points at sram"),
        }
    }

    /// Mutable backdoor to the SRAM.
    pub fn sram_mut(&mut self) -> &mut Sram {
        match self.bus.target_mut(self.sram_id) {
            SocTarget::Sram(s) => s,
            _ => unreachable!("sram id points at sram"),
        }
    }

    /// The peripheral block (sensor inputs, actuator history, trigger pins).
    pub fn periph(&self) -> &PeriphBlock {
        match self.bus.target(self.periph_id) {
            SocTarget::Periph(p) => p,
            _ => unreachable!("periph id points at periph"),
        }
    }

    /// Mutable access to the peripheral block.
    pub fn periph_mut(&mut self) -> &mut PeriphBlock {
        match self.bus.target_mut(self.periph_id) {
            SocTarget::Periph(p) => p,
            _ => unreachable!("periph id points at periph"),
        }
    }

    /// Loads an assembled [`Program`] through the backdoor (no simulated
    /// time): flash chunks are programmed, SRAM and emulation-RAM chunks are
    /// copied.
    ///
    /// # Panics
    ///
    /// Panics if a chunk falls outside flash, SRAM or emulation RAM. Use
    /// [`Soc::try_load_program`] to get a typed error instead.
    pub fn load_program(&mut self, program: &Program) {
        self.try_load_program(program)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`Soc::load_program`]: returns a [`BackdoorError`]
    /// for the first chunk that falls outside flash, SRAM or emulation RAM.
    /// Chunks before the failing one stay written.
    pub fn try_load_program(&mut self, program: &Program) -> Result<(), BackdoorError> {
        for (base, bytes) in &program.chunks {
            self.try_backdoor_write(*base, bytes)?;
        }
        Ok(())
    }

    /// Backdoor write of raw bytes at an absolute address (no simulated
    /// time, no access-control checks).
    ///
    /// # Panics
    ///
    /// Panics if the range is not backed by flash, SRAM or emulation RAM.
    /// Use [`Soc::try_backdoor_write`] to get a typed error instead.
    pub fn backdoor_write(&mut self, addr: Addr, bytes: &[u8]) {
        self.try_backdoor_write(addr, bytes)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`Soc::backdoor_write`]: rejects ranges that are
    /// not fully backed by flash, SRAM or emulation RAM with a typed
    /// [`BackdoorError`] instead of panicking.
    pub fn try_backdoor_write(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), BackdoorError> {
        let region = backdoor_region(addr, bytes.len())?;
        let off = (addr - region.base()) as usize;
        match region {
            BackdoorRegion::Flash => self
                .mapper_mut()
                .flash_mut()
                .program(addr - memmap::FLASH_BASE, bytes),
            BackdoorRegion::Sram => {
                self.sram_mut().bytes_mut()[off..off + bytes.len()].copy_from_slice(bytes);
            }
            BackdoorRegion::Emem => {
                let emem = self
                    .mapper_mut()
                    .emem_mut()
                    .ok_or(BackdoorError::NoEmulationRam { addr })?;
                emem.bytes_mut()[off..off + bytes.len()].copy_from_slice(bytes);
            }
        }
        Ok(())
    }

    /// Backdoor read of raw bytes at an absolute address.
    ///
    /// # Panics
    ///
    /// Panics if the range is not backed by flash, SRAM or emulation RAM.
    /// Use [`Soc::try_backdoor_read`] to get a typed error instead.
    pub fn backdoor_read(&self, addr: Addr, len: usize) -> Vec<u8> {
        self.try_backdoor_read(addr, len)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Soc::backdoor_read`]: rejects ranges that are not
    /// fully backed by flash, SRAM or emulation RAM with a typed
    /// [`BackdoorError`] instead of panicking.
    pub fn try_backdoor_read(&self, addr: Addr, len: usize) -> Result<Vec<u8>, BackdoorError> {
        let region = backdoor_region(addr, len)?;
        let off = (addr - region.base()) as usize;
        Ok(match region {
            BackdoorRegion::Flash => self.mapper().flash().bytes()[off..off + len].to_vec(),
            BackdoorRegion::Sram => self.sram().bytes()[off..off + len].to_vec(),
            BackdoorRegion::Emem => {
                let emem = self
                    .mapper()
                    .emem()
                    .ok_or(BackdoorError::NoEmulationRam { addr })?;
                emem.bytes()[off..off + len].to_vec()
            }
        })
    }

    /// Backdoor read of one little-endian word.
    pub fn backdoor_read_word(&self, addr: Addr) -> u32 {
        let b = self.backdoor_read(addr, 4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Queues a bus request on the debug master slot. The completion appears
    /// via [`Soc::take_debug_completion`] once the bus delivers it.
    pub fn debug_request(&mut self, request: BusRequest) {
        self.bus.request(self.debug_master, request);
    }

    /// Takes the pending debug-master completion, if one arrived.
    pub fn take_debug_completion(&mut self) -> Option<BusCompletion> {
        self.debug_completion.take()
    }

    /// Withdraws a queued debug-master request that was never granted.
    /// Returns `true` if a queued request was removed; an already-active
    /// transaction still completes (discard it with
    /// [`Soc::take_debug_completion`]).
    pub fn cancel_debug_request(&mut self) -> bool {
        self.bus.cancel_request(self.debug_master)
    }

    /// True if the debug master has a request queued or in flight.
    pub fn debug_busy(&self) -> bool {
        self.bus.master_busy(self.debug_master) || self.debug_completion.is_some()
    }

    /// Captures the SoC's complete runtime state except memory contents
    /// (see [`SocState`] for what is and is not covered).
    pub fn save_state(&self) -> SocState {
        let emem = self.mapper().emem();
        SocState {
            cycle: self.cycle,
            bus: self.bus.save_state(),
            cores: self.cores.iter().map(Cpu::save_state).collect(),
            periph: self.periph().save_state(),
            overlay: self.mapper().save_state(),
            emem_roles: emem
                .map(|e| (0..e.segment_count()).map(|s| e.segment_role(s)).collect())
                .unwrap_or_default(),
            emem_powered: emem.map(|e| e.is_powered()).unwrap_or(false),
            dma: self.dma.as_ref().map(|d| DmaEngineState {
                state: d.state,
                src: d.src,
                dst: d.dst,
                remaining: d.remaining,
                completion: d.completion,
            }),
            debug_completion: self.debug_completion,
            prev_trig_in: self.prev_trig_in,
        }
    }

    /// Restores state captured by [`Soc::save_state`] onto an identically
    /// built SoC. Memory contents are untouched; restore them separately
    /// with [`Soc::restore_memory_image`].
    ///
    /// # Panics
    ///
    /// Panics if the core count, DMA fitment or emulation-RAM segment count
    /// differ from the SoC the state was saved from.
    pub fn restore_state(&mut self, state: &SocState) {
        assert_eq!(
            self.cores.len(),
            state.cores.len(),
            "core count mismatch on restore"
        );
        assert_eq!(
            self.dma.is_some(),
            state.dma.is_some(),
            "DMA fitment mismatch on restore"
        );
        self.cycle = state.cycle;
        self.bus.restore_state(&state.bus);
        for (core, s) in self.cores.iter_mut().zip(&state.cores) {
            core.restore_state(s);
        }
        self.periph_mut().restore_state(&state.periph);
        self.mapper_mut().restore_state(&state.overlay);
        let emem_roles = state.emem_roles.clone();
        let emem_powered = state.emem_powered;
        if let Some(emem) = self.mapper_mut().emem_mut() {
            assert_eq!(
                emem.segment_count(),
                emem_roles.len(),
                "emulation-RAM segment count mismatch on restore"
            );
            for (s, role) in emem_roles.iter().enumerate() {
                emem.set_segment_role(s, *role);
            }
            emem.set_powered(emem_powered);
        } else {
            assert!(
                emem_roles.is_empty(),
                "emulation-RAM fitment mismatch on restore"
            );
        }
        if let (Some(dma), Some(s)) = (self.dma.as_mut(), state.dma.as_ref()) {
            dma.state = s.state;
            dma.src = s.src;
            dma.dst = s.dst;
            dma.remaining = s.remaining;
            dma.completion = s.completion;
        }
        self.debug_completion = state.debug_completion;
        self.prev_trig_in = state.prev_trig_in;
    }

    /// Returns a raw byte image of one memory, or `None` when the device
    /// variant does not have it fitted (emulation RAM on production parts).
    pub fn memory_image(&self, id: MemoryId) -> Option<Vec<u8>> {
        match id {
            MemoryId::Flash => Some(self.mapper().flash().bytes().to_vec()),
            MemoryId::Sram => Some(self.sram().bytes().to_vec()),
            MemoryId::Emem => self.mapper().emem().map(|e| e.bytes().to_vec()),
        }
    }

    /// Restores a raw byte image captured by [`Soc::memory_image`].
    ///
    /// # Panics
    ///
    /// Panics if the image length does not match the memory's size or the
    /// memory is not fitted.
    pub fn restore_memory_image(&mut self, id: MemoryId, image: &[u8]) {
        match id {
            MemoryId::Flash => {
                let flash = self.mapper_mut().flash_mut();
                assert_eq!(
                    flash.size() as usize,
                    image.len(),
                    "flash image size mismatch"
                );
                flash.program(0, image);
            }
            MemoryId::Sram => {
                let dst = self.sram_mut().bytes_mut();
                assert_eq!(dst.len(), image.len(), "SRAM image size mismatch");
                dst.copy_from_slice(image);
            }
            MemoryId::Emem => {
                let dst = self
                    .mapper_mut()
                    .emem_mut()
                    .expect("emulation RAM not fitted")
                    .bytes_mut();
                assert_eq!(dst.len(), image.len(), "emulation-RAM image size mismatch");
                dst.copy_from_slice(image);
            }
        }
    }

    /// Lets `cycles` of wall time pass without simulating them: the cycle
    /// counter jumps forward. Only meaningful while the system is quiescent
    /// (e.g. during flash reprogramming with all cores halted); callers are
    /// responsible for checking that, since any in-flight work would be
    /// frozen rather than advanced.
    pub fn advance_clock(&mut self, cycles: u64) {
        self.cycle += cycles;
    }

    /// Advances the SoC by one cycle, filling the internal scratch buffer
    /// with the cycle's observable events, and returns the stepped cycle
    /// number plus a view of those events.
    ///
    /// This is the allocation-free heart of the observation pipeline:
    /// the scratch buffer is cleared and refilled in place, so steady-state
    /// stepping performs no per-cycle heap allocation. The returned slice
    /// is invalidated by the next step — copy what must be kept.
    pub fn step_events(&mut self) -> (u64, &[SocEvent]) {
        let mut events = std::mem::take(&mut self.scratch);
        events.clear();
        let now = self.cycle;
        if let Some(c) = self.bus.step(now) {
            // In-band code writes (core stores through an overlay window,
            // DMA into emulation RAM, debug-master patches, overlay control
            // pokes) invalidate the kernel's decode cache.
            if c.fault.is_none()
                && c.request.kind.is_write()
                && self.exec.watches_writes_to(c.request.addr)
            {
                self.exec.invalidate_decode();
            }
            if c.master == self.debug_master {
                self.debug_completion = Some(c);
            } else if self.dma.as_ref().is_some_and(|d| d.master == c.master) {
                self.dma.as_mut().expect("checked").deliver(c);
            } else {
                self.cores[c.master.0 as usize].deliver(c);
            }
        }
        if let Some(x) = self.bus.last_xact() {
            events.push(SocEvent::Bus(x));
        }
        // One peripheral-block lookup per cycle: read the trigger pins,
        // advance the timer, sample the IRQ level and pick up any DMA
        // command together.
        let has_dma = self.dma.is_some();
        let (level, irq, dma_start) = {
            let periph = self.periph_mut();
            let level = periph.trigger_in();
            periph.timer_tick(now);
            let dma_start = if has_dma {
                periph.take_dma_start()
            } else {
                None
            };
            (level, periph.irq_pending(), dma_start)
        };
        // Surface external trigger-in edges: walk only the changed lines
        // (set bits of the XOR mask), lowest line first.
        if level != self.prev_trig_in {
            let mut changed = level ^ self.prev_trig_in;
            while changed != 0 {
                let line = changed.trailing_zeros();
                changed &= changed - 1;
                events.push(SocEvent::TriggerIn {
                    line: line as u8,
                    level: level & (1 << line) != 0,
                });
            }
            self.prev_trig_in = level;
        }
        // Drive the cores' IRQ lines.
        for core in self.cores.iter_mut() {
            core.set_irq_line(irq);
        }
        // Apply any DMA command and advance the engine.
        if has_dma {
            if let Some((src, dst, len)) = dma_start {
                self.dma.as_mut().expect("checked").start(src, dst, len);
            }
            let Soc { dma, bus, .. } = self;
            if let Some(done) = dma.as_mut().expect("checked").tick(bus) {
                self.periph_mut().finish_dma(done);
            }
        }
        let Soc { cores, bus, .. } = self;
        for core in cores.iter_mut() {
            if core.clock_enabled(now) {
                core.tick(bus, now, &mut events);
            }
        }
        self.cycle += 1;
        self.scratch = events;
        (now, &self.scratch)
    }

    /// Advances the SoC by one cycle, pushing the cycle's observable
    /// events into `sink` (the streaming hot path — zero heap allocations
    /// per cycle at steady state).
    #[inline]
    pub fn step_into<S: CycleSink + ?Sized>(&mut self, sink: &mut S) {
        let (cycle, events) = self.step_events();
        sink.observe(cycle, events);
    }

    /// Advances the SoC by one cycle and returns its observable events as
    /// an owned [`CycleRecord`] (legacy batch API; allocates per cycle —
    /// prefer [`Soc::step_into`] on hot paths).
    pub fn step(&mut self) -> CycleRecord {
        let (cycle, events) = self.step_events();
        CycleRecord {
            cycle,
            events: events.to_vec(),
        }
    }

    /// Advances `n` cycles, discarding events (fast-forward for tests and
    /// benches that do not trace). Routed through the execution kernel
    /// with a [`NullSink`], so quiescent stretches are skipped and
    /// straight-line code runs as batched basic blocks (see
    /// [`crate::kernel`]); the architectural end state is bit-identical to
    /// `n` per-cycle steps.
    pub fn run_cycles(&mut self, n: u64) {
        self.run_cycles_into(n, &mut NullSink);
    }

    /// Advances `n` cycles, streaming observed cycles into `sink` — the
    /// single kernel entry point that `run_cycles` / `run_until_halt_into`
    /// wrap. A sink that wants every cycle
    /// ([`CycleSink::wants_cycles`]`()` true) forces exact per-cycle
    /// stepping; otherwise the configured [`crate::kernel::ExecMode`]
    /// decides how time advances.
    pub fn run_cycles_into<S: CycleSink + ?Sized>(&mut self, n: u64, sink: &mut S) {
        let target = self.cycle.saturating_add(n);
        self.run_kernel(target, false, sink);
    }

    /// Advances until every core is halted or `max_cycles` elapse,
    /// streaming observed cycles into `sink`. Returns the number of cycles
    /// consumed. Memory use is the sink's choice — [`NullSink`] keeps a
    /// multi-billion-cycle run flat (and additionally licenses the kernel
    /// to batch).
    pub fn run_until_halt_into<S: CycleSink + ?Sized>(
        &mut self,
        max_cycles: u64,
        sink: &mut S,
    ) -> u64 {
        let target = self.cycle.saturating_add(max_cycles);
        self.run_kernel(target, true, sink)
    }

    /// Steps until every core is halted or `max_cycles` elapse; returns the
    /// collected records (legacy batch wrapper over
    /// [`Soc::run_until_halt_into`] + [`Collect`]; memory grows with run
    /// length).
    pub fn run_until_halt(&mut self, max_cycles: u64) -> Vec<CycleRecord> {
        let mut collect = Collect::new();
        self.run_until_halt_into(max_cycles, &mut collect);
        collect.into_records()
    }

    /// Performs a debug-master read, stepping the SoC until it completes.
    /// Returns the value and the records of the cycles consumed.
    ///
    /// # Errors
    ///
    /// Returns the bus fault if the access failed.
    pub fn debug_read(
        &mut self,
        addr: Addr,
        width: MemWidth,
    ) -> Result<(u32, Vec<CycleRecord>), BusFault> {
        self.debug_request(BusRequest {
            addr,
            width,
            kind: XferKind::Read,
            wdata: 0,
        });
        let mut records = Vec::new();
        loop {
            records.push(self.step());
            if let Some(c) = self.take_debug_completion() {
                return match c.fault {
                    Some(f) => Err(f),
                    None => Ok((c.rdata, records)),
                };
            }
        }
    }

    /// Performs a debug-master write, stepping the SoC until it completes.
    ///
    /// # Errors
    ///
    /// Returns the bus fault if the access failed.
    pub fn debug_write(
        &mut self,
        addr: Addr,
        width: MemWidth,
        value: u32,
    ) -> Result<Vec<CycleRecord>, BusFault> {
        self.debug_request(BusRequest {
            addr,
            width,
            kind: XferKind::Write,
            wdata: value,
        });
        let mut records = Vec::new();
        loop {
            records.push(self.step());
            if let Some(c) = self.take_debug_completion() {
                return match c.fault {
                    Some(f) => Err(f),
                    None => Ok(records),
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::event::StopCause;
    use crate::isa::Reg;

    fn engine_stub() -> Program {
        assemble(
            "
            .equ OUT0, 0xF0000100
            .equ IN0,  0xF0000200
            .org 0x80000000
            start:
                li  r1, IN0
                li  r2, OUT0
            loop:
                lw  r3, 0(r1)     ; read sensor
                slli r4, r3, 1    ; duration = 2 * rpm (toy law)
                sw  r4, 0(r2)     ; write actuator
                addi r5, r5, 1
                slti r6, r5, 10
                bne r6, r0, loop
                halt
            ",
        )
        .expect("assembles")
    }

    #[test]
    fn program_runs_from_flash_and_drives_ports() {
        let mut soc = SocBuilder::new().cores(1).build();
        soc.load_program(&engine_stub());
        soc.periph_mut().set_input(0, 3000);
        soc.run_until_halt(20_000);
        assert!(soc.core(CoreId(0)).is_halted());
        assert_eq!(soc.periph().output(0), 6000);
        assert_eq!(soc.periph().output_history(0).len(), 10);
    }

    #[test]
    fn two_cores_share_the_bus() {
        let prog = assemble(
            "
            .org 0x80000000
            start:
                mfsr r1, coreid
                slli r1, r1, 2          ; r1 = coreid * 4
                li   r2, 0xD0000000
                add  r2, r2, r1
                li   r3, 0xABC
                sw   r3, 0(r2)
                halt
            ",
        )
        .unwrap();
        let mut soc = SocBuilder::new().cores(2).build();
        soc.load_program(&prog);
        soc.run_until_halt(20_000);
        assert!(soc.cores().all(|c| c.is_halted()));
        assert_eq!(soc.backdoor_read_word(memmap::SRAM_BASE), 0xABC);
        assert_eq!(soc.backdoor_read_word(memmap::SRAM_BASE + 4), 0xABC);
    }

    #[test]
    fn debug_master_reads_memory_while_cores_run() {
        let prog = assemble(
            "
            .org 0x80000000
            loop:
                addi r1, r1, 1
                j loop
            ",
        )
        .unwrap();
        let mut soc = SocBuilder::new().cores(1).build();
        soc.load_program(&prog);
        soc.backdoor_write(memmap::SRAM_BASE + 0x40, &0xCAFE_F00Du32.to_le_bytes());
        soc.run_cycles(100);
        let (v, records) = soc
            .debug_read(memmap::SRAM_BASE + 0x40, MemWidth::Word)
            .unwrap();
        assert_eq!(v, 0xCAFE_F00D);
        assert!(!records.is_empty());
        assert!(!soc.core(CoreId(0)).is_halted(), "core kept running");
    }

    #[test]
    fn debug_master_has_lowest_priority() {
        // With a core hammering the bus, the debug read still completes but
        // takes longer than on an idle bus.
        let busy = assemble(
            "
            .org 0x80000000
            loop:
                lw r1, 0(r2)
                j loop
            ",
        )
        .unwrap();
        let mut soc = SocBuilder::new().cores(1).build();
        soc.load_program(&busy);
        soc.core_mut(CoreId(0))
            .set_reg(Reg::new(2), memmap::SRAM_BASE);
        soc.run_cycles(50);
        let (_, with_load) = soc.debug_read(memmap::SRAM_BASE, MemWidth::Word).unwrap();

        let mut idle = SocBuilder::new().cores(1).build();
        idle.load_program(&assemble(".org 0x80000000\nhalt").unwrap());
        idle.run_until_halt(100);
        let (_, no_load) = idle.debug_read(memmap::SRAM_BASE, MemWidth::Word).unwrap();
        assert!(
            with_load.len() >= no_load.len(),
            "contended read ({}) not faster than idle read ({})",
            with_load.len(),
            no_load.len()
        );
    }

    #[test]
    fn trigger_in_edges_become_events() {
        let mut soc = SocBuilder::new().cores(1).build();
        soc.load_program(&assemble(".org 0x80000000\nloop: j loop").unwrap());
        soc.periph_mut().set_trigger_in(0b1);
        let rec = soc.step();
        assert!(rec.events.iter().any(|e| matches!(
            e,
            SocEvent::TriggerIn {
                line: 0,
                level: true
            }
        )));
        soc.periph_mut().set_trigger_in(0b0);
        let rec = soc.step();
        assert!(rec.events.iter().any(|e| matches!(
            e,
            SocEvent::TriggerIn {
                line: 0,
                level: false
            }
        )));
    }

    #[test]
    fn production_device_has_no_emem() {
        let soc = SocBuilder::new().cores(1).build();
        assert!(soc.mapper().emem().is_none());
        let soc = SocBuilder::new().cores(1).with_emulation_ram().build();
        assert_eq!(soc.mapper().emem().unwrap().size(), memmap::EMEM_SIZE);
    }

    #[test]
    fn backdoor_access_outside_memory_is_a_typed_error() {
        let mut soc = SocBuilder::new().cores(1).build();
        assert_eq!(
            soc.try_backdoor_read(0x1234_0000, 4),
            Err(BackdoorError::OutsideMemory {
                addr: 0x1234_0000,
                len: 4
            })
        );
        assert_eq!(
            soc.try_backdoor_write(0x1234_0000, &[0; 4]),
            Err(BackdoorError::OutsideMemory {
                addr: 0x1234_0000,
                len: 4
            })
        );
        // A range that starts inside SRAM but runs past its end is rejected
        // up front (nothing is written).
        let end = memmap::SRAM_BASE + memmap::SRAM_SIZE - 2;
        assert_eq!(
            soc.try_backdoor_write(end, &[0xAA; 8]),
            Err(BackdoorError::OutsideMemory { addr: end, len: 8 })
        );
        assert_eq!(soc.try_backdoor_read(end, 2).unwrap(), vec![0, 0]);
    }

    #[test]
    fn backdoor_emem_without_emulation_ram_is_a_typed_error() {
        let mut soc = SocBuilder::new().cores(1).build();
        assert_eq!(
            soc.try_backdoor_read(memmap::EMEM_BASE, 4),
            Err(BackdoorError::NoEmulationRam {
                addr: memmap::EMEM_BASE
            })
        );
        assert_eq!(
            soc.try_backdoor_write(memmap::EMEM_BASE, &[1, 2, 3]),
            Err(BackdoorError::NoEmulationRam {
                addr: memmap::EMEM_BASE
            })
        );
        let mut dev = SocBuilder::new().cores(1).with_emulation_ram().build();
        dev.try_backdoor_write(memmap::EMEM_BASE, &[1, 2, 3])
            .unwrap();
        assert_eq!(
            dev.try_backdoor_read(memmap::EMEM_BASE, 3).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn try_load_program_reports_bad_chunks() {
        let mut soc = SocBuilder::new().cores(1).build();
        let mut prog = assemble(".org 0x80000000\nhalt").unwrap();
        prog.chunks.push((0x4000_0000, vec![0xFF; 16]));
        assert_eq!(
            soc.try_load_program(&prog),
            Err(BackdoorError::OutsideMemory {
                addr: 0x4000_0000,
                len: 16
            })
        );
    }

    #[test]
    fn brk_in_program_stops_core_with_breakpoint() {
        let prog = assemble(".org 0x80000000\nnop\nbrk\nnop").unwrap();
        let mut soc = SocBuilder::new().cores(1).build();
        soc.load_program(&prog);
        let records = soc.run_until_halt(1000);
        let stopped = records
            .iter()
            .flat_map(|r| &r.events)
            .find_map(|e| match e {
                SocEvent::CoreStopped { cause, pc, .. } => Some((*cause, *pc)),
                _ => None,
            });
        assert_eq!(
            stopped,
            Some((StopCause::Breakpoint, memmap::FLASH_BASE + 4))
        );
    }
}

#[cfg(test)]
mod builder_tests {
    use super::*;
    use crate::asm::assemble;
    use crate::event::CoreId;

    #[test]
    fn sram_wait_states_slow_execution() {
        let prog = assemble(
            "
            .org 0xD0000000
            start:
                li r1, 100
            loop:
                addi r1, r1, -1
                bne r1, r0, loop
                halt
            ",
        )
        .unwrap();
        let run = |ws: u32| {
            let mut soc = SocBuilder::new()
                .core(CoreConfig {
                    reset_pc: memmap::SRAM_BASE,
                    clock_div: 1,
                    ..Default::default()
                })
                .sram_wait_states(ws)
                .build();
            soc.load_program(&prog);
            soc.run_until_halt(100_000);
            assert!(soc.core(CoreId(0)).is_halted());
            soc.cycle()
        };
        let fast = run(0);
        let slow = run(3);
        assert!(slow > fast, "wait states cost cycles ({slow} > {fast})");
    }

    #[test]
    fn round_robin_bus_shares_bandwidth_more_evenly() {
        // Two cores hammering the same SRAM: with fixed priority core 0
        // retires noticeably more; round-robin narrows the gap.
        let prog = assemble(
            "
            .org 0x80000000
            start:
                li r2, 0xD0000000
            loop:
                lw r1, 0(r2)
                j loop
            ",
        )
        .unwrap();
        let run = |rr: bool| {
            let mut b = SocBuilder::new().cores(2).flash_wait_states(0);
            if rr {
                b = b.round_robin_bus();
            }
            let mut soc = b.build();
            soc.load_program(&prog);
            soc.run_cycles(20_000);
            let a = soc.core(CoreId(0)).retired() as f64;
            let c = soc.core(CoreId(1)).retired() as f64;
            a / c
        };
        let priority_ratio = run(false);
        let rr_ratio = run(true);
        assert!(
            (rr_ratio - 1.0).abs() <= (priority_ratio - 1.0).abs() + 1e-9,
            "round robin is at least as fair: priority {priority_ratio:.3}, rr {rr_ratio:.3}"
        );
    }

    #[test]
    fn output_history_cap_applies() {
        let prog = assemble(
            "
            .equ OUT0, 0xF0000100
            .org 0x80000000
            start:
                li r2, OUT0
            loop:
                sw r1, 0(r2)
                addi r1, r1, 1
                j loop
            ",
        )
        .unwrap();
        let mut soc = SocBuilder::new().cores(1).output_history_cap(10).build();
        soc.load_program(&prog);
        soc.run_cycles(50_000);
        assert_eq!(soc.periph().output_history(0).len(), 10);
        // Newest writes are retained.
        let h = soc.periph().output_history(0);
        assert!(h[0].value < h[9].value);
    }

    #[test]
    fn extension_target_is_addressable() {
        use crate::mem::Sram;
        let mut soc = SocBuilder::new()
            .cores(1)
            .extension(
                AddrRange::new(0xA000_0000, 0x100),
                Box::new(Sram::new(0x100, 0).with_base(0xA000_0000)),
            )
            .build();
        soc.load_program(&assemble(".org 0x80000000\nhalt").unwrap());
        soc.run_until_halt(100);
        soc.debug_write(0xA000_0010, MemWidth::Word, 0xBEEF)
            .unwrap();
        let (v, _) = soc.debug_read(0xA000_0010, MemWidth::Word).unwrap();
        assert_eq!(v, 0xBEEF);
    }

    #[test]
    fn small_emulation_ram_maps_reduced_window() {
        let soc = SocBuilder::new()
            .cores(1)
            .with_emulation_ram_segments(1)
            .build();
        assert_eq!(soc.mapper().emem().unwrap().size(), 64 * 1024);
        // Backdoor access inside the window works…
        let mut soc = soc;
        soc.backdoor_write(memmap::EMEM_BASE + 100, &[7]);
        assert_eq!(soc.backdoor_read(memmap::EMEM_BASE + 100, 1), vec![7]);
    }

    #[test]
    #[should_panic(expected = "at most 8")]
    fn too_many_emem_segments_rejected() {
        let _ = SocBuilder::new()
            .cores(1)
            .with_emulation_ram_segments(9)
            .build();
    }
}

#[cfg(test)]
mod dma_tests {
    use super::*;
    use crate::asm::assemble;
    use crate::event::CoreId;

    /// A program that commands the DMA to copy 64 bytes from flash to SRAM
    /// and polls until done.
    fn dma_program(src: u32, dst: u32, len: u32) -> crate::asm::Program {
        assemble(&format!(
            "
            .equ DMA_SRC,  0xF0000400
            .equ DMA_DST,  0xF0000404
            .equ DMA_LEN,  0xF0000408
            .equ DMA_CTRL, 0xF000040C
            .org 0x80000000
            start:
                li r10, DMA_SRC
                li r1, {src:#x}
                sw r1, 0(r10)
                li r1, {dst:#x}
                sw r1, 4(r10)
                li r1, {len}
                sw r1, 8(r10)
                li r1, 1
                sw r1, 12(r10)
            poll:
                lw r2, 12(r10)
                andi r2, r2, 1
                bne r2, r0, poll
                halt
            "
        ))
        .unwrap()
    }

    #[test]
    fn dma_copies_flash_to_sram_while_core_polls() {
        let mut soc = SocBuilder::new().cores(1).with_dma().build();
        let pattern: Vec<u8> = (0..64u8).collect();
        soc.backdoor_write(memmap::FLASH_BASE + 0x1000, &pattern);
        soc.load_program(&dma_program(
            memmap::FLASH_BASE + 0x1000,
            memmap::SRAM_BASE + 0x200,
            64,
        ));
        soc.run_until_halt(50_000);
        assert!(soc.core(CoreId(0)).is_halted());
        assert_eq!(soc.backdoor_read(memmap::SRAM_BASE + 0x200, 64), pattern);
        assert!(!soc.periph().dma_busy());
        assert!(!soc.periph().dma_error());
    }

    #[test]
    fn dma_fault_sets_error_flag() {
        let mut soc = SocBuilder::new().cores(1).with_dma().build();
        // Destination in flash: the write is denied mid-transfer.
        soc.load_program(&dma_program(
            memmap::SRAM_BASE,
            memmap::FLASH_BASE + 0x10_0000,
            16,
        ));
        soc.run_until_halt(50_000);
        assert!(soc.core(CoreId(0)).is_halted());
        assert!(soc.periph().dma_error(), "fault reported in DMA_CTRL");
    }

    #[test]
    fn dma_transactions_carry_their_own_master_id() {
        let mut soc = SocBuilder::new().cores(1).with_dma().build();
        let dma_master = soc.dma_master().expect("dma fitted");
        soc.backdoor_write(memmap::FLASH_BASE + 0x2000, &[7u8; 32]);
        soc.load_program(&dma_program(
            memmap::FLASH_BASE + 0x2000,
            memmap::SRAM_BASE + 0x300,
            32,
        ));
        let mut dma_xacts = 0;
        for _ in 0..50_000u64 {
            let rec = soc.step();
            for e in &rec.events {
                if let SocEvent::Bus(x) = e {
                    if x.master == dma_master {
                        dma_xacts += 1;
                    }
                }
            }
            if soc.core(CoreId(0)).is_halted() {
                break;
            }
        }
        // 8 words: 8 reads + 8 writes on the bus, all attributable.
        assert_eq!(dma_xacts, 16, "system-centric trace sees the DMA master");
    }

    #[test]
    fn dma_contends_for_the_bus_with_cores() {
        // A memory-hammering core slows the DMA down (fixed priority:
        // cores beat the DMA).
        let run = |hammer: bool| {
            let mut soc = SocBuilder::new().cores(1).with_dma().build();
            soc.backdoor_write(memmap::FLASH_BASE + 0x3000, &[1u8; 512]);
            // Start the DMA from the debug master, with the core either
            // halted or hammering SRAM.
            let program = if hammer {
                assemble(".org 0x80000000\nli r2, 0xD0010000\nloop: lw r1, 0(r2)\nj loop").unwrap()
            } else {
                assemble(".org 0x80000000\nhalt").unwrap()
            };
            soc.load_program(&program);
            soc.run_cycles(100);
            for (off, v) in [
                (0x400u32, memmap::FLASH_BASE + 0x3000),
                (0x404, memmap::SRAM_BASE + 0x400),
                (0x408, 512),
                (0x40C, 1),
            ] {
                soc.debug_write(memmap::PERIPH_BASE + off, MemWidth::Word, v)
                    .unwrap();
            }
            let start = soc.cycle();
            for _ in 0..1_000_000u64 {
                soc.step();
                if !soc.periph().dma_busy() {
                    break;
                }
            }
            soc.cycle() - start
        };
        let idle = run(false);
        let contended = run(true);
        assert!(
            contended > idle + idle / 4,
            "bus contention slows DMA: idle {idle}, contended {contended}"
        );
    }
}
