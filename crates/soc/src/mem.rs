//! Memory models: program flash, SRAM and the PSI emulation RAM.
//!
//! All three are byte arrays behind the [`BusTarget`] trait, differing in
//! wait states and write policy:
//!
//! * [`Flash`] — the 2 MB program flash. Slow (configurable read wait
//!   states), refuses bus writes; reprogramming happens out-of-band through
//!   [`Flash::program`] and is *charged time* by the host tooling (flash
//!   reprogramming cost is one half of the T3 experiment).
//! * [`Sram`] — on-chip RAM, usually zero wait states.
//! * [`EmulationRam`] — the 512 KB PSI emulation memory, segmented into
//!   64 KB blocks usable as calibration overlay or trace storage, with a
//!   separate power domain (Section 6: "a separate power connection for the
//!   emulation memory").

use crate::bus::{Addr, BusFault, BusTarget, XferKind};
use crate::isa::MemWidth;

fn read_bytes(data: &[u8], offset: usize, width: MemWidth) -> u32 {
    match width {
        MemWidth::Byte => data[offset] as u32,
        MemWidth::Half => u16::from_le_bytes([data[offset], data[offset + 1]]) as u32,
        MemWidth::Word => u32::from_le_bytes([
            data[offset],
            data[offset + 1],
            data[offset + 2],
            data[offset + 3],
        ]),
    }
}

fn write_bytes(data: &mut [u8], offset: usize, width: MemWidth, value: u32) {
    match width {
        MemWidth::Byte => data[offset] = value as u8,
        MemWidth::Half => data[offset..offset + 2].copy_from_slice(&(value as u16).to_le_bytes()),
        MemWidth::Word => data[offset..offset + 4].copy_from_slice(&value.to_le_bytes()),
    }
}

/// Zero-wait-state (or configurably slower) on-chip RAM.
#[derive(Debug, Clone)]
pub struct Sram {
    data: Vec<u8>,
    base_offset: Addr,
    wait_states: u32,
}

impl Sram {
    /// Creates a RAM of `size` bytes with the given wait states per access.
    pub fn new(size: u32, wait_states: u32) -> Sram {
        Sram {
            data: vec![0; size as usize],
            base_offset: 0,
            wait_states,
        }
    }

    /// Sets the bus base address so incoming absolute addresses can be
    /// translated to array offsets.
    pub fn with_base(mut self, base: Addr) -> Sram {
        self.base_offset = base;
        self
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.data.len() as u32
    }

    /// Backdoor view of the contents (no bus timing).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Backdoor mutable view of the contents (no bus timing).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    fn offset(&self, addr: Addr, width: MemWidth) -> Result<usize, BusFault> {
        let off = addr.wrapping_sub(self.base_offset) as usize;
        if off + width.bytes() as usize <= self.data.len() {
            Ok(off)
        } else {
            Err(BusFault::Denied { addr })
        }
    }
}

impl BusTarget for Sram {
    fn access_cycles(&self, _addr: Addr, _kind: XferKind) -> u32 {
        1 + self.wait_states
    }

    fn read(&mut self, addr: Addr, width: MemWidth, _now: u64) -> Result<u32, BusFault> {
        let off = self.offset(addr, width)?;
        Ok(read_bytes(&self.data, off, width))
    }

    fn write(
        &mut self,
        addr: Addr,
        width: MemWidth,
        value: u32,
        _now: u64,
    ) -> Result<(), BusFault> {
        let off = self.offset(addr, width)?;
        write_bytes(&mut self.data, off, width, value);
        Ok(())
    }
}

/// The program flash: slow reads, no bus writes.
///
/// Bus writes return [`BusFault::Denied`]; programming is only possible
/// through the backdoor [`Flash::program`], which the host tooling wraps
/// with erase/program timing (see `mcds-host`).
#[derive(Debug, Clone)]
pub struct Flash {
    data: Vec<u8>,
    base_offset: Addr,
    read_wait_states: u32,
}

impl Flash {
    /// Creates a flash of `size` bytes, erased to `0xFF`, with
    /// `read_wait_states` wait states per read.
    pub fn new(size: u32, read_wait_states: u32) -> Flash {
        Flash {
            data: vec![0xFF; size as usize],
            base_offset: 0,
            read_wait_states,
        }
    }

    /// Sets the bus base address.
    pub fn with_base(mut self, base: Addr) -> Flash {
        self.base_offset = base;
        self
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.data.len() as u32
    }

    /// Read wait states per access.
    pub fn read_wait_states(&self) -> u32 {
        self.read_wait_states
    }

    /// Backdoor programming: writes `bytes` at flash-relative `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the write runs past the end of the array.
    pub fn program(&mut self, offset: u32, bytes: &[u8]) {
        let off = offset as usize;
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
    }

    /// Backdoor erase: resets `len` bytes at `offset` to `0xFF`.
    ///
    /// # Panics
    ///
    /// Panics if the range runs past the end of the array.
    pub fn erase(&mut self, offset: u32, len: u32) {
        let off = offset as usize;
        self.data[off..off + len as usize].fill(0xFF);
    }

    /// Backdoor view of the contents.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    fn offset(&self, addr: Addr, width: MemWidth) -> Result<usize, BusFault> {
        let off = addr.wrapping_sub(self.base_offset) as usize;
        if off + width.bytes() as usize <= self.data.len() {
            Ok(off)
        } else {
            Err(BusFault::Denied { addr })
        }
    }
}

impl BusTarget for Flash {
    fn access_cycles(&self, _addr: Addr, _kind: XferKind) -> u32 {
        1 + self.read_wait_states
    }

    fn read(&mut self, addr: Addr, width: MemWidth, _now: u64) -> Result<u32, BusFault> {
        let off = self.offset(addr, width)?;
        Ok(read_bytes(&self.data, off, width))
    }

    fn write(
        &mut self,
        addr: Addr,
        _width: MemWidth,
        _value: u32,
        _now: u64,
    ) -> Result<(), BusFault> {
        Err(BusFault::Denied { addr })
    }
}

/// Role of one 64 KB emulation-RAM segment (Section 7: "The emulation RAM is
/// segmented into 64 kByte blocks for use as either overlay or trace
/// memory").
#[derive(
    serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Hash, Default,
)]
pub enum SegmentRole {
    /// Not assigned; bus accesses are denied.
    #[default]
    Off,
    /// Calibration / program overlay memory: normal RAM semantics.
    Overlay,
    /// Trace memory: written by the MCDS trace sink, read-only from the bus.
    Trace,
}

/// The PSI emulation RAM: 512 KB in eight 64 KB segments.
#[derive(Debug, Clone)]
pub struct EmulationRam {
    data: Vec<u8>,
    base_offset: Addr,
    roles: Vec<SegmentRole>,
    powered: bool,
    wait_states: u32,
}

/// Size of one emulation-RAM segment (64 KB).
pub const EMEM_SEGMENT_SIZE: u32 = 64 * 1024;

impl EmulationRam {
    /// Creates an emulation RAM of `segments` × 64 KB, powered on, with all
    /// segments off.
    pub fn new(segments: usize) -> EmulationRam {
        EmulationRam {
            data: vec![0; segments * EMEM_SEGMENT_SIZE as usize],
            base_offset: 0,
            roles: vec![SegmentRole::Off; segments],
            powered: true,
            wait_states: 0,
        }
    }

    /// Sets the bus base address.
    pub fn with_base(mut self, base: Addr) -> EmulationRam {
        self.base_offset = base;
        self
    }

    /// Sets the raw (non-overlay) access wait states.
    pub fn with_wait_states(mut self, wait_states: u32) -> EmulationRam {
        self.wait_states = wait_states;
        self
    }

    /// Total size in bytes.
    pub fn size(&self) -> u32 {
        self.data.len() as u32
    }

    /// Number of 64 KB segments.
    pub fn segment_count(&self) -> usize {
        self.roles.len()
    }

    /// Role of segment `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn segment_role(&self, idx: usize) -> SegmentRole {
        self.roles[idx]
    }

    /// Assigns a role to segment `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_segment_role(&mut self, idx: usize, role: SegmentRole) {
        self.roles[idx] = role;
    }

    /// Powers the RAM on or off. The separate power domain lets the debug
    /// processor cold-boot from emulation memory (Section 6).
    pub fn set_powered(&mut self, on: bool) {
        self.powered = on;
    }

    /// True if the RAM is powered.
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Backdoor read (used by the trace read-out path and tests).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Backdoor write (used by the MCDS trace sink and host program load).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    fn check(&self, addr: Addr, width: MemWidth, write: bool) -> Result<usize, BusFault> {
        if !self.powered {
            return Err(BusFault::Denied { addr });
        }
        let off = addr.wrapping_sub(self.base_offset) as usize;
        if off + width.bytes() as usize > self.data.len() {
            return Err(BusFault::Denied { addr });
        }
        let seg = off / EMEM_SEGMENT_SIZE as usize;
        match self.roles[seg] {
            SegmentRole::Off => Err(BusFault::Denied { addr }),
            SegmentRole::Overlay => Ok(off),
            SegmentRole::Trace => {
                if write {
                    Err(BusFault::Denied { addr })
                } else {
                    Ok(off)
                }
            }
        }
    }
}

impl BusTarget for EmulationRam {
    fn access_cycles(&self, _addr: Addr, _kind: XferKind) -> u32 {
        1 + self.wait_states
    }

    fn read(&mut self, addr: Addr, width: MemWidth, _now: u64) -> Result<u32, BusFault> {
        let off = self.check(addr, width, false)?;
        Ok(read_bytes(&self.data, off, width))
    }

    fn write(
        &mut self,
        addr: Addr,
        width: MemWidth,
        value: u32,
        _now: u64,
    ) -> Result<(), BusFault> {
        let off = self.check(addr, width, true)?;
        write_bytes(&mut self.data, off, width, value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_widths_roundtrip() {
        let mut s = Sram::new(64, 0);
        s.write(8, MemWidth::Word, 0x1122_3344, 0).unwrap();
        assert_eq!(s.read(8, MemWidth::Word, 0).unwrap(), 0x1122_3344);
        assert_eq!(s.read(8, MemWidth::Byte, 0).unwrap(), 0x44, "little endian");
        assert_eq!(s.read(10, MemWidth::Half, 0).unwrap(), 0x1122);
        s.write(12, MemWidth::Byte, 0xAB, 0).unwrap();
        assert_eq!(s.read(12, MemWidth::Byte, 0).unwrap(), 0xAB);
    }

    #[test]
    fn sram_out_of_range_denied() {
        let mut s = Sram::new(64, 0).with_base(0x100);
        assert!(s.read(0x100 + 61, MemWidth::Word, 0).is_err());
        assert!(s.read(0x100, MemWidth::Word, 0).is_ok());
        assert!(
            s.read(0xFC, MemWidth::Word, 0).is_err(),
            "below base wraps to huge offset"
        );
    }

    #[test]
    fn flash_rejects_bus_writes_but_programs_backdoor() {
        let mut f = Flash::new(1024, 3);
        assert!(f.write(0, MemWidth::Word, 1, 0).is_err());
        f.program(4, &[0x78, 0x56, 0x34, 0x12]);
        assert_eq!(f.read(4, MemWidth::Word, 0).unwrap(), 0x1234_5678);
        assert_eq!(f.access_cycles(0, XferKind::Fetch), 4, "1 + 3 wait states");
        f.erase(4, 4);
        assert_eq!(f.read(4, MemWidth::Word, 0).unwrap(), 0xFFFF_FFFF);
    }

    #[test]
    fn emem_segment_roles_enforced() {
        let mut e = EmulationRam::new(8);
        assert_eq!(e.size(), 512 * 1024);
        // All segments off: denied.
        assert!(e.read(0, MemWidth::Word, 0).is_err());
        e.set_segment_role(0, SegmentRole::Overlay);
        e.write(16, MemWidth::Word, 7, 0).unwrap();
        assert_eq!(e.read(16, MemWidth::Word, 0).unwrap(), 7);
        // Trace segment: bus read-only.
        e.set_segment_role(1, SegmentRole::Trace);
        let trace_addr = EMEM_SEGMENT_SIZE;
        assert!(e.write(trace_addr, MemWidth::Word, 1, 0).is_err());
        assert!(e.read(trace_addr, MemWidth::Word, 0).is_ok());
    }

    #[test]
    fn emem_power_domain() {
        let mut e = EmulationRam::new(1);
        e.set_segment_role(0, SegmentRole::Overlay);
        e.write(0, MemWidth::Word, 42, 0).unwrap();
        e.set_powered(false);
        assert!(e.read(0, MemWidth::Word, 0).is_err());
        e.set_powered(true);
        assert_eq!(
            e.read(0, MemWidth::Word, 0).unwrap(),
            42,
            "contents retained"
        );
    }
}
