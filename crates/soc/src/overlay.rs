//! The address-mapping (calibration overlay) block.
//!
//! Section 7 of the paper: *"An address-mapping block resides on the
//! production chip. It allows memory access redirection for up to 16 address
//! ranges, with individual block sizes from 1 kByte to 32 kBytes of the
//! overlay Emulation RAM. The access timing matches the flash memory being
//! overlaid, ensuring consistent behavior. The overlay memory is divided
//! into two pages that can be swapped atomically by a single control
//! access."*
//!
//! [`OverlayMapper`] models exactly that: it fronts the program flash, the
//! emulation RAM window and its own control-register window on the bus. A
//! flash access falling inside an enabled redirection range is served from
//! the emulation RAM at the active page's offset — with *flash* timing, so
//! the application cannot tell calibration RAM from flash. On a production
//! device (no emulation RAM fitted) the block is present but any enabled
//! redirection faults, which is how interchangeability is kept honest.

use crate::bus::{Addr, AddrRange, BusFault, BusTarget, XferKind};
use crate::isa::MemWidth;
use crate::mem::{EmulationRam, Flash};

/// Number of independent redirection ranges (paper: "up to 16 address
/// ranges").
pub const OVERLAY_RANGE_COUNT: usize = 16;

/// Smallest redirection block (1 KB).
pub const OVERLAY_MIN_BLOCK: u32 = 1024;

/// Largest redirection block (32 KB).
pub const OVERLAY_MAX_BLOCK: u32 = 32 * 1024;

/// Identifier of one of the two calibration pages.
#[derive(
    serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Hash, Default,
)]
pub enum CalPage {
    /// Page 0 (reset default).
    #[default]
    Page0,
    /// Page 1.
    Page1,
}

impl CalPage {
    /// The other page.
    pub fn other(self) -> CalPage {
        match self {
            CalPage::Page0 => CalPage::Page1,
            CalPage::Page1 => CalPage::Page0,
        }
    }

    /// Register encoding (0 or 1).
    pub fn bit(self) -> u32 {
        match self {
            CalPage::Page0 => 0,
            CalPage::Page1 => 1,
        }
    }

    /// Decodes from the low bit of a register value.
    pub fn from_bit(v: u32) -> CalPage {
        if v & 1 == 0 {
            CalPage::Page0
        } else {
            CalPage::Page1
        }
    }
}

/// One redirection range: a flash window and its per-page emulation-RAM
/// offsets.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverlayRange {
    /// Absolute flash address of the window start.
    pub flash_addr: Addr,
    /// Window size in bytes (power of two, 1 KB – 32 KB).
    pub size: u32,
    /// Emulation-RAM byte offset backing page 0.
    pub offset_page0: u32,
    /// Emulation-RAM byte offset backing page 1.
    pub offset_page1: u32,
}

impl OverlayRange {
    fn offset_for(&self, page: CalPage) -> u32 {
        match page {
            CalPage::Page0 => self.offset_page0,
            CalPage::Page1 => self.offset_page1,
        }
    }
}

/// Error raised when configuring an invalid overlay range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigOverlayError {
    /// Range index ≥ [`OVERLAY_RANGE_COUNT`].
    #[allow(missing_docs)]
    BadIndex { index: usize },
    /// Size is not a power of two between 1 KB and 32 KB.
    #[allow(missing_docs)]
    BadSize { size: u32 },
    /// The flash window is not aligned to its size or lies outside flash.
    #[allow(missing_docs)]
    BadWindow { flash_addr: Addr, size: u32 },
    /// An emulation-RAM offset is unaligned or the backing block would run
    /// past the end of the emulation RAM.
    #[allow(missing_docs)]
    BadOffset { offset: u32 },
}

impl std::fmt::Display for ConfigOverlayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ConfigOverlayError::BadIndex { index } => {
                write!(f, "overlay range index {index} out of range")
            }
            ConfigOverlayError::BadSize { size } => {
                write!(
                    f,
                    "overlay block size {size} not a power of two in 1 KB..=32 KB"
                )
            }
            ConfigOverlayError::BadWindow { flash_addr, size } => {
                write!(
                    f,
                    "overlay window {flash_addr:#010x}+{size:#x} unaligned or outside flash"
                )
            }
            ConfigOverlayError::BadOffset { offset } => {
                write!(f, "overlay emulation-RAM offset {offset:#x} invalid")
            }
        }
    }
}

impl std::error::Error for ConfigOverlayError {}

/// Serializable runtime state of an [`OverlayMapper`]: range configuration,
/// enables, active calibration page and instrumentation counters. The bus
/// windows and the fronted memories (flash / emulation-RAM contents) are
/// *not* included — memories are snapshotted separately as raw byte images.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct OverlayState {
    ranges: Vec<OverlayRange>,
    valid: u16,
    enabled: u16,
    page: CalPage,
    timing_match: bool,
    swap_count: u64,
}

/// The address-mapping block plus the memories it fronts.
///
/// Bus-visible windows (all routed to this one target):
///
/// * the flash window (redirection applies here),
/// * the emulation-RAM window (direct access, e.g. trace read-out or
///   calibration writes to the inactive page),
/// * the control-register window (page select, enables, per-range setup).
///
/// # Control registers (word access, offsets from the control base)
///
/// | Offset | Register | Meaning |
/// |--------|----------|---------|
/// | `0x00` | `PAGE`   | bit 0: active calibration page; a single write swaps all ranges atomically |
/// | `0x04` | `ENABLE` | bits 15:0: per-range enable |
/// | `0x08` | `TIMING` | bit 0: 1 = redirected accesses use flash timing (reset default), 0 = raw emulation-RAM timing (ablation) |
/// | `0x10 + i*0x10` | `FADDR[i]`  | flash window start |
/// | `0x14 + i*0x10` | `SIZE[i]`   | window size in bytes |
/// | `0x18 + i*0x10` | `OFF0[i]`   | emulation-RAM offset, page 0 |
/// | `0x1C + i*0x10` | `OFF1[i]`   | emulation-RAM offset, page 1 |
#[derive(Debug)]
pub struct OverlayMapper {
    flash: Flash,
    emem: Option<EmulationRam>,
    flash_range: AddrRange,
    emem_range: AddrRange,
    ctrl_range: AddrRange,
    ranges: [OverlayRange; OVERLAY_RANGE_COUNT],
    valid: u16,
    enabled: u16,
    page: CalPage,
    timing_match: bool,
    /// Count of atomic page swaps performed (experiment instrumentation).
    swap_count: u64,
}

impl OverlayMapper {
    /// Creates the mapper fronting `flash` (mapped at `flash_base`) and an
    /// optional emulation RAM (mapped at `emem_base`), with control
    /// registers at `ctrl_base`.
    pub fn new(
        flash: Flash,
        flash_base: Addr,
        emem: Option<EmulationRam>,
        emem_base: Addr,
        ctrl_base: Addr,
    ) -> OverlayMapper {
        let flash_range = AddrRange::new(flash_base, flash.size());
        let emem = emem.map(|e| e.with_base(emem_base));
        let emem_size = emem.as_ref().map(|e| e.size()).unwrap_or(4);
        OverlayMapper {
            flash,
            emem,
            flash_range,
            emem_range: AddrRange::new(emem_base, emem_size),
            ctrl_range: AddrRange::new(ctrl_base, 0x10 + 0x10 * OVERLAY_RANGE_COUNT as u32),
            ranges: [OverlayRange::default(); OVERLAY_RANGE_COUNT],
            valid: 0,
            enabled: 0,
            page: CalPage::Page0,
            timing_match: true,
            swap_count: 0,
        }
    }

    /// The flash bus window.
    pub fn flash_window(&self) -> AddrRange {
        self.flash_range
    }

    /// The emulation-RAM bus window.
    pub fn emem_window(&self) -> AddrRange {
        self.emem_range
    }

    /// The control-register bus window.
    pub fn ctrl_window(&self) -> AddrRange {
        self.ctrl_range
    }

    /// The fronted flash (backdoor).
    pub fn flash(&self) -> &Flash {
        &self.flash
    }

    /// Mutable backdoor to the fronted flash (program loading, host
    /// reprogramming).
    pub fn flash_mut(&mut self) -> &mut Flash {
        &mut self.flash
    }

    /// The emulation RAM, if this device has one fitted.
    pub fn emem(&self) -> Option<&EmulationRam> {
        self.emem.as_ref()
    }

    /// Mutable backdoor to the emulation RAM (trace sink, segment roles).
    pub fn emem_mut(&mut self) -> Option<&mut EmulationRam> {
        self.emem.as_mut()
    }

    /// The active calibration page.
    pub fn active_page(&self) -> CalPage {
        self.page
    }

    /// Number of atomic page swaps performed so far.
    pub fn swap_count(&self) -> u64 {
        self.swap_count
    }

    /// True if redirected accesses use flash timing (the paper's behaviour).
    pub fn timing_match(&self) -> bool {
        self.timing_match
    }

    /// Enables or disables flash-timing matching for redirected accesses
    /// (the T1 ablation knob).
    pub fn set_timing_match(&mut self, on: bool) {
        self.timing_match = on;
    }

    /// Captures the mapper's runtime state (see [`OverlayState`]). Memory
    /// contents are captured separately via [`OverlayMapper::flash`] /
    /// [`OverlayMapper::emem`].
    pub fn save_state(&self) -> OverlayState {
        OverlayState {
            ranges: self.ranges.to_vec(),
            valid: self.valid,
            enabled: self.enabled,
            page: self.page,
            timing_match: self.timing_match,
            swap_count: self.swap_count,
        }
    }

    /// Restores state captured by [`OverlayMapper::save_state`]. Fields are
    /// assigned directly (no swap-count bump, no validation re-run).
    ///
    /// # Panics
    ///
    /// Panics if the saved range table length differs from
    /// [`OVERLAY_RANGE_COUNT`].
    pub fn restore_state(&mut self, state: &OverlayState) {
        assert_eq!(
            state.ranges.len(),
            OVERLAY_RANGE_COUNT,
            "overlay range table length mismatch on restore"
        );
        self.ranges.copy_from_slice(&state.ranges);
        self.valid = state.valid;
        self.enabled = state.enabled;
        self.page = state.page;
        self.timing_match = state.timing_match;
        self.swap_count = state.swap_count;
    }

    /// Selects the active calibration page for *all* ranges at once. This is
    /// the atomic swap: it takes effect between two bus transactions, never
    /// within one.
    pub fn set_active_page(&mut self, page: CalPage) {
        if page != self.page {
            self.swap_count += 1;
        }
        self.page = page;
    }

    /// Configures redirection range `index`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigOverlayError`] if the index, size, alignment or
    /// emulation-RAM offsets are invalid. Ranges may only be configured
    /// while disabled.
    pub fn configure_range(
        &mut self,
        index: usize,
        range: OverlayRange,
    ) -> Result<(), ConfigOverlayError> {
        if index >= OVERLAY_RANGE_COUNT {
            return Err(ConfigOverlayError::BadIndex { index });
        }
        self.valid &= !(1 << index);
        if !range.size.is_power_of_two()
            || !(OVERLAY_MIN_BLOCK..=OVERLAY_MAX_BLOCK).contains(&range.size)
        {
            return Err(ConfigOverlayError::BadSize { size: range.size });
        }
        if !range.flash_addr.is_multiple_of(range.size)
            || !self.flash_range.contains(range.flash_addr)
            || range
                .flash_addr
                .checked_add(range.size)
                .is_none_or(|end| end > self.flash_range.end)
        {
            return Err(ConfigOverlayError::BadWindow {
                flash_addr: range.flash_addr,
                size: range.size,
            });
        }
        let emem_size = self.emem.as_ref().map(|e| e.size()).unwrap_or(0);
        for off in [range.offset_page0, range.offset_page1] {
            if off % 4 != 0
                || off
                    .checked_add(range.size)
                    .is_none_or(|end| end > emem_size)
            {
                return Err(ConfigOverlayError::BadOffset { offset: off });
            }
        }
        self.ranges[index] = range;
        self.valid |= 1 << index;
        Ok(())
    }

    /// Returns the configuration of range `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= OVERLAY_RANGE_COUNT`.
    pub fn range(&self, index: usize) -> OverlayRange {
        self.ranges[index]
    }

    /// Enables or disables redirection range `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= OVERLAY_RANGE_COUNT`.
    pub fn set_range_enabled(&mut self, index: usize, on: bool) {
        assert!(index < OVERLAY_RANGE_COUNT);
        if on {
            self.enabled |= 1 << index;
        } else {
            self.enabled &= !(1 << index);
        }
    }

    /// True if range `index` is enabled.
    pub fn range_enabled(&self, index: usize) -> bool {
        self.enabled & (1 << index) != 0
    }

    /// Resolves a flash-window address to its redirect target, if any:
    /// returns the emulation-RAM byte offset serving the access on the
    /// *active* page.
    pub fn redirect_of(&self, addr: Addr) -> Option<u32> {
        self.redirect_on_page(addr, self.page)
    }

    /// Resolves a flash-window address to the emulation-RAM offset it would
    /// use on `page`.
    pub fn redirect_on_page(&self, addr: Addr, page: CalPage) -> Option<u32> {
        for i in 0..OVERLAY_RANGE_COUNT {
            if self.enabled & self.valid & (1 << i) == 0 {
                continue;
            }
            let r = &self.ranges[i];
            if addr >= r.flash_addr && addr - r.flash_addr < r.size {
                return Some(r.offset_for(page) + (addr - r.flash_addr));
            }
        }
        None
    }

    fn ctrl_read(&self, off: u32) -> Result<u32, BusFault> {
        Ok(match off {
            0x00 => self.page.bit(),
            0x04 => self.enabled as u32,
            0x08 => self.timing_match as u32,
            o if o >= 0x10 => {
                let i = ((o - 0x10) / 0x10) as usize;
                if i >= OVERLAY_RANGE_COUNT {
                    return Err(BusFault::Denied {
                        addr: self.ctrl_range.start + off,
                    });
                }
                let r = &self.ranges[i];
                match (o - 0x10) % 0x10 {
                    0x0 => r.flash_addr,
                    0x4 => r.size,
                    0x8 => r.offset_page0,
                    _ => r.offset_page1,
                }
            }
            _ => {
                return Err(BusFault::Denied {
                    addr: self.ctrl_range.start + off,
                })
            }
        })
    }

    fn ctrl_write(&mut self, off: u32, value: u32) -> Result<(), BusFault> {
        let addr = self.ctrl_range.start + off;
        match off {
            0x00 => {
                self.set_active_page(CalPage::from_bit(value));
                Ok(())
            }
            0x04 => {
                self.enabled = value as u16;
                Ok(())
            }
            0x08 => {
                self.timing_match = value & 1 != 0;
                Ok(())
            }
            o if o >= 0x10 => {
                let i = ((o - 0x10) / 0x10) as usize;
                if i >= OVERLAY_RANGE_COUNT {
                    return Err(BusFault::Denied { addr });
                }
                let mut r = self.ranges[i];
                match (o - 0x10) % 0x10 {
                    0x0 => r.flash_addr = value,
                    0x4 => r.size = value,
                    0x8 => r.offset_page0 = value,
                    _ => r.offset_page1 = value,
                }
                // A partially-written range is stored as-is so multi-register
                // setup sequences work; redirect resolution ignores ranges
                // whose last write left them invalid.
                if self.configure_range(i, r).is_err() {
                    self.ranges[i] = r;
                }
                Ok(())
            }
            _ => Err(BusFault::Denied { addr }),
        }
    }
}

impl BusTarget for OverlayMapper {
    fn access_cycles(&self, addr: Addr, kind: XferKind) -> u32 {
        if self.flash_range.contains(addr) {
            if !self.timing_match {
                if let (Some(_), Some(e)) = (self.redirect_of(addr), self.emem.as_ref()) {
                    return e.access_cycles(addr, kind);
                }
            }
            // Flash timing, whether served by flash or (timing-matched)
            // overlay RAM: "the access timing matches the flash memory
            // being overlaid".
            self.flash.access_cycles(addr, kind)
        } else if self.emem_range.contains(addr) {
            self.emem
                .as_ref()
                .map(|e| e.access_cycles(addr, kind))
                .unwrap_or(1)
        } else {
            1
        }
    }

    fn read(&mut self, addr: Addr, width: MemWidth, now: u64) -> Result<u32, BusFault> {
        if self.flash_range.contains(addr) {
            if let Some(off) = self.redirect_of(addr) {
                let e = self.emem.as_mut().ok_or(BusFault::Denied { addr })?;
                let base = self.emem_range.start;
                return e.read(base + off, width, now);
            }
            self.flash.read(addr - self.flash_range.start, width, now)
        } else if self.emem_range.contains(addr) {
            let e = self.emem.as_mut().ok_or(BusFault::Denied { addr })?;
            e.read(addr, width, now)
        } else if self.ctrl_range.contains(addr) {
            if width != MemWidth::Word {
                return Err(BusFault::Denied { addr });
            }
            self.ctrl_read(addr - self.ctrl_range.start)
        } else {
            Err(BusFault::Unmapped { addr })
        }
    }

    fn write(&mut self, addr: Addr, width: MemWidth, value: u32, now: u64) -> Result<(), BusFault> {
        if self.flash_range.contains(addr) {
            // Writes through an overlaid window patch the calibration RAM;
            // writes to real flash are denied (flash programs out-of-band).
            if let Some(off) = self.redirect_of(addr) {
                let e = self.emem.as_mut().ok_or(BusFault::Denied { addr })?;
                let base = self.emem_range.start;
                return e.write(base + off, width, value, now);
            }
            Err(BusFault::Denied { addr })
        } else if self.emem_range.contains(addr) {
            let e = self.emem.as_mut().ok_or(BusFault::Denied { addr })?;
            e.write(addr, width, value, now)
        } else if self.ctrl_range.contains(addr) {
            if width != MemWidth::Word {
                return Err(BusFault::Denied { addr });
            }
            self.ctrl_write(addr - self.ctrl_range.start, value)
        } else {
            Err(BusFault::Unmapped { addr })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::SegmentRole;

    const FLASH_BASE: Addr = 0x8000_0000;
    const EMEM_BASE: Addr = 0xE000_0000;
    const CTRL_BASE: Addr = 0xF000_0400;

    fn mapper_with_emem() -> OverlayMapper {
        let flash = Flash::new(128 * 1024, 3);
        let mut emem = EmulationRam::new(2).with_base(EMEM_BASE);
        emem.set_segment_role(0, SegmentRole::Overlay);
        emem.set_segment_role(1, SegmentRole::Overlay);
        OverlayMapper::new(flash, FLASH_BASE, Some(emem), EMEM_BASE, CTRL_BASE)
    }

    fn cal_range() -> OverlayRange {
        OverlayRange {
            flash_addr: FLASH_BASE + 0x4000,
            size: 4096,
            offset_page0: 0,
            offset_page1: 0x1000,
        }
    }

    #[test]
    fn redirect_reads_hit_emem() {
        let mut m = mapper_with_emem();
        m.flash_mut().program(0x4000, &[0x11, 0x22, 0x33, 0x44]);
        m.configure_range(0, cal_range()).unwrap();
        // Disabled: flash value visible.
        assert_eq!(
            m.read(FLASH_BASE + 0x4000, MemWidth::Word, 0).unwrap(),
            0x4433_2211
        );
        // Seed page-0 RAM through the direct window and enable.
        m.write(EMEM_BASE, MemWidth::Word, 0xAABB_CCDD, 0).unwrap();
        m.set_range_enabled(0, true);
        assert_eq!(
            m.read(FLASH_BASE + 0x4000, MemWidth::Word, 0).unwrap(),
            0xAABB_CCDD
        );
    }

    #[test]
    fn page_swap_switches_backing_store() {
        let mut m = mapper_with_emem();
        m.configure_range(0, cal_range()).unwrap();
        m.set_range_enabled(0, true);
        m.write(EMEM_BASE, MemWidth::Word, 100, 0).unwrap(); // page 0 backing
        m.write(EMEM_BASE + 0x1000, MemWidth::Word, 200, 0).unwrap(); // page 1 backing
        assert_eq!(m.read(FLASH_BASE + 0x4000, MemWidth::Word, 0).unwrap(), 100);
        // Atomic swap via a single control write.
        m.write(CTRL_BASE, MemWidth::Word, 1, 0).unwrap();
        assert_eq!(m.read(FLASH_BASE + 0x4000, MemWidth::Word, 0).unwrap(), 200);
        assert_eq!(m.active_page(), CalPage::Page1);
        assert_eq!(m.swap_count(), 1);
    }

    #[test]
    fn overlay_timing_matches_flash() {
        let mut m = mapper_with_emem();
        m.configure_range(0, cal_range()).unwrap();
        m.set_range_enabled(0, true);
        let flash_cycles = m.access_cycles(FLASH_BASE + 0x100, XferKind::Read);
        let overlay_cycles = m.access_cycles(FLASH_BASE + 0x4000, XferKind::Read);
        assert_eq!(
            flash_cycles, overlay_cycles,
            "paper: timing matches the flash"
        );
        // Ablation: raw RAM timing is faster.
        m.set_timing_match(false);
        let raw = m.access_cycles(FLASH_BASE + 0x4000, XferKind::Read);
        assert!(raw < overlay_cycles);
    }

    #[test]
    fn writes_through_overlaid_window_patch_ram_not_flash() {
        let mut m = mapper_with_emem();
        m.configure_range(0, cal_range()).unwrap();
        m.set_range_enabled(0, true);
        m.write(FLASH_BASE + 0x4004, MemWidth::Word, 0x55, 0)
            .unwrap();
        assert_eq!(m.read(EMEM_BASE + 4, MemWidth::Word, 0).unwrap(), 0x55);
        // Flash itself untouched (still erased).
        assert_eq!(m.flash().bytes()[0x4004], 0xFF);
        // Outside any overlay, flash writes are denied.
        assert!(m.write(FLASH_BASE, MemWidth::Word, 1, 0).is_err());
    }

    #[test]
    fn production_device_denies_redirect() {
        let flash = Flash::new(128 * 1024, 3);
        let mut m = OverlayMapper::new(flash, FLASH_BASE, None, EMEM_BASE, CTRL_BASE);
        // Configuration is rejected because there is no emulation RAM to
        // back any offset.
        assert!(m.configure_range(0, cal_range()).is_err());
        // Direct emulation-RAM window also faults.
        assert!(m.read(EMEM_BASE, MemWidth::Word, 0).is_err());
    }

    #[test]
    fn range_validation() {
        let mut m = mapper_with_emem();
        let base = cal_range();
        assert!(m.configure_range(16, base).is_err(), "index");
        let mut r = base;
        r.size = 3000;
        assert!(matches!(
            m.configure_range(0, r),
            Err(ConfigOverlayError::BadSize { .. })
        ));
        r = base;
        r.size = 64 * 1024;
        assert!(matches!(
            m.configure_range(0, r),
            Err(ConfigOverlayError::BadSize { .. })
        ));
        r = base;
        r.flash_addr = FLASH_BASE + 0x4100; // unaligned to 4 KB
        assert!(matches!(
            m.configure_range(0, r),
            Err(ConfigOverlayError::BadWindow { .. })
        ));
        r = base;
        r.offset_page1 = 127 * 1024; // runs past 128 KB emem
        assert!(matches!(
            m.configure_range(0, r),
            Err(ConfigOverlayError::BadOffset { .. })
        ));
        assert!(m.configure_range(0, base).is_ok());
    }

    #[test]
    fn sixteen_ranges_resolve_independently() {
        let mut m = mapper_with_emem();
        for i in 0..OVERLAY_RANGE_COUNT {
            let r = OverlayRange {
                flash_addr: FLASH_BASE + (i as u32) * 0x1000,
                size: 1024,
                offset_page0: (i as u32) * 0x400,
                offset_page1: 0x10000 + (i as u32) * 0x400,
            };
            m.configure_range(i, r).unwrap();
            m.set_range_enabled(i, true);
        }
        for i in 0..OVERLAY_RANGE_COUNT {
            let addr = FLASH_BASE + (i as u32) * 0x1000 + 8;
            assert_eq!(m.redirect_of(addr), Some((i as u32) * 0x400 + 8));
            assert_eq!(
                m.redirect_on_page(addr, CalPage::Page1),
                Some(0x10000 + (i as u32) * 0x400 + 8)
            );
        }
        // An address between windows is not redirected.
        assert_eq!(m.redirect_of(FLASH_BASE + 0x0C00), None);
    }

    #[test]
    fn ctrl_register_roundtrip() {
        let mut m = mapper_with_emem();
        let r = cal_range();
        // Program range 0 registers via the bus interface.
        m.write(CTRL_BASE + 0x10, MemWidth::Word, r.flash_addr, 0)
            .unwrap();
        m.write(CTRL_BASE + 0x14, MemWidth::Word, r.size, 0)
            .unwrap();
        m.write(CTRL_BASE + 0x18, MemWidth::Word, r.offset_page0, 0)
            .unwrap();
        m.write(CTRL_BASE + 0x1C, MemWidth::Word, r.offset_page1, 0)
            .unwrap();
        m.write(CTRL_BASE + 0x04, MemWidth::Word, 1, 0).unwrap();
        assert_eq!(
            m.read(CTRL_BASE + 0x10, MemWidth::Word, 0).unwrap(),
            r.flash_addr
        );
        assert_eq!(m.read(CTRL_BASE + 0x04, MemWidth::Word, 0).unwrap(), 1);
        assert!(m.range_enabled(0));
        assert_eq!(m.range(0), r);
        // Non-word control access denied.
        assert!(m.read(CTRL_BASE, MemWidth::Byte, 0).is_err());
    }
}
