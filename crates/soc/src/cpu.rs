//! The TC-RISC core model.
//!
//! A single-issue, in-order core stepped one SoC cycle at a time. Every
//! instruction passes through fetch (a bus transaction, so flash wait states
//! are felt), execute (1 cycle + ALU extras) and, for loads/stores/atomics,
//! a data bus transaction. Each completed instruction produces a
//! [`RetireEvent`] — the observation stream the MCDS adaptation logic taps.
//!
//! Debug semantics follow the paper's break/suspend split:
//!
//! * **Break** ([`Cpu::request_break`]) halts the core at the next
//!   instruction boundary; the core enters a debug-halted state with
//!   registers and PC inspectable.
//! * **Suspend** ([`Cpu::set_suspended`]) gates the core's clock
//!   immediately; an in-flight bus transaction still completes (the bus is
//!   shared) and its response is buffered until the core is released.

use crate::bus::{Bus, BusCompletion, BusRequest, BusTarget, MasterId, XferKind};
use crate::event::{CoreId, MemAccessInfo, RetireEvent, SocEvent, StopCause};
use crate::isa::{Instr, MemWidth, Reg, SpecialReg};

/// Run state of a core.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Executing instructions (unless suspended).
    Running,
    /// Stopped; see the cause.
    Halted(StopCause),
}

#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    FetchIssue,
    FetchWait,
    Exec { instr: Instr, cycles_left: u32 },
    MemWait { instr: Instr },
}

/// Default interrupt vector (an otherwise unremarkable flash address).
pub const DEFAULT_IRQ_VECTOR: u32 = 0x8000_0400;

/// Static configuration of one core.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy)]
pub struct CoreConfig {
    /// Reset program counter.
    pub reset_pc: u32,
    /// Clock divider relative to the SoC clock (1 = full speed). The core
    /// only advances on cycles where `cycle % clock_div == 0`, which is how
    /// heterogeneous core speeds (TriCore vs PCP) are modelled.
    pub clock_div: u32,
    /// Interrupt vector: the pc taken on interrupt entry.
    pub irq_vector: u32,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig {
            reset_pc: 0x8000_0000,
            clock_div: 1,
            irq_vector: DEFAULT_IRQ_VECTOR,
        }
    }
}

/// Serializable runtime state of a [`Cpu`]: registers, pc, pipeline phase
/// and debug/interrupt latches. Identity and configuration (`id`, `master`,
/// [`CoreConfig`]) are *not* included — [`Cpu::restore_state`] requires an
/// identically configured core.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
pub struct CpuState {
    regs: [u32; 16],
    pc: u32,
    state: RunState,
    phase: Phase,
    break_pending: bool,
    suspended: bool,
    step_budget: Option<u64>,
    completion: Option<BusCompletion>,
    retired: u64,
    epc: u32,
    irq_enable: bool,
    irq_line: bool,
}

/// A TC-RISC processor core.
#[derive(Debug)]
pub struct Cpu {
    id: CoreId,
    master: MasterId,
    config: CoreConfig,
    regs: [u32; 16],
    pc: u32,
    state: RunState,
    phase: Phase,
    break_pending: bool,
    suspended: bool,
    step_budget: Option<u64>,
    completion: Option<BusCompletion>,
    retired: u64,
    epc: u32,
    irq_enable: bool,
    irq_line: bool,
}

impl Cpu {
    /// Creates a core with the given identity, bus master slot and config.
    pub fn new(id: CoreId, master: MasterId, config: CoreConfig) -> Cpu {
        Cpu {
            id,
            master,
            config,
            regs: [0; 16],
            pc: config.reset_pc,
            state: RunState::Running,
            phase: Phase::FetchIssue,
            break_pending: false,
            suspended: false,
            step_budget: None,
            completion: None,
            retired: 0,
            epc: 0,
            irq_enable: false,
            irq_line: false,
        }
    }

    /// The core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The core's bus master slot.
    pub fn master(&self) -> MasterId {
        self.master
    }

    /// The core's clock divider.
    pub fn clock_div(&self) -> u32 {
        self.config.clock_div
    }

    /// Current run state.
    pub fn state(&self) -> RunState {
        self.state
    }

    /// True if the core is halted (for any cause).
    pub fn is_halted(&self) -> bool {
        matches!(self.state, RunState::Halted(_))
    }

    /// True if the core's clock is gated by the suspend line.
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter (debugger use; core should be halted).
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
        self.phase = Phase::FetchIssue;
        self.completion = None;
    }

    /// Reads a general register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a general register (writes to `r0` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::ZERO {
            self.regs[r.index()] = value;
        }
    }

    /// Number of instructions retired since reset.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Drives the core's interrupt request line (level-sensitive; taken at
    /// the next instruction boundary while interrupts are enabled).
    pub fn set_irq_line(&mut self, level: bool) {
        self.irq_line = level;
    }

    /// True while the core's software has interrupts enabled.
    pub fn irq_enabled(&self) -> bool {
        self.irq_enable
    }

    /// The exception program counter (the `ERET` return target).
    pub fn epc(&self) -> u32 {
        self.epc
    }

    /// Requests a debug break: the core halts at the next instruction
    /// boundary (this is what the break & suspend switch drives).
    pub fn request_break(&mut self) {
        if !self.is_halted() {
            self.break_pending = true;
        }
    }

    /// Drives the suspend clock-gate line.
    pub fn set_suspended(&mut self, suspended: bool) {
        self.suspended = suspended;
    }

    /// Resumes a halted core.
    pub fn resume(&mut self) {
        self.state = RunState::Running;
        self.break_pending = false;
        self.step_budget = None;
        self.phase = Phase::FetchIssue;
        self.completion = None;
    }

    /// Resumes for exactly `n` instructions, then halts with
    /// [`StopCause::Step`].
    pub fn step_instructions(&mut self, n: u64) {
        self.resume();
        self.step_budget = Some(n);
    }

    /// Resets the core to its reset PC with cleared registers.
    pub fn reset(&mut self) {
        let (id, master, config) = (self.id, self.master, self.config);
        *self = Cpu::new(id, master, config);
    }

    /// Captures the core's complete runtime state (see [`CpuState`]).
    pub fn save_state(&self) -> CpuState {
        CpuState {
            regs: self.regs,
            pc: self.pc,
            state: self.state,
            phase: self.phase,
            break_pending: self.break_pending,
            suspended: self.suspended,
            step_budget: self.step_budget,
            completion: self.completion,
            retired: self.retired,
            epc: self.epc,
            irq_enable: self.irq_enable,
            irq_line: self.irq_line,
        }
    }

    /// Restores state captured by [`Cpu::save_state`]. The core's identity
    /// and configuration are untouched.
    pub fn restore_state(&mut self, state: &CpuState) {
        self.regs = state.regs;
        self.pc = state.pc;
        self.state = state.state;
        self.phase = state.phase;
        self.break_pending = state.break_pending;
        self.suspended = state.suspended;
        self.step_budget = state.step_budget;
        self.completion = state.completion;
        self.retired = state.retired;
        self.epc = state.epc;
        self.irq_enable = state.irq_enable;
        self.irq_line = state.irq_line;
    }

    /// Delivers a bus completion addressed to this core's master slot.
    /// Buffered until the core consumes it on its own clock.
    pub fn deliver(&mut self, completion: BusCompletion) {
        self.completion = Some(completion);
    }

    /// True if the core should be ticked on SoC cycle `cycle` (clock divider
    /// gating only — run state and suspend are checked inside `tick`).
    pub fn clock_enabled(&self, cycle: u64) -> bool {
        // Divider 1 (the overwhelmingly common case) short-circuits the
        // u64 division out of the per-cycle hot path.
        self.config.clock_div <= 1 || cycle.is_multiple_of(self.config.clock_div as u64)
    }

    /// True if the core's next tick would issue a fetch for a fresh
    /// instruction with no debug/irq/step side-entry pending — the batched
    /// block executor's per-core entry precondition. Undivided clocks only:
    /// the block layer fuses whole instructions at one cycle per core
    /// clock, which is only exact when core and SoC clocks coincide.
    pub(crate) fn block_ready(&self) -> bool {
        matches!(self.state, RunState::Running)
            && !self.suspended
            && matches!(self.phase, Phase::FetchIssue)
            && self.completion.is_none()
            && !self.break_pending
            && self.step_budget.is_none()
            && !(self.irq_enable && self.irq_line)
            && self.config.clock_div <= 1
    }

    /// True if the core would vector into its IRQ handler at the next
    /// instruction boundary.
    pub(crate) fn irq_taken_next(&self) -> bool {
        self.irq_enable && self.irq_line
    }

    /// Current level of the interrupt request line (hashed state: the
    /// kernel must keep it in sync with the interrupt controller even
    /// across skipped stretches).
    pub(crate) fn irq_line(&self) -> bool {
        self.irq_line
    }

    /// The earliest SoC cycle at or after `now` at which ticking this core
    /// could change state: `now` for a running undivided core, the next
    /// divider multiple for a divided one, `None` (never) while halted or
    /// suspended.
    pub(crate) fn next_wake(&self, now: u64) -> Option<u64> {
        if self.is_halted() || self.suspended {
            return None;
        }
        let div = u64::from(self.config.clock_div);
        if div <= 1 {
            Some(now)
        } else {
            Some(now.next_multiple_of(div))
        }
    }

    /// Advances the core by one of its clock cycles, pushing any observable
    /// events into `events`. `bus` receives fetch/data requests; `now` is
    /// the SoC cycle used for timestamping.
    pub fn tick<T: BusTarget>(&mut self, bus: &mut Bus<T>, now: u64, events: &mut Vec<SocEvent>) {
        if self.is_halted() || self.suspended {
            return;
        }
        match self.phase {
            Phase::FetchIssue => {
                if self.break_pending {
                    self.halt(StopCause::DebugRequest, events);
                    return;
                }
                if self.irq_enable && self.irq_line {
                    // Interrupt entry: an asynchronous control transfer at
                    // an instruction boundary.
                    self.epc = self.pc;
                    self.irq_enable = false;
                    let from = self.pc;
                    self.pc = self.config.irq_vector;
                    events.push(SocEvent::IrqEntry {
                        core: self.id,
                        from,
                        vector: self.pc,
                    });
                }
                bus.request(
                    self.master,
                    BusRequest {
                        addr: self.pc,
                        width: MemWidth::Word,
                        kind: XferKind::Fetch,
                        wdata: 0,
                    },
                );
                self.phase = Phase::FetchWait;
            }
            Phase::FetchWait => {
                let Some(c) = self.completion.take() else {
                    return;
                };
                if let Some(fault) = c.fault {
                    self.halt(StopCause::BusFault(fault), events);
                    return;
                }
                match Instr::decode(c.rdata) {
                    Err(e) => {
                        self.halt(StopCause::InvalidInstr { word: e.word }, events);
                    }
                    Ok(Instr::Brk) => {
                        self.halt(StopCause::Breakpoint, events);
                    }
                    Ok(Instr::Halt) => {
                        self.halt(StopCause::HaltInstr, events);
                    }
                    Ok(instr) => {
                        let extra = match instr {
                            Instr::Alu { op, .. } | Instr::AluImm { op, .. } => op.extra_cycles(),
                            _ => 0,
                        };
                        self.phase = Phase::Exec {
                            instr,
                            cycles_left: 1 + extra,
                        };
                        // Consume the execute cycle immediately so a plain
                        // ALU op costs exactly one cycle after its fetch
                        // completes.
                        self.tick_exec(bus, now, events);
                    }
                }
            }
            Phase::Exec { .. } => self.tick_exec(bus, now, events),
            Phase::MemWait { instr } => {
                let Some(c) = self.completion.take() else {
                    return;
                };
                if let Some(fault) = c.fault {
                    self.halt(StopCause::BusFault(fault), events);
                    return;
                }
                let access = MemAccessInfo {
                    addr: c.request.addr,
                    width: c.request.width,
                    is_write: c.request.kind.is_write(),
                    value: match c.request.kind {
                        XferKind::Write => c.request.wdata,
                        _ => c.rdata,
                    },
                };
                self.retire(instr, Some(access), events);
            }
        }
    }

    fn tick_exec<T: BusTarget>(&mut self, bus: &mut Bus<T>, _now: u64, events: &mut Vec<SocEvent>) {
        let Phase::Exec { instr, cycles_left } = self.phase else {
            unreachable!("tick_exec outside Exec phase");
        };
        if cycles_left > 1 {
            self.phase = Phase::Exec {
                instr,
                cycles_left: cycles_left - 1,
            };
            return;
        }
        match instr {
            Instr::Load {
                width,
                rd: _,
                rs1,
                imm,
                ..
            } => {
                let addr = self.reg(rs1).wrapping_add(imm as i32 as u32);
                bus.request(
                    self.master,
                    BusRequest {
                        addr,
                        width,
                        kind: XferKind::Read,
                        wdata: 0,
                    },
                );
                self.phase = Phase::MemWait { instr };
            }
            Instr::Store {
                width,
                rs2,
                rs1,
                imm,
            } => {
                let addr = self.reg(rs1).wrapping_add(imm as i32 as u32);
                bus.request(
                    self.master,
                    BusRequest {
                        addr,
                        width,
                        kind: XferKind::Write,
                        wdata: self.reg(rs2),
                    },
                );
                self.phase = Phase::MemWait { instr };
            }
            Instr::Swap { rs1, rs2, .. } => {
                let addr = self.reg(rs1);
                bus.request(
                    self.master,
                    BusRequest {
                        addr,
                        width: MemWidth::Word,
                        kind: XferKind::Atomic,
                        wdata: self.reg(rs2),
                    },
                );
                self.phase = Phase::MemWait { instr };
            }
            _ => self.retire(instr, None, events),
        }
    }

    pub(crate) fn retire(
        &mut self,
        instr: Instr,
        mem: Option<MemAccessInfo>,
        events: &mut Vec<SocEvent>,
    ) {
        let pc = self.pc;
        let mut next_pc = pc.wrapping_add(4);
        let mut taken = None;
        match instr {
            Instr::Alu { op, rd, rs1, rs2 } => {
                let v = op.apply(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                // Logical immediates zero-extend (so `lui`+`ori` composes a
                // full 32-bit constant); arithmetic immediates sign-extend.
                let ext = match op {
                    crate::isa::AluOp::And | crate::isa::AluOp::Or | crate::isa::AluOp::Xor => {
                        imm as u16 as u32
                    }
                    _ => imm as i32 as u32,
                };
                let v = op.apply(self.reg(rs1), ext);
                self.set_reg(rd, v);
            }
            Instr::Lui { rd, imm } => self.set_reg(rd, (imm as u32) << 16),
            Instr::Mfsr { rd, sr } => {
                let v = match sr {
                    SpecialReg::CoreId => self.id.0 as u32,
                    SpecialReg::CycleLo => self.retired as u32,
                    SpecialReg::CycleHi => (self.retired >> 32) as u32,
                    SpecialReg::Epc => self.epc,
                    SpecialReg::IrqEnable => self.irq_enable as u32,
                };
                self.set_reg(rd, v);
            }
            Instr::Mtsr { sr, rs1 } => {
                let v = self.reg(rs1);
                match sr {
                    SpecialReg::Epc => self.epc = v,
                    SpecialReg::IrqEnable => self.irq_enable = v & 1 != 0,
                    // The read-only registers ignore writes.
                    _ => {}
                }
            }
            Instr::Eret => {
                next_pc = self.epc;
                self.irq_enable = true;
                taken = Some(true);
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                imm,
            } => {
                let t = cond.eval(self.reg(rs1), self.reg(rs2));
                taken = Some(t);
                if t {
                    next_pc = pc.wrapping_add((imm as i32 as u32).wrapping_mul(4));
                }
            }
            Instr::Jal { rd, imm } => {
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add((imm as u32).wrapping_mul(4));
                taken = Some(true);
            }
            Instr::Jalr { rd, rs1, imm } => {
                let target = self.reg(rs1).wrapping_add(imm as i32 as u32) & !3;
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = target;
                taken = Some(true);
            }
            Instr::Load {
                width, signed, rd, ..
            } => {
                let raw = mem.expect("load has access info").value;
                let v = match (width, signed) {
                    (MemWidth::Byte, true) => raw as u8 as i8 as i32 as u32,
                    (MemWidth::Byte, false) => raw & 0xFF,
                    (MemWidth::Half, true) => raw as u16 as i16 as i32 as u32,
                    (MemWidth::Half, false) => raw & 0xFFFF,
                    (MemWidth::Word, _) => raw,
                };
                self.set_reg(rd, v);
            }
            Instr::Swap { rd, .. } => {
                self.set_reg(rd, mem.expect("swap has access info").value);
            }
            Instr::Store { .. } | Instr::Nop | Instr::Sync => {}
            Instr::Brk | Instr::Halt => unreachable!("handled at decode"),
        }
        self.retired += 1;
        events.push(SocEvent::Retire(RetireEvent {
            core: self.id,
            pc,
            instr,
            next_pc,
            taken,
            mem,
        }));
        self.pc = next_pc;
        self.phase = Phase::FetchIssue;
        if let Some(budget) = self.step_budget.as_mut() {
            *budget -= 1;
            if *budget == 0 {
                self.step_budget = None;
                self.halt(StopCause::Step, events);
            }
        }
    }

    pub(crate) fn halt(&mut self, cause: StopCause, events: &mut Vec<SocEvent>) {
        self.state = RunState::Halted(cause);
        self.break_pending = false;
        self.phase = Phase::FetchIssue;
        self.completion = None;
        events.push(SocEvent::CoreStopped {
            core: self.id,
            cause,
            pc: self.pc,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::AddrRange;
    use crate::mem::Sram;

    const RAM_BASE: u32 = 0x1000_0000;

    /// Runs `program` on a single core with zero-wait RAM; returns the core
    /// and collected events after `cycles` cycles.
    fn run(program: &[Instr], cycles: u64) -> (Cpu, Vec<SocEvent>) {
        let mut bus: Bus<Sram> = Bus::new(1);
        let mut ram = Sram::new(0x10000, 0).with_base(RAM_BASE);
        for (i, instr) in program.iter().enumerate() {
            let word = instr.encode();
            ram.bytes_mut()[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        let t = bus.add_target(ram);
        bus.map_range(AddrRange::new(RAM_BASE, 0x10000), t);
        let mut cpu = Cpu::new(
            CoreId(0),
            MasterId(0),
            CoreConfig {
                reset_pc: RAM_BASE,
                clock_div: 1,
                ..Default::default()
            },
        );
        let mut events = Vec::new();
        for now in 0..cycles {
            if let Some(c) = bus.step(now) {
                cpu.deliver(c);
            }
            if cpu.clock_enabled(now) {
                cpu.tick(&mut bus, now, &mut events);
            }
        }
        (cpu, events)
    }

    fn retires(events: &[SocEvent]) -> Vec<RetireEvent> {
        events
            .iter()
            .filter_map(|e| match e {
                SocEvent::Retire(r) => Some(*r),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn basic_alu_program_runs() {
        let p = [
            Instr::AluImm {
                op: crate::isa::AluOp::Add,
                rd: Reg::new(1),
                rs1: Reg::ZERO,
                imm: 5,
            },
            Instr::AluImm {
                op: crate::isa::AluOp::Add,
                rd: Reg::new(2),
                rs1: Reg::ZERO,
                imm: 7,
            },
            Instr::Alu {
                op: crate::isa::AluOp::Add,
                rd: Reg::new(3),
                rs1: Reg::new(1),
                rs2: Reg::new(2),
            },
            Instr::Halt,
        ];
        let (cpu, events) = run(&p, 50);
        assert_eq!(cpu.reg(Reg::new(3)), 12);
        assert!(matches!(
            cpu.state(),
            RunState::Halted(StopCause::HaltInstr)
        ));
        assert_eq!(retires(&events).len(), 3, "HALT does not retire");
    }

    #[test]
    fn r0_stays_zero() {
        let p = [
            Instr::AluImm {
                op: crate::isa::AluOp::Add,
                rd: Reg::ZERO,
                rs1: Reg::ZERO,
                imm: 99,
            },
            Instr::Halt,
        ];
        let (cpu, _) = run(&p, 30);
        assert_eq!(cpu.reg(Reg::ZERO), 0);
    }

    #[test]
    fn load_store_roundtrip_with_sign_extension() {
        let base = Reg::new(1);
        let p = [
            Instr::Lui {
                rd: base,
                imm: 0x1000,
            }, // 0x1000_0000
            Instr::AluImm {
                op: crate::isa::AluOp::Add,
                rd: Reg::new(2),
                rs1: Reg::ZERO,
                imm: -2,
            },
            Instr::Store {
                width: MemWidth::Half,
                rs2: Reg::new(2),
                rs1: base,
                imm: 0x100,
            },
            Instr::Load {
                width: MemWidth::Half,
                signed: true,
                rd: Reg::new(3),
                rs1: base,
                imm: 0x100,
            },
            Instr::Load {
                width: MemWidth::Half,
                signed: false,
                rd: Reg::new(4),
                rs1: base,
                imm: 0x100,
            },
            Instr::Halt,
        ];
        let (cpu, events) = run(&p, 100);
        assert_eq!(cpu.reg(Reg::new(3)), (-2i32) as u32, "sign extended");
        assert_eq!(cpu.reg(Reg::new(4)), 0xFFFE, "zero extended");
        let rs = retires(&events);
        let store = rs
            .iter()
            .find(|r| matches!(r.instr, Instr::Store { .. }))
            .unwrap();
        assert_eq!(store.mem.unwrap().addr, RAM_BASE + 0x100);
        assert!(store.mem.unwrap().is_write);
    }

    #[test]
    fn branch_loop_counts() {
        // r1 = 3; loop: r2 += 1; r1 -= 1; bne r1, r0, loop; halt
        let p = [
            Instr::AluImm {
                op: crate::isa::AluOp::Add,
                rd: Reg::new(1),
                rs1: Reg::ZERO,
                imm: 3,
            },
            Instr::AluImm {
                op: crate::isa::AluOp::Add,
                rd: Reg::new(2),
                rs1: Reg::new(2),
                imm: 1,
            },
            Instr::AluImm {
                op: crate::isa::AluOp::Add,
                rd: Reg::new(1),
                rs1: Reg::new(1),
                imm: -1,
            },
            Instr::Branch {
                cond: crate::isa::BranchCond::Ne,
                rs1: Reg::new(1),
                rs2: Reg::ZERO,
                imm: -2,
            },
            Instr::Halt,
        ];
        let (cpu, events) = run(&p, 200);
        assert_eq!(cpu.reg(Reg::new(2)), 3);
        let rs = retires(&events);
        let branches: Vec<_> = rs.iter().filter(|r| r.instr.is_branch()).collect();
        assert_eq!(branches.len(), 3);
        assert_eq!(branches.iter().filter(|b| b.taken == Some(true)).count(), 2);
        assert_eq!(
            branches.iter().filter(|b| b.taken == Some(false)).count(),
            1
        );
    }

    #[test]
    fn jal_and_jalr_link() {
        let p = [
            Instr::Jal {
                rd: Reg::LR,
                imm: 2,
            }, // to index 2
            Instr::Halt, // return target
            Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::LR,
                imm: 0,
            },
        ];
        let (cpu, events) = run(&p, 60);
        assert!(matches!(
            cpu.state(),
            RunState::Halted(StopCause::HaltInstr)
        ));
        let rs = retires(&events);
        assert_eq!(rs[0].next_pc, RAM_BASE + 8);
        assert_eq!(rs[1].next_pc, RAM_BASE + 4, "jalr returns via r15");
        assert_eq!(cpu.reg(Reg::LR), RAM_BASE + 4);
    }

    #[test]
    fn brk_halts_with_breakpoint_cause_without_retiring() {
        let p = [Instr::Nop, Instr::Brk, Instr::Nop];
        let (cpu, events) = run(&p, 40);
        assert!(matches!(
            cpu.state(),
            RunState::Halted(StopCause::Breakpoint)
        ));
        assert_eq!(cpu.pc(), RAM_BASE + 4, "pc points at the BRK");
        assert_eq!(retires(&events).len(), 1);
    }

    #[test]
    fn break_request_halts_at_instruction_boundary() {
        let p = [
            Instr::AluImm {
                op: crate::isa::AluOp::Add,
                rd: Reg::new(1),
                rs1: Reg::new(1),
                imm: 1,
            },
            Instr::Branch {
                cond: crate::isa::BranchCond::Eq,
                rs1: Reg::ZERO,
                rs2: Reg::ZERO,
                imm: -1,
            },
        ];
        let mut bus: Bus<Sram> = Bus::new(1);
        let mut ram = Sram::new(0x1000, 0).with_base(RAM_BASE);
        for (i, instr) in p.iter().enumerate() {
            ram.bytes_mut()[i * 4..i * 4 + 4].copy_from_slice(&instr.encode().to_le_bytes());
        }
        let t = bus.add_target(ram);
        bus.map_range(AddrRange::new(RAM_BASE, 0x1000), t);
        let mut cpu = Cpu::new(
            CoreId(0),
            MasterId(0),
            CoreConfig {
                reset_pc: RAM_BASE,
                clock_div: 1,
                ..Default::default()
            },
        );
        let mut events = Vec::new();
        for now in 0..20 {
            if let Some(c) = bus.step(now) {
                cpu.deliver(c);
            }
            cpu.tick(&mut bus, now, &mut events);
        }
        let before = retires(&events).len();
        assert!(before > 0);
        cpu.request_break();
        for now in 20..60 {
            if let Some(c) = bus.step(now) {
                cpu.deliver(c);
            }
            cpu.tick(&mut bus, now, &mut events);
        }
        assert!(matches!(
            cpu.state(),
            RunState::Halted(StopCause::DebugRequest)
        ));
        // At most the in-flight instruction retired after the request.
        assert!(retires(&events).len() <= before + 1);
        // Resume continues execution.
        cpu.resume();
        let n = retires(&events).len();
        for now in 60..100 {
            if let Some(c) = bus.step(now) {
                cpu.deliver(c);
            }
            cpu.tick(&mut bus, now, &mut events);
        }
        assert!(retires(&events).len() > n);
    }

    #[test]
    fn single_step_retires_exactly_one() {
        let p = [Instr::Nop, Instr::Nop, Instr::Nop, Instr::Halt];
        let mut bus: Bus<Sram> = Bus::new(1);
        let mut ram = Sram::new(0x1000, 0).with_base(RAM_BASE);
        for (i, instr) in p.iter().enumerate() {
            ram.bytes_mut()[i * 4..i * 4 + 4].copy_from_slice(&instr.encode().to_le_bytes());
        }
        let t = bus.add_target(ram);
        bus.map_range(AddrRange::new(RAM_BASE, 0x1000), t);
        let mut cpu = Cpu::new(
            CoreId(0),
            MasterId(0),
            CoreConfig {
                reset_pc: RAM_BASE,
                clock_div: 1,
                ..Default::default()
            },
        );
        cpu.request_break();
        let mut events = Vec::new();
        for now in 0..10 {
            if let Some(c) = bus.step(now) {
                cpu.deliver(c);
            }
            cpu.tick(&mut bus, now, &mut events);
        }
        assert!(cpu.is_halted());
        events.clear();
        cpu.step_instructions(1);
        for now in 10..30 {
            if let Some(c) = bus.step(now) {
                cpu.deliver(c);
            }
            cpu.tick(&mut bus, now, &mut events);
        }
        assert_eq!(retires(&events).len(), 1);
        assert!(matches!(cpu.state(), RunState::Halted(StopCause::Step)));
        assert_eq!(cpu.pc(), RAM_BASE + 4);
    }

    #[test]
    fn suspend_gates_clock_and_preserves_state() {
        let p = [
            Instr::AluImm {
                op: crate::isa::AluOp::Add,
                rd: Reg::new(1),
                rs1: Reg::new(1),
                imm: 1,
            },
            Instr::Branch {
                cond: crate::isa::BranchCond::Eq,
                rs1: Reg::ZERO,
                rs2: Reg::ZERO,
                imm: -1,
            },
        ];
        let mut bus: Bus<Sram> = Bus::new(1);
        let mut ram = Sram::new(0x1000, 0).with_base(RAM_BASE);
        for (i, instr) in p.iter().enumerate() {
            ram.bytes_mut()[i * 4..i * 4 + 4].copy_from_slice(&instr.encode().to_le_bytes());
        }
        let t = bus.add_target(ram);
        bus.map_range(AddrRange::new(RAM_BASE, 0x1000), t);
        let mut cpu = Cpu::new(
            CoreId(0),
            MasterId(0),
            CoreConfig {
                reset_pc: RAM_BASE,
                clock_div: 1,
                ..Default::default()
            },
        );
        let mut events = Vec::new();
        for now in 0..20 {
            if let Some(c) = bus.step(now) {
                cpu.deliver(c);
            }
            cpu.tick(&mut bus, now, &mut events);
        }
        let r1_before = cpu.reg(Reg::new(1));
        cpu.set_suspended(true);
        for now in 20..60 {
            if let Some(c) = bus.step(now) {
                cpu.deliver(c);
            }
            cpu.tick(&mut bus, now, &mut events);
        }
        // Allow at most the already-granted bus response to be absorbed: no
        // new retires while suspended beyond the in-flight one.
        cpu.set_suspended(false);
        for now in 60..100 {
            if let Some(c) = bus.step(now) {
                cpu.deliver(c);
            }
            cpu.tick(&mut bus, now, &mut events);
        }
        assert!(cpu.reg(Reg::new(1)) > r1_before, "resumed after suspend");
        assert!(!cpu.is_halted(), "suspend is not a halt");
    }

    #[test]
    fn unmapped_fetch_faults_core() {
        let mut bus: Bus<Sram> = Bus::new(1);
        let mut cpu = Cpu::new(
            CoreId(0),
            MasterId(0),
            CoreConfig {
                reset_pc: 0x5555_0000,
                clock_div: 1,
                ..Default::default()
            },
        );
        let mut events = Vec::new();
        for now in 0..10 {
            if let Some(c) = bus.step(now) {
                cpu.deliver(c);
            }
            cpu.tick(&mut bus, now, &mut events);
        }
        assert!(matches!(
            cpu.state(),
            RunState::Halted(StopCause::BusFault(_))
        ));
    }

    #[test]
    fn clock_divider_slows_retirement() {
        let p = [
            Instr::AluImm {
                op: crate::isa::AluOp::Add,
                rd: Reg::new(1),
                rs1: Reg::new(1),
                imm: 1,
            },
            Instr::Branch {
                cond: crate::isa::BranchCond::Eq,
                rs1: Reg::ZERO,
                rs2: Reg::ZERO,
                imm: -1,
            },
        ];
        let mk = |div: u32| {
            let mut bus: Bus<Sram> = Bus::new(1);
            let mut ram = Sram::new(0x1000, 0).with_base(RAM_BASE);
            for (i, instr) in p.iter().enumerate() {
                ram.bytes_mut()[i * 4..i * 4 + 4].copy_from_slice(&instr.encode().to_le_bytes());
            }
            let t = bus.add_target(ram);
            bus.map_range(AddrRange::new(RAM_BASE, 0x1000), t);
            let mut cpu = Cpu::new(
                CoreId(0),
                MasterId(0),
                CoreConfig {
                    reset_pc: RAM_BASE,
                    clock_div: div,
                    ..Default::default()
                },
            );
            let mut events = Vec::new();
            for now in 0..400 {
                if let Some(c) = bus.step(now) {
                    cpu.deliver(c);
                }
                if cpu.clock_enabled(now) {
                    cpu.tick(&mut bus, now, &mut events);
                }
            }
            cpu.retired()
        };
        let fast = mk(1);
        let slow = mk(2);
        assert!(
            slow < fast,
            "divided clock retires fewer instructions ({slow} !< {fast})"
        );
        assert!(slow * 3 > fast, "but not pathologically fewer");
    }
}

#[cfg(test)]
mod irq_tests {
    use super::*;
    use crate::asm::assemble;
    use crate::soc::{memmap, SocBuilder};

    /// Timer-driven blink: main loop counts in r9; the ISR increments an
    /// SRAM counter, acks, and returns.
    fn irq_program(period: u32) -> crate::asm::Program {
        assemble(&format!(
            "
            .equ PERIOD_REG, 0xF0000008
            .equ ACK_REG,    0xF000000C
            .equ ISR_COUNT,  0xD0000000
            .org 0x80000000
            start:
                li r1, {period}
                li r2, PERIOD_REG
                sw r1, 0(r2)
                li r1, 1
                mtsr irqen, r1
            idle:
                addi r9, r9, 1
                j idle

            .org {vector:#x}
            isr:
                li r1, ISR_COUNT
                lw r2, 0(r1)
                addi r2, r2, 1
                sw r2, 0(r1)
                li r1, ACK_REG
                sw r0, 0(r1)
                eret
            ",
            vector = DEFAULT_IRQ_VECTOR,
        ))
        .unwrap()
    }

    #[test]
    fn timer_interrupt_runs_isr_periodically() {
        let mut soc = SocBuilder::new().cores(1).build();
        soc.load_program(&irq_program(2_000));
        soc.run_cycles(41_000);
        let isr_count = soc.backdoor_read_word(memmap::SRAM_BASE);
        assert!(
            (15..=21).contains(&isr_count),
            "≈20 ISR invocations over 40k cycles at a 2k period, got {isr_count}"
        );
        // The background loop kept running between interrupts.
        let bg = soc.core(CoreId(0)).reg(Reg::new(9));
        assert!(bg > 1_000, "background made progress ({bg})");
        assert!(!soc.core(CoreId(0)).is_halted());
    }

    #[test]
    fn interrupts_ignored_until_enabled() {
        // Same program but never sets IrqEnable: the ISR never runs.
        let program = assemble(
            "
            .equ PERIOD_REG, 0xF0000008
            .org 0x80000000
            start:
                li r1, 500
                li r2, PERIOD_REG
                sw r1, 0(r2)
            idle:
                addi r9, r9, 1
                j idle
            ",
        )
        .unwrap();
        let mut soc = SocBuilder::new().cores(1).build();
        soc.load_program(&program);
        soc.run_cycles(20_000);
        assert_eq!(soc.backdoor_read_word(memmap::SRAM_BASE), 0);
        assert!(!soc.core(CoreId(0)).is_halted());
    }

    #[test]
    fn epc_points_at_interrupted_instruction() {
        let mut soc = SocBuilder::new().cores(1).build();
        soc.load_program(&irq_program(1_000));
        // Run until inside the first ISR (interrupts disabled there).
        for _ in 0..200_000u64 {
            soc.step();
            let c = soc.core(CoreId(0));
            if !c.irq_enabled() && c.pc() >= DEFAULT_IRQ_VECTOR {
                break;
            }
        }
        let c = soc.core(CoreId(0));
        assert!(!c.irq_enabled(), "interrupts masked inside the ISR");
        // EPC is inside the idle loop (the two-instruction region).
        let epc = c.epc();
        assert!(
            (0x8000_0000..0x8000_0400).contains(&epc),
            "epc {epc:#x} inside main code"
        );
    }

    #[test]
    fn irq_entry_event_is_observable() {
        let mut soc = SocBuilder::new().cores(1).build();
        soc.load_program(&irq_program(1_500));
        let mut entries = Vec::new();
        for _ in 0..20_000u64 {
            let rec = soc.step();
            for e in &rec.events {
                if let SocEvent::IrqEntry { core, from, vector } = e {
                    entries.push((*core, *from, *vector));
                }
            }
        }
        assert!(entries.len() >= 5, "{} entries", entries.len());
        for (core, from, vector) in &entries {
            assert_eq!(*core, CoreId(0));
            assert_eq!(*vector, DEFAULT_IRQ_VECTOR);
            assert!(*from < DEFAULT_IRQ_VECTOR, "interrupted in main code");
        }
    }

    #[test]
    fn level_interrupt_refires_without_ack() {
        // An ISR that never acks: after ERET the still-pending level
        // retriggers immediately; the background loop starves.
        let program = assemble(&format!(
            "
            .equ PERIOD_REG, 0xF0000008
            .equ ISR_COUNT,  0xD0000000
            .org 0x80000000
            start:
                li r1, 3000
                li r2, PERIOD_REG
                sw r1, 0(r2)
                li r1, 1
                mtsr irqen, r1
            idle:
                addi r9, r9, 1
                j idle
            .org {vector:#x}
            isr:
                li r1, ISR_COUNT
                lw r2, 0(r1)
                addi r2, r2, 1
                sw r2, 0(r1)
                eret                  ; no ack!
            ",
            vector = DEFAULT_IRQ_VECTOR,
        ))
        .unwrap();
        let mut soc = SocBuilder::new().cores(1).build();
        soc.load_program(&program);
        soc.run_cycles(30_000);
        let isr_count = soc.backdoor_read_word(memmap::SRAM_BASE);
        // Far more invocations than the ~10 the period would give.
        assert!(isr_count > 100, "unacked level IRQ re-fires ({isr_count})");
    }
}

#[cfg(test)]
mod mtsr_tests {
    use super::*;
    use crate::asm::assemble;
    use crate::soc::{memmap, SocBuilder};

    #[test]
    fn mtsr_writes_epc_and_ignores_read_only_regs() {
        let program = assemble(
            "
            .org 0x80000000
            start:
                li r1, 0x1234
                mtsr epc, r1        ; writable
                mfsr r2, epc
                li r3, 99
                mtsr coreid, r3     ; read-only: ignored
                mfsr r4, coreid
                mfsr r5, irqen      ; starts disabled
                halt
            ",
        )
        .unwrap();
        let mut soc = SocBuilder::new().cores(1).build();
        soc.load_program(&program);
        soc.run_until_halt(10_000);
        let c = soc.core(CoreId(0));
        assert_eq!(c.reg(Reg::new(2)), 0x1234, "EPC written and read back");
        assert_eq!(c.reg(Reg::new(4)), 0, "core id unchanged by MTSR");
        assert_eq!(c.reg(Reg::new(5)), 0, "interrupts disabled at reset");
        assert_eq!(soc.backdoor_read_word(memmap::SRAM_BASE), 0);
    }
}
