//! The TC-RISC instruction set.
//!
//! A compact 32-bit RISC ISA standing in for the TriCore/PCP cores of the
//! TC1796. The MCDS debug logic only observes *retirement-level* events
//! (program counter, branch kind, data accesses), so any in-order core with a
//! binary-encoded instruction stream produces the same observation stream the
//! real trace port would. Sixteen general registers; `r0` reads as zero,
//! `r14` is the stack pointer by convention and `r15` the link register.
//!
//! Encoding (32 bits, big-field layout):
//!
//! ```text
//! R-type: [31:24] op  [23:20] rd  [19:16] rs1  [15:12] rs2  [11:0] zero
//! I-type: [31:24] op  [23:20] rd  [19:16] rs1  [15:0]  imm16
//! B-type: [31:24] op  [23:20] rs1 [19:16] rs2  [15:0]  imm16 (signed words)
//! J-type: [31:24] op  [23:20] rd  [19:0]  imm20 (signed words)
//! ```
//!
//! The all-zero word is [`Instr::Brk`], so a debugger sets a software
//! breakpoint by writing `0x0000_0000` over any instruction — mirroring the
//! "unlimited software breakpoints" workflow of Section 7 of the paper.

use std::fmt;

/// A general-purpose register index (`r0`–`r15`).
///
/// `r0` is hardwired to zero: writes are discarded, reads return 0.
#[derive(
    serde::Serialize,
    serde::Deserialize,
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
)]
pub struct Reg(u8);

impl Reg {
    /// The zero register `r0`.
    pub const ZERO: Reg = Reg(0);
    /// The conventional stack pointer `r14`.
    pub const SP: Reg = Reg(14);
    /// The conventional link register `r15`.
    pub const LR: Reg = Reg(15);

    /// Creates a register index.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 16`.
    pub fn new(n: u8) -> Reg {
        assert!(n < 16, "register index out of range: r{n}");
        Reg(n)
    }

    /// Returns the register number (0–15).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A register–register ALU operation.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (by the low 5 bits of the operand).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Signed set-less-than (1 or 0).
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// Low 32 bits of the product.
    Mul,
    /// High 32 bits of the signed 64-bit product.
    Mulh,
    /// Signed division (÷0 yields all-ones, no trap).
    Div,
    /// Signed remainder (÷0 yields the dividend).
    Rem,
}

impl AluOp {
    /// Extra execute cycles beyond the base single cycle.
    ///
    /// Multiplies take one extra cycle, divides/remainders take seven, in the
    /// spirit of small automotive cores.
    pub fn extra_cycles(self) -> u32 {
        match self {
            AluOp::Mul | AluOp::Mulh => 1,
            AluOp::Div | AluOp::Rem => 7,
            _ => 0,
        }
    }

    /// Applies the operation to two operands.
    ///
    /// Division by zero yields all-ones (quotient) / the dividend
    /// (remainder), matching common embedded-core behaviour rather than
    /// trapping.
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
            AluOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluOp::Sltu => (a < b) as u32,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
            AluOp::Div => {
                if b == 0 {
                    u32::MAX
                } else {
                    ((a as i32).wrapping_div(b as i32)) as u32
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    ((a as i32).wrapping_rem(b as i32)) as u32
                }
            }
        }
    }
}

/// A branch comparison condition.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl BranchCond {
    /// Evaluates the condition on two register values.
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i32) < (b as i32),
            BranchCond::Ge => (a as i32) >= (b as i32),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// Width of a memory access.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 8-bit access.
    Byte,
    /// 16-bit access.
    Half,
    /// 32-bit access.
    Word,
}

impl MemWidth {
    /// The access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }
}

/// A special register readable with `MFSR`.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// The id of the executing core.
    CoreId,
    /// Low 32 bits of the core-local retired-cycle counter.
    CycleLo,
    /// High 32 bits of the core-local retired-cycle counter.
    CycleHi,
    /// The exception program counter: the address interrupted-from, and
    /// the `ERET` target.
    Epc,
    /// Interrupt enable (bit 0). Cleared on interrupt entry, set by `ERET`.
    IrqEnable,
}

impl SpecialReg {
    fn from_code(code: u16) -> Option<SpecialReg> {
        match code {
            0 => Some(SpecialReg::CoreId),
            1 => Some(SpecialReg::CycleLo),
            2 => Some(SpecialReg::CycleHi),
            3 => Some(SpecialReg::Epc),
            4 => Some(SpecialReg::IrqEnable),
            _ => None,
        }
    }

    fn code(self) -> u16 {
        match self {
            SpecialReg::CoreId => 0,
            SpecialReg::CycleLo => 1,
            SpecialReg::CycleHi => 2,
            SpecialReg::Epc => 3,
            SpecialReg::IrqEnable => 4,
        }
    }
}

/// A decoded TC-RISC instruction.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Software breakpoint (the all-zero encoding). Halts the core and
    /// raises a breakpoint event for the debugger.
    Brk,
    /// No operation.
    Nop,
    /// Stops the core permanently (program completion marker).
    Halt,
    /// Memory barrier; drains the core's outstanding access (1 cycle).
    Sync,
    /// Reads a special register into `rd`.
    #[allow(missing_docs)]
    Mfsr { rd: Reg, sr: SpecialReg },
    /// Writes `rs1` into a special register (only [`SpecialReg::Epc`] and
    /// [`SpecialReg::IrqEnable`] are writable).
    #[allow(missing_docs)]
    Mtsr { sr: SpecialReg, rs1: Reg },
    /// Return from interrupt: `pc = EPC`, interrupts re-enabled. Traced as
    /// an indirect control transfer.
    Eret,
    /// Register–register ALU operation: `rd = op(rs1, rs2)`.
    #[allow(missing_docs)]
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Register–immediate ALU operation: `rd = op(rs1, ext(imm))` —
    /// logical ops zero-extend the immediate, arithmetic ops sign-extend.
    #[allow(missing_docs)]
    AluImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i16,
    },
    /// Loads `imm << 16` into `rd`.
    #[allow(missing_docs)]
    Lui { rd: Reg, imm: u16 },
    /// Memory load: `rd = mem[rs1 + sext(imm)]`, sign- or zero-extended.
    #[allow(missing_docs)]
    Load {
        width: MemWidth,
        signed: bool,
        rd: Reg,
        rs1: Reg,
        imm: i16,
    },
    /// Memory store: `mem[rs1 + sext(imm)] = rs2`.
    #[allow(missing_docs)]
    Store {
        width: MemWidth,
        rs2: Reg,
        rs1: Reg,
        imm: i16,
    },
    /// Conditional pc-relative branch by `imm` words.
    #[allow(missing_docs)]
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        imm: i16,
    },
    /// Jump and link: `rd = pc + 4; pc += imm * 4`.
    #[allow(missing_docs)]
    Jal { rd: Reg, imm: i32 },
    /// Jump and link register: `rd = pc + 4; pc = (rs1 + sext(imm)) & !3`.
    #[allow(missing_docs)]
    Jalr { rd: Reg, rs1: Reg, imm: i16 },
    /// Atomic exchange: `rd = mem[rs1]; mem[rs1] = rs2` as one locked bus
    /// transaction.
    #[allow(missing_docs)]
    Swap { rd: Reg, rs1: Reg, rs2: Reg },
}

/// Error returned when a 32-bit word does not decode to a TC-RISC
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeInstrError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeInstrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction encoding {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeInstrError {}

mod op {
    pub const BRK: u8 = 0x00;
    pub const NOP: u8 = 0x01;
    pub const HALT: u8 = 0x02;
    pub const SYNC: u8 = 0x03;
    pub const MFSR: u8 = 0x04;
    pub const MTSR: u8 = 0x05;
    pub const ERET: u8 = 0x06;
    pub const ALU_BASE: u8 = 0x10; // ..=0x1D, order of AluOp
    pub const ALUI_BASE: u8 = 0x20; // ADDI..SRAI subset below
    pub const LUI: u8 = 0x28;
    pub const LW: u8 = 0x30;
    pub const LH: u8 = 0x31;
    pub const LHU: u8 = 0x32;
    pub const LB: u8 = 0x33;
    pub const LBU: u8 = 0x34;
    pub const SW: u8 = 0x35;
    pub const SH: u8 = 0x36;
    pub const SB: u8 = 0x37;
    pub const BR_BASE: u8 = 0x40; // ..=0x45, order of BranchCond
    pub const JAL: u8 = 0x50;
    pub const JALR: u8 = 0x51;
    pub const SWAP: u8 = 0x60;
}

const ALU_OPS: [AluOp; 14] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Mul,
    AluOp::Mulh,
    AluOp::Div,
    AluOp::Rem,
];

// Immediate forms exist only for the first 8 ALU ops (Add..Sra).
const ALUI_OPS: [AluOp; 8] = [
    AluOp::Add,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Slt,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
];

const BR_CONDS: [BranchCond; 6] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Lt,
    BranchCond::Ge,
    BranchCond::Ltu,
    BranchCond::Geu,
];

fn alu_index(op: AluOp) -> u8 {
    ALU_OPS.iter().position(|&o| o == op).expect("op in table") as u8
}

fn alui_index(op: AluOp) -> Option<u8> {
    ALUI_OPS.iter().position(|&o| o == op).map(|i| i as u8)
}

fn br_index(c: BranchCond) -> u8 {
    BR_CONDS
        .iter()
        .position(|&o| o == c)
        .expect("cond in table") as u8
}

impl Instr {
    /// Encodes the instruction to its 32-bit binary form.
    ///
    /// # Panics
    ///
    /// Panics if a J-type immediate does not fit in 20 signed bits, or if an
    /// immediate-form ALU op has no immediate encoding (`Mul` and friends).
    pub fn encode(self) -> u32 {
        fn r(op: u8, rd: u8, rs1: u8, rs2: u8) -> u32 {
            (op as u32) << 24 | (rd as u32) << 20 | (rs1 as u32) << 16 | (rs2 as u32) << 12
        }
        fn i(op: u8, rd: u8, rs1: u8, imm: u16) -> u32 {
            (op as u32) << 24 | (rd as u32) << 20 | (rs1 as u32) << 16 | imm as u32
        }
        match self {
            Instr::Brk => 0,
            Instr::Nop => r(op::NOP, 0, 0, 0),
            Instr::Halt => r(op::HALT, 0, 0, 0),
            Instr::Sync => r(op::SYNC, 0, 0, 0),
            Instr::Mfsr { rd, sr } => i(op::MFSR, rd.0, 0, sr.code()),
            Instr::Mtsr { sr, rs1 } => i(op::MTSR, 0, rs1.0, sr.code()),
            Instr::Eret => r(op::ERET, 0, 0, 0),
            Instr::Alu {
                op: o,
                rd,
                rs1,
                rs2,
            } => r(op::ALU_BASE + alu_index(o), rd.0, rs1.0, rs2.0),
            Instr::AluImm {
                op: o,
                rd,
                rs1,
                imm,
            } => {
                let idx =
                    alui_index(o).unwrap_or_else(|| panic!("ALU op {o:?} has no immediate form"));
                i(op::ALUI_BASE + idx, rd.0, rs1.0, imm as u16)
            }
            Instr::Lui { rd, imm } => i(op::LUI, rd.0, 0, imm),
            Instr::Load {
                width,
                signed,
                rd,
                rs1,
                imm,
            } => {
                let o = match (width, signed) {
                    (MemWidth::Word, _) => op::LW,
                    (MemWidth::Half, true) => op::LH,
                    (MemWidth::Half, false) => op::LHU,
                    (MemWidth::Byte, true) => op::LB,
                    (MemWidth::Byte, false) => op::LBU,
                };
                i(o, rd.0, rs1.0, imm as u16)
            }
            Instr::Store {
                width,
                rs2,
                rs1,
                imm,
            } => {
                let o = match width {
                    MemWidth::Word => op::SW,
                    MemWidth::Half => op::SH,
                    MemWidth::Byte => op::SB,
                };
                i(o, rs2.0, rs1.0, imm as u16)
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                imm,
            } => i(op::BR_BASE + br_index(cond), rs1.0, rs2.0, imm as u16),
            Instr::Jal { rd, imm } => {
                assert!(
                    (-(1 << 19)..(1 << 19)).contains(&imm),
                    "JAL offset {imm} out of 20-bit range"
                );
                (op::JAL as u32) << 24 | (rd.0 as u32) << 20 | (imm as u32 & 0xF_FFFF)
            }
            Instr::Jalr { rd, rs1, imm } => i(op::JALR, rd.0, rs1.0, imm as u16),
            Instr::Swap { rd, rs1, rs2 } => r(op::SWAP, rd.0, rs1.0, rs2.0),
        }
    }

    /// Decodes a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeInstrError`] if the opcode byte is not assigned.
    pub fn decode(word: u32) -> Result<Instr, DecodeInstrError> {
        let opc = (word >> 24) as u8;
        let rd = Reg(((word >> 20) & 0xF) as u8);
        let rs1 = Reg(((word >> 16) & 0xF) as u8);
        let rs2 = Reg(((word >> 12) & 0xF) as u8);
        let imm16 = word as u16 as i16;
        let err = DecodeInstrError { word };
        Ok(match opc {
            op::BRK => Instr::Brk,
            op::NOP => Instr::Nop,
            op::HALT => Instr::Halt,
            op::SYNC => Instr::Sync,
            op::MFSR => Instr::Mfsr {
                rd,
                sr: SpecialReg::from_code(word as u16).ok_or(err)?,
            },
            op::MTSR => Instr::Mtsr {
                sr: SpecialReg::from_code(word as u16).ok_or(err)?,
                rs1,
            },
            op::ERET => Instr::Eret,
            o if (op::ALU_BASE..op::ALU_BASE + 14).contains(&o) => Instr::Alu {
                op: ALU_OPS[(o - op::ALU_BASE) as usize],
                rd,
                rs1,
                rs2,
            },
            o if (op::ALUI_BASE..op::ALUI_BASE + 8).contains(&o) => Instr::AluImm {
                op: ALUI_OPS[(o - op::ALUI_BASE) as usize],
                rd,
                rs1,
                imm: imm16,
            },
            op::LUI => Instr::Lui {
                rd,
                imm: word as u16,
            },
            op::LW => Instr::Load {
                width: MemWidth::Word,
                signed: false,
                rd,
                rs1,
                imm: imm16,
            },
            op::LH => Instr::Load {
                width: MemWidth::Half,
                signed: true,
                rd,
                rs1,
                imm: imm16,
            },
            op::LHU => Instr::Load {
                width: MemWidth::Half,
                signed: false,
                rd,
                rs1,
                imm: imm16,
            },
            op::LB => Instr::Load {
                width: MemWidth::Byte,
                signed: true,
                rd,
                rs1,
                imm: imm16,
            },
            op::LBU => Instr::Load {
                width: MemWidth::Byte,
                signed: false,
                rd,
                rs1,
                imm: imm16,
            },
            op::SW => Instr::Store {
                width: MemWidth::Word,
                rs2: rd,
                rs1,
                imm: imm16,
            },
            op::SH => Instr::Store {
                width: MemWidth::Half,
                rs2: rd,
                rs1,
                imm: imm16,
            },
            op::SB => Instr::Store {
                width: MemWidth::Byte,
                rs2: rd,
                rs1,
                imm: imm16,
            },
            o if (op::BR_BASE..op::BR_BASE + 6).contains(&o) => Instr::Branch {
                cond: BR_CONDS[(o - op::BR_BASE) as usize],
                rs1: rd,
                rs2: rs1,
                imm: imm16,
            },
            op::JAL => {
                let raw = word & 0xF_FFFF;
                let imm = ((raw << 12) as i32) >> 12; // sign-extend 20 bits
                Instr::Jal { rd, imm }
            }
            op::JALR => Instr::Jalr {
                rd,
                rs1,
                imm: imm16,
            },
            op::SWAP => Instr::Swap { rd, rs1, rs2 },
            _ => return Err(err),
        })
    }

    /// True if this instruction transfers control (taken or not).
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Eret
        )
    }

    /// True if this instruction's branch target cannot be computed from the
    /// instruction word alone (needed by the trace compressor: indirect
    /// branches must carry an address in the trace stream).
    pub fn is_indirect_branch(self) -> bool {
        matches!(self, Instr::Jalr { .. } | Instr::Eret)
    }

    /// True if the instruction reads or writes data memory.
    pub fn is_mem(self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::Store { .. } | Instr::Swap { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Brk => write!(f, "brk"),
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
            Instr::Sync => write!(f, "sync"),
            Instr::Mfsr { rd, sr } => write!(f, "mfsr {rd}, {sr:?}"),
            Instr::Mtsr { sr, rs1 } => write!(f, "mtsr {sr:?}, {rs1}"),
            Instr::Eret => write!(f, "eret"),
            Instr::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", format!("{op:?}").to_lowercase())
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                write!(
                    f,
                    "{}i {rd}, {rs1}, {imm}",
                    format!("{op:?}").to_lowercase()
                )
            }
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Instr::Load {
                width,
                signed,
                rd,
                rs1,
                imm,
            } => {
                let m = match (width, signed) {
                    (MemWidth::Word, _) => "lw",
                    (MemWidth::Half, true) => "lh",
                    (MemWidth::Half, false) => "lhu",
                    (MemWidth::Byte, true) => "lb",
                    (MemWidth::Byte, false) => "lbu",
                };
                write!(f, "{m} {rd}, {imm}({rs1})")
            }
            Instr::Store {
                width,
                rs2,
                rs1,
                imm,
            } => {
                let m = match width {
                    MemWidth::Word => "sw",
                    MemWidth::Half => "sh",
                    MemWidth::Byte => "sb",
                };
                write!(f, "{m} {rs2}, {imm}({rs1})")
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                imm,
            } => {
                write!(
                    f,
                    "b{} {rs1}, {rs2}, {imm}",
                    format!("{cond:?}").to_lowercase()
                )
            }
            Instr::Jal { rd, imm } => write!(f, "jal {rd}, {imm}"),
            Instr::Jalr { rd, rs1, imm } => write!(f, "jalr {rd}, {imm}({rs1})"),
            Instr::Swap { rd, rs1, rs2 } => write!(f, "swap {rd}, {rs1}, {rs2}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instr) {
        let w = i.encode();
        let back = Instr::decode(w).expect("decodes");
        assert_eq!(i, back, "round-trip through {w:#010x}");
    }

    #[test]
    fn brk_is_all_zero() {
        assert_eq!(Instr::Brk.encode(), 0);
        assert_eq!(Instr::decode(0).unwrap(), Instr::Brk);
    }

    #[test]
    fn roundtrip_simple_ops() {
        roundtrip(Instr::Nop);
        roundtrip(Instr::Halt);
        roundtrip(Instr::Sync);
        roundtrip(Instr::Mfsr {
            rd: Reg::new(3),
            sr: SpecialReg::CycleLo,
        });
        roundtrip(Instr::Mfsr {
            rd: Reg::new(3),
            sr: SpecialReg::Epc,
        });
        roundtrip(Instr::Mtsr {
            sr: SpecialReg::IrqEnable,
            rs1: Reg::new(4),
        });
        roundtrip(Instr::Eret);
    }

    #[test]
    fn roundtrip_all_alu_ops() {
        for &o in &ALU_OPS {
            roundtrip(Instr::Alu {
                op: o,
                rd: Reg::new(1),
                rs1: Reg::new(2),
                rs2: Reg::new(3),
            });
        }
    }

    #[test]
    fn roundtrip_all_alui_ops() {
        for &o in &ALUI_OPS {
            roundtrip(Instr::AluImm {
                op: o,
                rd: Reg::new(5),
                rs1: Reg::new(6),
                imm: -42,
            });
        }
    }

    #[test]
    fn roundtrip_mem_ops() {
        for (w, s) in [
            (MemWidth::Word, false),
            (MemWidth::Half, true),
            (MemWidth::Half, false),
            (MemWidth::Byte, true),
            (MemWidth::Byte, false),
        ] {
            roundtrip(Instr::Load {
                width: w,
                signed: s,
                rd: Reg::new(7),
                rs1: Reg::new(8),
                imm: -4,
            });
        }
        for w in [MemWidth::Word, MemWidth::Half, MemWidth::Byte] {
            roundtrip(Instr::Store {
                width: w,
                rs2: Reg::new(9),
                rs1: Reg::new(10),
                imm: 12,
            });
        }
        // LW decodes as unsigned per our canonical form; LH keeps sign.
        roundtrip(Instr::Swap {
            rd: Reg::new(1),
            rs1: Reg::new(2),
            rs2: Reg::new(3),
        });
    }

    #[test]
    fn roundtrip_branches_and_jumps() {
        for &c in &BR_CONDS {
            roundtrip(Instr::Branch {
                cond: c,
                rs1: Reg::new(1),
                rs2: Reg::new(2),
                imm: -100,
            });
        }
        roundtrip(Instr::Jal {
            rd: Reg::LR,
            imm: -1234,
        });
        roundtrip(Instr::Jal {
            rd: Reg::ZERO,
            imm: 0x7FFFF,
        });
        roundtrip(Instr::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::LR,
            imm: 0,
        });
        roundtrip(Instr::Lui {
            rd: Reg::new(4),
            imm: 0xDEAD,
        });
    }

    #[test]
    fn invalid_opcode_rejected() {
        assert!(Instr::decode(0xFF00_0000).is_err());
        assert!(Instr::decode(0x7000_0000).is_err());
        // MFSR with unassigned special-reg code.
        assert!(Instr::decode((0x04u32) << 24 | 99).is_err());
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u32::MAX);
        assert_eq!(AluOp::Sra.apply(0x8000_0000, 31), u32::MAX);
        assert_eq!(AluOp::Srl.apply(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Slt.apply(u32::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(AluOp::Sltu.apply(u32::MAX, 0), 0);
        assert_eq!(
            AluOp::Mulh.apply(0x8000_0000, 2),
            u32::MAX,
            "sign-extended high mul"
        );
        assert_eq!(AluOp::Div.apply(7, 0), u32::MAX);
        assert_eq!(AluOp::Rem.apply(7, 0), 7);
        assert_eq!(AluOp::Div.apply((-7i32) as u32, 2), (-3i32) as u32);
    }

    #[test]
    fn branch_cond_semantics() {
        assert!(BranchCond::Lt.eval((-1i32) as u32, 0));
        assert!(!BranchCond::Ltu.eval((-1i32) as u32, 0));
        assert!(BranchCond::Geu.eval(u32::MAX, 5));
        assert!(BranchCond::Eq.eval(9, 9));
        assert!(BranchCond::Ne.eval(9, 8));
        assert!(BranchCond::Ge.eval(0, (-1i32) as u32));
    }

    #[test]
    fn reg_zero_constants() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::SP.index(), 14);
        assert_eq!(Reg::LR.index(), 15);
        assert_eq!(Reg::new(7).to_string(), "r7");
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(16);
    }
}
