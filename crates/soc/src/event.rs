//! Observation events.
//!
//! The MCDS hardware taps the cores' retirement interfaces and the system
//! bus. The simulator reproduces those taps as a per-cycle stream of
//! [`SocEvent`]s: everything the debug logic is allowed to see, and nothing
//! more. Timestamps are SoC cycles (150 MHz on the TC1796).

use crate::bus::{BusFault, BusXact};
use crate::isa::{Instr, MemWidth};
use std::fmt;

/// Identifies a processor core on the SoC.
#[derive(
    serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct CoreId(pub u8);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A data access performed by a retired instruction.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccessInfo {
    /// Byte address of the access.
    pub addr: u32,
    /// Access width.
    pub width: MemWidth,
    /// True for stores (and the store half of atomics).
    pub is_write: bool,
    /// Data value: the stored value for writes, the loaded value for reads,
    /// the *old* value for atomics.
    pub value: u32,
}

/// One retired instruction, as seen by the core's trace adaptation logic.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetireEvent {
    /// The retiring core.
    pub core: CoreId,
    /// Address of the retired instruction.
    pub pc: u32,
    /// The instruction itself.
    pub instr: Instr,
    /// Address of the next instruction to execute.
    pub next_pc: u32,
    /// For control-transfer instructions, whether the transfer was taken.
    pub taken: Option<bool>,
    /// The data access, for loads/stores/atomics.
    pub mem: Option<MemAccessInfo>,
}

/// Why a core stopped executing.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// A debug halt request (break line or debugger command).
    DebugRequest,
    /// A `BRK` instruction (software breakpoint).
    Breakpoint,
    /// A `HALT` instruction (program completion).
    HaltInstr,
    /// Single-step budget exhausted.
    Step,
    /// A bus fault during fetch or data access.
    BusFault(BusFault),
    /// An undecodable instruction word.
    #[allow(missing_docs)]
    InvalidInstr { word: u32 },
}

impl fmt::Display for StopCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StopCause::DebugRequest => write!(f, "debug request"),
            StopCause::Breakpoint => write!(f, "software breakpoint"),
            StopCause::HaltInstr => write!(f, "halt instruction"),
            StopCause::Step => write!(f, "single step"),
            StopCause::BusFault(e) => write!(f, "bus fault: {e}"),
            StopCause::InvalidInstr { word } => write!(f, "invalid instruction {word:#010x}"),
        }
    }
}

/// An observable event produced during one SoC cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SocEvent {
    /// A core retired an instruction.
    Retire(RetireEvent),
    /// A bus transaction completed (multi-master bus tap).
    Bus(BusXact),
    /// A core stopped.
    CoreStopped {
        /// The stopping core.
        core: CoreId,
        /// Why it stopped.
        cause: StopCause,
        /// Its program counter at the stop.
        pc: u32,
    },
    /// A core took an interrupt: an asynchronous control transfer from
    /// `from` to `vector`.
    IrqEntry {
        /// The interrupted core.
        core: CoreId,
        /// The pc the core was about to execute.
        from: u32,
        /// The interrupt vector it jumped to.
        vector: u32,
    },
    /// An external trigger input changed level.
    TriggerIn {
        /// Trigger pin index.
        line: u8,
        /// New level.
        level: bool,
    },
}

/// All observable events of one SoC cycle, timestamped.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CycleRecord {
    /// The cycle the events occurred on.
    pub cycle: u64,
    /// Events in within-cycle priority order (bus before retires, in core
    /// order).
    pub events: Vec<SocEvent>,
}

impl CycleRecord {
    /// Creates an empty record for `cycle`.
    pub fn new(cycle: u64) -> CycleRecord {
        CycleRecord {
            cycle,
            events: Vec::new(),
        }
    }

    /// True if nothing was observed this cycle.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over retire events only.
    pub fn retires(&self) -> impl Iterator<Item = &RetireEvent> {
        self.events.iter().filter_map(|e| match e {
            SocEvent::Retire(r) => Some(r),
            _ => None,
        })
    }
}
